//! # bobw — *The Best of Both Worlds* (IMC '22) in Rust
//!
//! A full reproduction of Zhu et al., *"The Best of Both Worlds: High
//! Availability CDN Routing Without Compromising Control"* (ACM IMC 2022):
//! the hybrid CDN redirection techniques **reactive-anycast** and
//! **proactive-prepending**, the baselines they are compared against, and
//! every substrate the paper's evaluation needs — an AS-level BGP simulator
//! with realistic convergence dynamics, an Internet-like topology
//! generator, a longest-prefix-match data plane with Verfploeter-style
//! probing, a DNS redirection model with TTL violations, and RIS-style
//! route collectors with the paper's estimation pipelines.
//!
//! This crate is a façade: it re-exports the workspace's sub-crates under
//! one roof so applications can depend on a single crate.
//!
//! ```
//! use bobw::core::{run_failover, ExperimentConfig, Technique, Testbed};
//!
//! // Build a small Internet with the paper's 8-site CDN deployment...
//! let mut cfg = ExperimentConfig::quick(42);
//! cfg.targets_per_site = 20; // keep the doctest fast
//! cfg.probe.duration = bobw::event::SimDuration::from_secs(60);
//! let testbed = Testbed::new(cfg);
//! // ...fail the Boston site under reactive-anycast...
//! let result = run_failover(&testbed, &Technique::ReactiveAnycast, testbed.site("bos"));
//! // ...and look at how fast clients came back.
//! assert!(result.num_controllable > 0);
//! assert!(!result.reconnection_secs().is_empty());
//! ```
//!
//! The crate layout mirrors the system layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`net`] | `bobw-net` | prefixes, LPM trie, AS paths |
//! | [`event`] | `bobw-event` | deterministic discrete-event kernel |
//! | [`topology`] | `bobw-topology` | AS graph, generator, CDN deployment |
//! | [`bgp`] | `bobw-bgp` | the BGP simulator |
//! | [`dataplane`] | `bobw-dataplane` | forwarding, catchment, probing |
//! | [`dns`] | `bobw-dns` | DNS redirection and TTL violations |
//! | [`core`] | `bobw-core` | **the paper's techniques + experiments** |
//! | [`traffic`] | `bobw-traffic` | demand, capacity/overload, DNS shedding |
//! | [`measure`] | `bobw-measure` | collectors, estimators, CDFs |

pub use bobw_bgp as bgp;
pub use bobw_core as core;
pub use bobw_dataplane as dataplane;
pub use bobw_dns as dns;
pub use bobw_event as event;
pub use bobw_measure as measure;
pub use bobw_net as net;
pub use bobw_topology as topology;
pub use bobw_traffic as traffic;
