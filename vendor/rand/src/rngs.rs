//! `SmallRng`: xoshiro256++, seeded exactly like `rand` 0.8.
//!
//! `rand_core` 0.6's default `seed_from_u64` expands the seed with a PCG32
//! output sequence into little-endian state words; reproducing that exactly
//! keeps every stream in this workspace identical to what upstream `rand`
//! would generate for the same seed.

use crate::{Rng, SeedableRng};

/// Small, fast, deterministic PRNG (xoshiro256++). Not cryptographically
/// secure — simulation use only, same caveat as upstream `SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6 `seed_from_u64`: PCG32 with the default multiplier
        // and rand_core's increment, emitting 4-byte chunks little-endian.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes());
        }

        let mut s = [0u64; 4];
        for (word, bytes) in s.iter_mut().zip(seed.chunks(8)) {
            *word = u64::from_le_bytes(bytes.try_into().unwrap());
        }
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ reference step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn next_u32(&mut self) -> u32 {
        // Upstream discards the low half: the lowest xoshiro bits have
        // linear dependencies.
        (self.next_u64() >> 32) as u32
    }
}
