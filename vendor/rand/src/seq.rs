//! Slice helpers (subset of `rand::seq::SliceRandom`).

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, identical traversal order to upstream.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly choose one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

/// Upstream's `gen_index`: bounds that fit in u32 take the u32 sampling
/// path, which matters for stream fidelity.
fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    use crate::SampleRange;
    if ubound <= u32::MAX as usize {
        (0..ubound as u32).sample_single(rng) as usize
    } else {
        (0..ubound).sample_single(rng)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, SmallRng};

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(9);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
        let w = [1, 2, 3];
        assert!(w.choose(&mut rng).is_some());
    }
}
