//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The container has no network access, so the workspace vendors the small
//! slice of `rand` it actually uses: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle,
//! choose}`.
//!
//! Fidelity matters more than breadth here: the simulator's checked-in
//! expectations (catchment shapes, stability orderings, results/*.json) were
//! produced against upstream `rand` 0.8 streams, so every sampling algorithm
//! below reproduces the upstream one bit-for-bit — xoshiro256++ with
//! rand_core's PCG32 seeding, Lemire widening-multiply integer ranges, the
//! [1, 2) mantissa trick for float ranges, fixed-point `Bernoulli`, and the
//! u32-path Fisher–Yates index sampling.

pub mod rngs;
pub mod seq;

pub use rngs::SmallRng;

/// Construct a generator from a 64-bit seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core + convenience generator API (merged subset of `RngCore` and `Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range. Panics on an
    /// empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (upstream `Bernoulli`: fixed-point
    /// comparison against `p * 2^64`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        if p == 1.0 {
            return true;
        }
        // 2^64 as f64; (p * SCALE) as u64 matches Bernoulli::new.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

/// Types samplable by `Rng::gen` (stands in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_from_u32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}

macro_rules! impl_standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_from_u32!(u8, u16, u32, i8, i16, i32);
impl_standard_from_u64!(u64, usize, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Upstream uses a sign test on the most significant u32 bit.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53-bit "multiply" method: uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range` (stands in for `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire rejection sampling with a u32-wide multiply, as upstream uses for
/// 8/16/32-bit integer ranges.
fn uniform_u32<R: Rng + ?Sized>(rng: &mut R, range: u32, small: bool) -> u32 {
    debug_assert!(range > 0);
    let zone = if small {
        // u8/u16: exact zone via modulus.
        let ints_to_reject = (u32::MAX - range + 1) % range;
        u32::MAX - ints_to_reject
    } else {
        (range << range.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let m = (v as u64).wrapping_mul(range as u64);
        let (hi, lo) = ((m >> 32) as u32, m as u32);
        if lo <= zone {
            return hi;
        }
    }
}

/// Lemire rejection sampling with a u64-wide multiply (64-bit ranges).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128).wrapping_mul(range as u128);
        let (hi, lo) = ((m >> 64) as u64, m as u64);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_range_int {
    ($([$t:ty, $unsigned:ty, $sampler:ident, $small:expr]),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_single(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let range = end.wrapping_sub(start).wrapping_add(1) as $unsigned;
                if range == 0 {
                    // Full domain.
                    return <$t as Standard>::sample(rng);
                }
                #[allow(clippy::unnecessary_cast, clippy::cast_lossless)]
                let hi = $sampler(rng, range as _, $small);
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

// Which sampler a type uses mirrors upstream's `uniform_int_impl!`
// pairings: 8/16/32-bit types sample u32s, 64-bit types sample u64s, and
// u8/u16 use the exact (modulus) zone.
fn uniform_u32_sized<R: Rng + ?Sized>(rng: &mut R, range: u32, small: bool) -> u32 {
    uniform_u32(rng, range, small)
}

fn uniform_u64_sized<R: Rng + ?Sized>(rng: &mut R, range: u64, _small: bool) -> u64 {
    uniform_u64(rng, range)
}

impl_range_int!(
    [u8, u8, uniform_u32_sized, true],
    [u16, u16, uniform_u32_sized, true],
    [u32, u32, uniform_u32_sized, false],
    [u64, u64, uniform_u64_sized, false],
    [usize, usize, uniform_u64_sized, false],
    [i8, u8, uniform_u32_sized, true],
    [i16, u16, uniform_u32_sized, true],
    [i32, u32, uniform_u32_sized, false],
    [i64, u64, uniform_u64_sized, false],
    [isize, usize, uniform_u64_sized, false]
);

/// Upstream `UniformFloat::sample_single`: generate in [1, 2) from mantissa
/// bits, then scale — `value1_2 * scale + (low - scale)` lands in
/// [low, high).
impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            let mantissa = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | mantissa);
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        if start == end {
            return start;
        }
        let scale = end - start;
        loop {
            let mantissa = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | mantissa);
            let res = value1_2 * scale + (start - scale);
            if res <= end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            let mantissa = rng.next_u32() >> 9;
            let value1_2 = f32::from_bits((127u32 << 23) | mantissa);
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeding_differs_by_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u8..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&n));
            let w = rng.gen_range(0u32..7);
            assert!(w < 7);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
