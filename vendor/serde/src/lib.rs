//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based serializer architecture, this stub lowers
//! every value to a [`Value`] tree which `serde_json` then renders. The
//! encoding conventions match upstream serde_json for the shapes this
//! workspace uses:
//!
//! - named struct → object with fields in declaration order
//! - newtype struct → the inner value
//! - tuple struct → array
//! - unit enum variant → `"Variant"`
//! - newtype enum variant → `{"Variant": inner}`
//! - tuple enum variant → `{"Variant": [..]}`
//! - struct enum variant → `{"Variant": {..}}`
//! - `Option::None` → `null`; non-finite floats → `null`
//! - maps → objects (HashMap keys are sorted for deterministic output)
//!
//! `Deserialize` is the mirror image: [`Deserialize::from_value`] rebuilds a
//! typed value from a [`Value`] tree (usually one produced by
//! `serde_json::from_str`), reporting failures as a [`DeError`] that carries
//! the JSON path of the offending node — `events[3].action: unknown variant`
//! rather than a bare message. The derive generates `from_value` impls that
//! accept exactly the encodings the `Serialize` derive emits.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Intermediate serialization tree. `Object` preserves insertion order so
/// struct fields render in declaration order, like serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other node kinds or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric node widened to `f64` (the only lossless common type).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer nodes as `u64`; floats never coerce.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }
}

/// Serializable types. The derive macro implements this by lowering fields in
/// declaration order.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserializable types: the inverse of [`Serialize`], reading the same
/// [`Value`] encodings the `Serialize` derive produces. Errors carry a
/// field path (see [`DeError`]) so `bobw scenario validate` can point at
/// the exact offending node in a hand-written JSON file.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization failure: a message plus the path from the root to the
/// node that failed, accumulated as the error bubbles up through
/// [`de::field`] / [`de::element`] calls.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Path segments like `.events[3].action`, prepended as the error
    /// propagates outward (innermost segment is added first).
    path: String,
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError {
            path: String::new(),
            msg: msg.into(),
        }
    }

    /// Wraps the error as occurring inside object field `name`.
    pub fn in_field(mut self, name: &str) -> DeError {
        self.path = format!(".{name}{}", self.path);
        self
    }

    /// Wraps the error as occurring inside array element `idx`.
    pub fn in_index(mut self, idx: usize) -> DeError {
        self.path = format!("[{idx}]{}", self.path);
        self
    }

    /// The accumulated path, e.g. `events[3].action` (empty at the root).
    pub fn path(&self) -> &str {
        self.path.strip_prefix('.').unwrap_or(&self.path)
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{}: {}", self.path(), self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// Helpers used by the generated `Deserialize` impls (and hand-written
/// ones). Public so the derive output can call them via `::serde::de::…`.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Human-readable node kind for error messages.
    pub fn kind(v: &Value) -> &'static str {
        match v {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Fails unless `v` is an object (the shape check for named structs).
    pub fn expect_object(v: &Value) -> Result<(), DeError> {
        match v {
            Value::Object(_) => Ok(()),
            other => Err(DeError::new(format!(
                "expected object, got {}",
                kind(other)
            ))),
        }
    }

    /// Fails unless `v` is `null` (the encoding of unit structs).
    pub fn expect_null(v: &Value) -> Result<(), DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!("expected null, got {}", kind(other)))),
        }
    }

    /// Reads object field `name`. A missing key is treated as `null`, so
    /// `Option` fields may be omitted entirely; for any other type the
    /// error says "missing field" rather than "expected X, got null".
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        expect_object(v)?;
        match v.get(name) {
            Some(inner) => T::from_value(inner).map_err(|e| e.in_field(name)),
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::new(format!("missing field `{name}`"))),
        }
    }

    /// Reads element `idx` of an array that must have exactly `expected`
    /// elements (tuple structs and tuple enum variants).
    pub fn element<T: Deserialize>(v: &Value, idx: usize, expected: usize) -> Result<T, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {}", kind(v))))?;
        if items.len() != expected {
            return Err(DeError::new(format!(
                "expected {expected} elements, got {}",
                items.len()
            )));
        }
        T::from_value(&items[idx]).map_err(|e| e.in_index(idx))
    }

    /// Parses a JSON object key back into a map key type. Serialization
    /// lowers string/integer/bool keys to strings, so try each rendering.
    pub fn parse_key<K: Deserialize>(k: &str) -> Result<K, DeError> {
        if let Ok(v) = K::from_value(&Value::Str(k.to_string())) {
            return Ok(v);
        }
        if let Ok(n) = k.parse::<u64>() {
            if let Ok(v) = K::from_value(&Value::UInt(n)) {
                return Ok(v);
            }
        }
        if let Ok(n) = k.parse::<i64>() {
            if let Ok(v) = K::from_value(&Value::Int(n)) {
                return Ok(v);
            }
        }
        if let Ok(b) = k.parse::<bool>() {
            if let Ok(v) = K::from_value(&Value::Bool(b)) {
                return Ok(v);
            }
        }
        Err(DeError::new(format!("unparseable map key {k:?}")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
}

/// Render a serialized key as a JSON object key. serde_json only accepts
/// string-like and integer keys; everything else is a hard error there, and a
/// panic here (all map keys in this workspace are strings or integers).
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key cannot be serialized as a JSON object key: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        // HashMap iteration order is nondeterministic; sort to keep output
        // byte-stable across runs and thread counts.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::new(format!(
                        "expected unsigned integer, got {}", de::kind(v)
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "{n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        DeError::new(format!("{n} out of range for i64"))
                    })?,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {}", de::kind(other)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "{n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, got {}", de::kind(v))))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {}", de::kind(v))))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!(
                "expected single-char string, got {s:?}"
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {}", de::kind(v))))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {}", de::kind(v))))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| e.in_index(i)))
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected {N} elements, got {got}")))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr, $($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                Ok(($(de::element::<$t>(v, $n, $len)?,)+))
            }
        }
    )*};
}

impl_de_tuple! {
    (1, 0 A),
    (2, 0 A, 1 B),
    (3, 0 A, 1 B, 2 C),
    (4, 0 A, 1 B, 2 C, 3 D),
    (5, 0 A, 1 B, 2 C, 3 D, 4 E),
}

/// Shared body of the map impls: object entries → parsed (key, value) pairs.
fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .map(|(k, val)| {
                Ok((
                    de::parse_key::<K>(k)?,
                    V::from_value(val).map_err(|e| e.in_field(k))?,
                ))
            })
            .collect(),
        other => Err(DeError::new(format!(
            "expected object, got {}",
            de::kind(other)
        ))),
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        map_entries(v).map(|e| e.into_iter().collect())
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, DeError> {
        map_entries(v).map(|e| e.into_iter().collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<HashSet<T>, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_nodes() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        let Value::Object(entries) = m.to_value() else {
            panic!("expected object")
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }

    #[test]
    fn primitives_round_trip_through_from_value() {
        assert_eq!(u32::from_value(&Value::UInt(5)).unwrap(), 5);
        assert_eq!(i64::from_value(&Value::Int(-3)).unwrap(), -3);
        assert_eq!(i64::from_value(&Value::UInt(3)).unwrap(), 3);
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
        assert!(bool::from_value(&Value::Bool(true)).unwrap());
        assert_eq!(
            String::from_value(&Value::Str("hi".into())).unwrap(),
            "hi".to_string()
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::UInt(9)).unwrap(), Some(9));
        assert!(u8::from_value(&Value::UInt(256)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(u32::from_value(&Value::Float(1.5)).is_err());
    }

    #[test]
    fn containers_round_trip_through_from_value() {
        let v = Value::Array(vec![Value::UInt(1), Value::UInt(2)]);
        assert_eq!(Vec::<u8>::from_value(&v).unwrap(), vec![1, 2]);
        assert_eq!(<[u8; 2]>::from_value(&v).unwrap(), [1, 2]);
        assert!(<[u8; 3]>::from_value(&v).is_err());
        assert_eq!(<(u8, u8)>::from_value(&v).unwrap(), (1, 2));
        let m = Value::Object(vec![("a".into(), Value::UInt(1))]);
        let parsed: BTreeMap<String, u8> = Deserialize::from_value(&m).unwrap();
        assert_eq!(parsed.get("a"), Some(&1));
        let keyed = Value::Object(vec![("7".into(), Value::Bool(true))]);
        let parsed: BTreeMap<u32, bool> = Deserialize::from_value(&keyed).unwrap();
        assert_eq!(parsed.get(&7), Some(&true));
    }

    #[test]
    fn errors_carry_the_json_path() {
        let v = Value::Object(vec![(
            "xs".into(),
            Value::Array(vec![Value::UInt(1), Value::Str("two".into())]),
        )]);
        let err = de::field::<Vec<u8>>(&v, "xs").unwrap_err();
        assert_eq!(err.path(), "xs[1]");
        assert_eq!(
            err.to_string(),
            "xs[1]: expected unsigned integer, got string"
        );
        let missing = de::field::<u8>(&v, "nope").unwrap_err();
        assert_eq!(missing.to_string(), "missing field `nope`");
        // Missing Option fields quietly become None.
        assert_eq!(de::field::<Option<u8>>(&v, "nope").unwrap(), None);
    }
}
