//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based serializer architecture, this stub lowers
//! every value to a [`Value`] tree which `serde_json` then renders. The
//! encoding conventions match upstream serde_json for the shapes this
//! workspace uses:
//!
//! - named struct → object with fields in declaration order
//! - newtype struct → the inner value
//! - tuple struct → array
//! - unit enum variant → `"Variant"`
//! - newtype enum variant → `{"Variant": inner}`
//! - tuple enum variant → `{"Variant": [..]}`
//! - struct enum variant → `{"Variant": {..}}`
//! - `Option::None` → `null`; non-finite floats → `null`
//! - maps → objects (HashMap keys are sorted for deterministic output)
//!
//! `Deserialize` exists only so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Deserialize)]` compile; nothing in the workspace parses JSON.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Intermediate serialization tree. `Object` preserves insertion order so
/// struct fields render in declaration order, like serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other node kinds or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric node widened to `f64` (the only lossless common type).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer nodes as `u64`; floats never coerce.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }
}

/// Serializable types. The derive macro implements this by lowering fields in
/// declaration order.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Placeholder so `#[derive(Deserialize)]` and trait imports compile; no
/// parsing support is provided (or needed) in this workspace.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
}

/// Render a serialized key as a JSON object key. serde_json only accepts
/// string-like and integer keys; everything else is a hard error there, and a
/// panic here (all map keys in this workspace are strings or integers).
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key cannot be serialized as a JSON object key: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        // HashMap iteration order is nondeterministic; sort to keep output
        // byte-stable across runs and thread counts.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_nodes() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        let Value::Object(entries) = m.to_value() else {
            panic!("expected object")
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }
}
