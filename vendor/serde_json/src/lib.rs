//! Minimal offline stand-in for `serde_json`.
//!
//! Renders the `serde::Value` tree produced by the vendored serde stub.
//! Output conventions match upstream where the workspace depends on them:
//! two-space pretty indentation, `null` for non-finite floats, integral
//! floats rendered with a trailing `.0`, empty containers as `{}`/`[]`.
//! Rendering is fully deterministic — a requirement for the byte-identical
//! `--jobs 1` vs `--jobs N` experiment outputs.
//!
//! [`from_str`] parses JSON text back into an untyped [`Value`] tree
//! (enough for tools that read the workspace's own output, e.g.
//! `bench_gate` diffing `BENCH_*.json`). [`from_str_typed`] layers the
//! vendored serde's `Deserialize` on top, so scenario files and wire
//! configs are validated at the type level with field-path errors.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize with two-space indentation (matches upstream pretty output).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

/// Serialize compactly (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => out.push_str(&render_float(*f)),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent + 1, pretty, out);
                render(item, indent + 1, pretty, out);
            }
            newline_indent(indent, pretty, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent + 1, pretty, out);
                render_string(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, indent + 1, pretty, out);
            }
            newline_indent(indent, pretty, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: usize, pretty: bool, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

/// Upstream serde_json emits `null` for NaN/infinities and always keeps a
/// fractional part for finite floats (ryu): `1.0`, not `1`.
fn render_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// Parse JSON text into an untyped [`Value`] tree.
///
/// Accepts exactly the grammar of RFC 8259 with one relaxation matching
/// upstream serde_json: any amount of leading/trailing whitespace. Numbers
/// without a fraction or exponent become `Int`/`UInt` (sign-dependent),
/// everything else becomes `Float` — mirroring what [`to_string`] renders.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

/// Parse JSON text into a typed value: [`from_str`] followed by
/// [`Deserialize::from_value`]. Deserialization failures keep their JSON
/// path in the message (`events[3].at_s: expected number, got string`).
pub fn from_str_typed<T: Deserialize>(s: &str) -> Result<T> {
    let v = from_str(s)?;
    from_value(&v).map_err(|e| Error(e.to_string()))
}

/// Convert an already-parsed [`Value`] tree into a typed value, preserving
/// the structured [`serde::DeError`] (path + message) for callers that
/// want to report it precisely.
pub fn from_value<T: Deserialize>(v: &Value) -> std::result::Result<T, serde::DeError> {
    T::from_value(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn escape(&mut self) -> Result<char> {
        let c = self
            .peek()
            .ok_or_else(|| Error("unterminated escape".to_string()))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: the low half must follow immediately.
                    self.expect(b'\\')?;
                    self.expect(b'u')?;
                    let lo = self.hex4()?;
                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00) & 0x3ff)
                } else {
                    hi
                };
                char::from_u32(code)
                    .ok_or_else(|| Error(format!("invalid unicode escape u+{code:04x}")))?
            }
            other => {
                return Err(Error(format!(
                    "invalid escape '\\{}' at byte {}",
                    other as char,
                    self.pos - 1
                )))
            }
        })
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| Error(format!("invalid \\u escape '{digits}'")))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ascii by construction");
        if !fractional {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    // `-0` and magnitudes beyond i64 fall through to Float.
                    if n != 0 && n <= i64::MAX as u64 + 1 {
                        return Ok(Value::Int((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Object(vec![])),
        ]);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ],\n  \"c\": {}\n}";
        assert_eq!(to_string_pretty(&v).unwrap(), expected);
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(render_float(1.0), "1.0");
        assert_eq!(render_float(0.5), "0.5");
        assert_eq!(render_float(-2.0), "-2.0");
        assert_eq!(render_float(f64::NAN), "null");
        assert_eq!(render_float(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_controls() {
        let mut out = String::new();
        render_string("a\"b\\c\nd", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(from_str("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\ndAé""#).unwrap(),
            Value::Str("a\"b\\c\ndAé".into())
        );
        // Surrogate pair → one astral-plane char.
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::Str("\u{1f600}".into()));
    }

    #[test]
    fn parse_containers_preserve_order() {
        let v = from_str(r#"{"b": [1, 2], "a": {}, "c": [true, null]}"#).unwrap();
        let Value::Object(entries) = &v else {
            panic!("expected object")
        };
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[1].0, "a");
        assert_eq!(
            entries[2].1,
            Value::Array(vec![Value::Bool(true), Value::Null])
        );
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("sea-1\n\"x\"".into())),
            ("count".to_string(), Value::UInt(12)),
            ("delta".to_string(), Value::Int(-3)),
            ("ratio".to_string(), Value::Float(0.25)),
            (
                "samples".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        // `1.0` re-parses as Float(1.0) so the tree matches exactly.
        assert_eq!(back, v);
        // And the re-render is byte-identical.
        assert_eq!(to_string_pretty(&back).unwrap(), text);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "tru", "[1,", "{\"a\"}", "{\"a\":}", "1 2", "\"oops", "{,}", "[1 2]", "nul",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn value_accessors() {
        let v = from_str(r#"{"n": 3, "f": 1.5, "s": "x", "xs": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").and_then(Value::as_u64), None);
    }
}
