//! Minimal offline stand-in for `serde_json`.
//!
//! Renders the `serde::Value` tree produced by the vendored serde stub.
//! Output conventions match upstream where the workspace depends on them:
//! two-space pretty indentation, `null` for non-finite floats, integral
//! floats rendered with a trailing `.0`, empty containers as `{}`/`[]`.
//! Rendering is fully deterministic — a requirement for the byte-identical
//! `--jobs 1` vs `--jobs N` experiment outputs.

use serde::{Serialize, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize with two-space indentation (matches upstream pretty output).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

/// Serialize compactly (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => out.push_str(&render_float(*f)),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent + 1, pretty, out);
                render(item, indent + 1, pretty, out);
            }
            newline_indent(indent, pretty, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent + 1, pretty, out);
                render_string(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, indent + 1, pretty, out);
            }
            newline_indent(indent, pretty, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: usize, pretty: bool, out: &mut String) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

/// Upstream serde_json emits `null` for NaN/infinities and always keeps a
/// fractional part for finite floats (ryu): `1.0`, not `1`.
fn render_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_upstream_layout() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Object(vec![])),
        ]);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ],\n  \"c\": {}\n}";
        assert_eq!(to_string_pretty(&v).unwrap(), expected);
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(render_float(1.0), "1.0");
        assert_eq!(render_float(0.5), "0.5");
        assert_eq!(render_float(-2.0), "-2.0");
        assert_eq!(render_float(f64::NAN), "null");
        assert_eq!(render_float(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_controls() {
        let mut out = String::new();
        render_string("a\"b\\c\nd", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
