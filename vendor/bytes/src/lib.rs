//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes` (cheaply cloneable, front-consumable view over shared
//! storage), `BytesMut` (growable builder), and the `Buf`/`BufMut` method
//! subset the dataplane packet codecs use: `get_u8`/`get_u16` (big-endian,
//! front-consuming), `put_u8`/`put_u16`/`put_slice`, `freeze`, plus slice
//! deref for checksumming and in-place patching.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer. Clones share storage; consuming
/// reads (`get_u8`, …) advance a view offset without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Sub-view of `self` (indices relative to the current view).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer for building packets.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Front-consuming big-endian reads (subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8: buffer exhausted");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "get_u16: buffer exhausted");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32: buffer exhausted");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Big-endian appends (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_slice(&mut self, slice: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_reads_consume_front() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0x12);
        b.put_u16(0x3456);
        b.put_slice(b"ok");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(frozen.get_u8(), 0x12);
        assert_eq!(frozen.get_u16(), 0x3456);
        assert_eq!(frozen.as_ref(), b"ok");
    }

    #[test]
    fn clones_share_and_compare() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn in_place_patch_via_deref_mut() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u32(0);
        b[2..4].copy_from_slice(&[0xab, 0xcd]);
        assert_eq!(&b[..], &[0, 0, 0xab, 0xcd]);
    }
}
