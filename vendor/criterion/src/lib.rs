//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API subset the `crates/bench/benches/*` targets use:
//! `Criterion::default().sample_size(..).measurement_time(..).warm_up_time(..)`,
//! `bench_function`, `benchmark_group` + `bench_with_input` + `finish`,
//! `Bencher::{iter, iter_batched}`, `BatchSize::SmallInput`,
//! `BenchmarkId::from_parameter`, and the `criterion_group!`/`criterion_main!`
//! macros. No statistics engine: each benchmark runs a short warm-up, then
//! `sample_size` timed iterations, and prints min/mean/max to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            samples: Vec::with_capacity(self.criterion.sample_size),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new<P: Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "bench {name:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Re-export so `black_box` works if benches import it from criterion.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        // 1 warm-up + 3 samples
        assert_eq!(count, 4);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &5u32, |b, &v| {
            b.iter_batched(|| v, |i| hits += i, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(hits, 15);
    }
}
