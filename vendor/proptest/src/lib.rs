//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_oneof!`,
//! integer/float range strategies, `any::<T>()`, `Just`, `.prop_map`, tuple
//! strategies, and `collection::{vec, hash_map}`.
//!
//! Instead of upstream's shrinking machinery, the runner is deterministic and
//! **simplest-case-first**: case 0 of every test generates each strategy's
//! canonical simplest value (the start of a range, `false`, 0, the minimum
//! collection size, the first `prop_oneof!` arm). The checked-in upstream
//! regression files in this repo all say `shrinks to seed = 0`, i.e. the
//! minimal range value — exactly what case 0 replays — so the recorded
//! regressions are exercised on every run without cc-hash replay. Remaining
//! cases derive their RNG seed from the test's file/name and case index, so
//! failures reproduce across runs and machines.
//!
//! Failures of random cases are additionally persisted to the sibling
//! `<file>.proptest-regressions` file as replayable `cc <16-hex-seed>`
//! lines (same location and shape as upstream, different hash length) and
//! replayed before any novel cases on later runs — check them in so every
//! machine replays them.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic generator used during sampling (xoshiro256++ via splitmix64,
/// self-contained so the stub has zero dependencies).
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Value generator. `simple == true` requests the canonical simplest value
/// (used for case 0, standing in for upstream's shrunken regression cases).
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng, simple: bool) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng, simple: bool) -> T {
        (**self).gen_value(rng, simple)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng, _simple: bool) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng, simple: bool) -> O {
        (self.f)(self.strategy.gen_value(rng, simple))
    }
}

/// Weighted-less union of strategies, used by `prop_oneof!`. The simplest
/// value is the first arm's simplest value.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng, simple: bool) -> T {
        if simple {
            self.arms[0].gen_value(rng, true)
        } else {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].gen_value(rng, false)
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng, simple: bool) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                if simple {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng, simple: bool) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if simple {
                    return start;
                }
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng, simple: bool) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        if simple {
            return self.start;
        }
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng, simple: bool) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        if simple {
            start
        } else {
            start + rng.next_f64() * (end - start)
        }
    }
}

/// Types with a canonical strategy for `any::<T>()`.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy backing `any::<T>()`; simplest value is the default.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }

        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng, simple: bool) -> $t {
                if simple { 0 } else { rng.next_u64() as $t }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng, simple: bool) -> bool {
        if simple {
            false
        } else {
            rng.next_u64() & 1 == 1
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn gen_value(&self, rng: &mut TestRng, simple: bool) -> Self::Value {
                ($(self.$n.gen_value(rng, simple),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Size specification for collection strategies (subset of `SizeRange`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng, simple: bool) -> usize {
        if simple {
            self.min
        } else {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `size` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng, simple: bool) -> Vec<S::Value> {
            let len = self.size.sample(rng, simple);
            (0..len)
                .map(|_| self.element.gen_value(rng, simple))
                .collect()
        }
    }

    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `proptest::collection::hash_map`. Key collisions may make the map
    /// smaller than the sampled size, as upstream permits.
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> HashMapStrategy<K, V>
    where
        K::Value: Eq + Hash,
    {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
    where
        K::Value: Eq + Hash,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn gen_value(&self, rng: &mut TestRng, simple: bool) -> HashMap<K::Value, V::Value> {
            let len = self.size.sample(rng, simple);
            let mut map = HashMap::with_capacity(len);
            // Bounded attempts: colliding keys may leave the map short, which
            // upstream also allows for hash_map strategies.
            for _ in 0..len.saturating_mul(4) {
                if map.len() >= len {
                    break;
                }
                let k = self.key.gen_value(rng, simple);
                let v = self.value.gen_value(rng, simple);
                map.insert(k, v);
            }
            map
        }
    }
}

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this stub trades depth for wall-clock
        // since several properties converge full BGP simulations per case.
        ProptestConfig { cases: 32 }
    }
}

/// Failure raised by `prop_assert*` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const REGRESSION_HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

/// Where the regression file for `file` lives: next to the source file,
/// `foo.rs` → `foo.proptest-regressions` (upstream's layout).
///
/// `file` comes from `file!()`, which is relative to the *workspace* root,
/// while `manifest_dir` is the absolute path of the test's own crate — so
/// walk up from the manifest until the joined path exists. Returns `None`
/// when the source cannot be located (e.g. a vendored build outside the
/// original tree); persistence is then skipped, never wrong.
pub fn regression_path(manifest_dir: &str, file: &str) -> Option<std::path::PathBuf> {
    let rel = std::path::Path::new(file);
    let source = if rel.is_absolute() {
        rel.exists().then(|| rel.to_path_buf())?
    } else {
        let mut base = std::path::Path::new(manifest_dir).to_path_buf();
        loop {
            let candidate = base.join(rel);
            if candidate.exists() {
                break candidate;
            }
            if !base.pop() {
                return None;
            }
        }
    };
    Some(source.with_extension("proptest-regressions"))
}

/// Replayable seeds from a regression file: `cc <16-hex>` lines written by
/// this stub. Upstream's 64-hex shrink hashes cannot seed our RNG; they are
/// covered by the simplest-value case 0 instead (see module docs) and are
/// skipped here.
fn read_regressions(path: &std::path::Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| line.trim().strip_prefix("cc "))
        .filter_map(|rest| {
            let token = rest.split_whitespace().next()?;
            (token.len() == 16).then(|| u64::from_str_radix(token, 16).ok())?
        })
        .collect()
}

/// Appends a newly found failing seed (best-effort: IO errors only cost the
/// persistence, never the test verdict — the panic still happens).
fn persist_regression(path: &std::path::Path, seed: u64, name: &str, inputs: &str) {
    if read_regressions(path).contains(&seed) {
        return;
    }
    let mut text = std::fs::read_to_string(path).unwrap_or_default();
    if text.is_empty() {
        text.push_str(REGRESSION_HEADER);
    }
    if !text.ends_with('\n') {
        text.push('\n');
    }
    // One line, upstream-shaped: seed first, context as a comment.
    let inputs_one_line = inputs.replace('\n', " ");
    text.push_str(&format!(
        "cc {seed:016x} # property `{name}` failed with {inputs_one_line}\n"
    ));
    let _ = std::fs::write(path, text);
}

/// Drive one property: persisted regression seeds replay first, then case 0
/// samples every strategy's simplest value, and the remaining `cases - 1`
/// sample pseudo-randomly from a seed derived from the test identity and
/// case index (stable across runs and machines). A failure of a random case
/// appends its seed to the sibling `.proptest-regressions` file so later
/// runs (and other machines, once checked in) replay it up front.
pub fn run_cases<F>(config: ProptestConfig, manifest_dir: &str, file: &str, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng, bool) -> (String, Result<(), TestCaseError>),
{
    let reg_path = regression_path(manifest_dir, file);
    if let Some(path) = &reg_path {
        for seed in read_regressions(path) {
            let mut rng = TestRng::new(seed);
            let (inputs, result) = f(&mut rng, false);
            if let Err(e) = result {
                panic!(
                    "proptest stub: property `{name}` failed replaying persisted regression \
                     cc {seed:016x} (from {})\n  inputs: {inputs}\n  {e}",
                    path.display()
                );
            }
        }
    }
    // Upstream honors PROPTEST_CASES as an override; keep that escape hatch
    // so CI or a local hunt can crank the case count without code edits.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    for case in 0..cases.max(1) {
        let seed = fnv1a(file) ^ fnv1a(name).rotate_left(17) ^ (case as u64).wrapping_mul(0x9e37);
        let mut rng = TestRng::new(seed);
        let simple = case == 0;
        let (inputs, result) = f(&mut rng, simple);
        if let Err(e) = result {
            // Case 0 is not seed-replayable (it asks for simplest values,
            // not RNG draws) and reruns every time anyway; persist only the
            // random cases.
            if !simple {
                if let Some(path) = &reg_path {
                    persist_regression(path, seed, name, &inputs);
                }
            }
            panic!(
                "proptest stub: property `{name}` failed at case {case}{}\n  inputs: {inputs}\n  {e}",
                if simple { " (simplest values)" } else { "" }
            );
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // NOTE: like upstream, `#[test]` arrives via the pass-through metas —
        // the workspace's property tests all write it explicitly.
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                $cfg,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__rng, __simple| {
                $(let $arg = $crate::Strategy::gen_value(&($strat), __rng, __simple);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__inputs, __result)
            },
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_values_hit_range_starts() {
        let mut rng = TestRng::new(1);
        assert_eq!((5u64..100).gen_value(&mut rng, true), 5);
        assert_eq!((0u8..=32).gen_value(&mut rng, true), 0);
        let v = collection::vec(0u32..10, 3..8).gen_value(&mut rng, true);
        assert_eq!(v, vec![0, 0, 0]);
    }

    #[test]
    fn random_values_respect_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let x = (10u64..20).gen_value(&mut rng, false);
            assert!((10..20).contains(&x));
            let v = collection::vec(0u32..4, 1..6).gen_value(&mut rng, false);
            assert!(!v.is_empty() && v.len() < 6);
            assert!(v.iter().all(|&e| e < 4));
        }
    }

    #[test]
    fn union_simple_prefers_first_arm() {
        let u: Union<u32> = Union::new(vec![(7u32..9).boxed(), (100u32..200).boxed()]);
        let mut rng = TestRng::new(3);
        assert_eq!(u.gen_value(&mut rng, true), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Self-test: the macro surface compiles and runs.
        #[test]
        fn macro_roundtrip(x in 1u32..50, flip in any::<bool>()) {
            prop_assert!(x >= 1);
            prop_assert_ne!(x, 0, "x should never be zero, got {}", x);
            if flip {
                prop_assert_eq!(x, x);
            }
        }
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bobw-proptest-stub-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn regression_file_round_trips_and_dedups() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("demo.proptest-regressions");
        let _ = std::fs::remove_file(&path);

        persist_regression(&path, 0xdead_beef_0123_4567, "prop_x", "x = 3;");
        persist_regression(&path, 0xdead_beef_0123_4567, "prop_x", "x = 3;");
        persist_regression(&path, 42, "prop_y", "y = 1;\nz = 2;");

        assert_eq!(read_regressions(&path), vec![0xdead_beef_0123_4567, 42]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"));
        assert_eq!(text.matches("\ncc ").count(), 2, "{text}");
        assert!(!text.contains("z = 2\n"), "inputs must stay on one line");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn upstream_shrink_hashes_are_not_replayed_as_seeds() {
        let dir = scratch_dir("upstream");
        let path = dir.join("upstream.proptest-regressions");
        std::fs::write(
            &path,
            "cc acc5a3bfe675f7185eef1fb1730cc0b86bd487ad233e33005b96867831f1dead # shrinks to seed = 0\n",
        )
        .unwrap();
        // 64-hex upstream hashes are covered by case 0, not seed replay.
        assert!(read_regressions(&path).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failing_case_is_persisted_then_replayed_first() {
        let dir = scratch_dir("e2e");
        let src = dir.join("prop_demo.rs");
        std::fs::write(&src, "// stand-in source file\n").unwrap();
        let reg = dir.join("prop_demo.proptest-regressions");
        let _ = std::fs::remove_file(&reg);
        let manifest = dir.to_str().unwrap().to_string();
        let cfg = || ProptestConfig::with_cases(4);

        // First run: the first *random* case fails, so its seed must land
        // in the sibling regression file.
        let failed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cases(cfg(), &manifest, "prop_demo.rs", "demo", |_rng, simple| {
                let result = if simple {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("boom".into()))
                };
                ("x = 1;".to_string(), result)
            });
        }));
        assert!(failed.is_err());
        let seeds = read_regressions(&reg);
        assert_eq!(seeds.len(), 1, "the failing seed must be persisted");

        // Second run: the persisted seed replays before any fresh case —
        // the property sees exactly one (non-simple) invocation.
        let mut order = Vec::new();
        let replayed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cases(cfg(), &manifest, "prop_demo.rs", "demo", |_rng, simple| {
                order.push(simple);
                (String::new(), Err(TestCaseError::fail("still boom".into())))
            });
        }));
        assert!(replayed.is_err());
        assert_eq!(order, vec![false], "regression must replay before case 0");
        // A replay failure must not duplicate the entry.
        assert_eq!(read_regressions(&reg), seeds);

        // Once fixed, the full ladder runs again: replay + all 4 cases.
        let mut invocations = 0;
        run_cases(cfg(), &manifest, "prop_demo.rs", "demo", |_rng, _simple| {
            invocations += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(invocations, 5);

        let _ = std::fs::remove_file(&reg);
        let _ = std::fs::remove_file(&src);
    }
}
