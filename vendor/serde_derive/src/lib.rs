//! Offline stand-in for `serde_derive`, written against raw `proc_macro`
//! token streams (no `syn`/`quote` available in this container).
//!
//! `#[derive(Serialize)]` lowers the item to a `serde::Value` tree following
//! serde_json's encoding conventions. Supported shapes are exactly what this
//! workspace declares: non-generic named/tuple/unit structs and enums with
//! unit/newtype/tuple/struct variants, no `#[serde(...)]` attributes.
//! Anything else produces a `compile_error!` naming the unsupported shape.
//!
//! `#[derive(Deserialize)]` generates the inverse: a
//! `Deserialize::from_value` impl accepting exactly the encodings the
//! `Serialize` derive emits, with field-path error propagation through the
//! `::serde::de` helpers. Field *types* never appear in the generated code —
//! each `::serde::de::field`/`element` call site infers its target type from
//! the struct literal it initializes, so the parser above only needs names.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip attributes (`#[...]`, incl. doc comments) and visibility (`pub`,
/// `pub(crate)`, ...) at position `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1; // (crate) / (super) / ...
                }
            }
            _ => return i,
        }
    }
}

/// Split a token slice on commas at angle-bracket depth 0, dropping empty
/// chunks (trailing commas).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut depth: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected struct/enum, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected item name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub: generic type `{name}` is not supported by the vendored derive"
        ));
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct(
                parse_field_names(&g.stream().into_iter().collect::<Vec<_>>())?,
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = split_top_level(&g.stream().into_iter().collect::<Vec<_>>());
                Shape::TupleStruct(fields.len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("serde stub: unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let chunks = split_top_level(&g.stream().into_iter().collect::<Vec<_>>());
                let mut variants = Vec::new();
                for chunk in chunks {
                    variants.push(parse_variant(&chunk)?);
                }
                Shape::Enum(variants)
            }
            other => return Err(format!("serde stub: unsupported enum body: {other:?}")),
        },
        other => return Err(format!("serde stub: unsupported item kind `{other}`")),
    };

    Ok(Item { name, shape })
}

fn parse_field_names(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(tokens) {
        let i = skip_attrs_and_vis(&chunk, 0);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("serde stub: expected field name, got {other:?}")),
        }
    }
    Ok(names)
}

fn parse_variant(chunk: &[TokenTree]) -> Result<Variant, String> {
    let i = skip_attrs_and_vis(chunk, 0);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected variant name, got {other:?}")),
    };
    // After the name: nothing (unit, possibly `= discriminant`), a paren group
    // (tuple/newtype), or a brace group (struct variant).
    let shape = match chunk.get(i + 1) {
        None => VariantShape::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = split_top_level(&g.stream().into_iter().collect::<Vec<_>>());
            VariantShape::Tuple(fields.len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantShape::Named(
            parse_field_names(&g.stream().into_iter().collect::<Vec<_>>())?,
        ),
        other => {
            return Err(format!(
                "serde stub: unsupported variant body for `{name}`: {other:?}"
            ))
        }
    };
    Ok(Variant { name, shape })
}

fn object_literal(entries: &[(String, String)]) -> String {
    let fields: Vec<String> = entries
        .iter()
        .map(|(k, expr)| format!("(::std::string::String::from({k:?}), {expr})"))
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", fields.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect();
            object_literal(&entries)
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => {},",
                            object_literal(&[(
                                vname.clone(),
                                "::serde::Serialize::to_value(f0)".to_string()
                            )])
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let inner =
                                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "));
                            format!(
                                "{name}::{vname}({}) => {},",
                                binds.join(", "),
                                object_literal(&[(vname.clone(), inner)])
                            )
                        }
                        VariantShape::Named(fields) => {
                            let entries: Vec<(String, String)> = fields
                                .iter()
                                .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => {},",
                                fields.join(", "),
                                object_literal(&[(vname.clone(), object_literal(&entries))])
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Struct-literal initializer list reading each named field via
/// `::serde::de::field` (which handles missing-key and path wrapping).
fn field_inits(source: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field({source}, {f:?})?"))
        .collect();
    inits.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => format!(
            "::std::result::Result::Ok({name} {{ {} }})",
            field_inits("v", fields)
        ),
        // Newtype structs are transparent: parse the inner value directly.
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::map(::serde::Deserialize::from_value(v), {name})")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::element(v, {i}, {n})?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
        }
        Shape::UnitStruct => {
            format!("::serde::de::expect_null(v)?; ::std::result::Result::Ok({name})")
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let obj_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::map_err(\
                                 ::std::result::Result::map(\
                                     ::serde::Deserialize::from_value(inner), {name}::{vname}),\
                                 |e| ::serde::DeError::in_field(e, {vname:?})),"
                        ),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de::element(inner, {i}, {n})?"))
                                .collect();
                            format!(
                                "{vname:?} => (|| ::std::result::Result::Ok({name}::{vname}({})))()\
                                 .map_err(|e: ::serde::DeError| e.in_field({vname:?})),",
                                elems.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => format!(
                            "{vname:?} => (|| ::std::result::Result::Ok({name}::{vname} {{ {} }}))()\
                             .map_err(|e: ::serde::DeError| e.in_field({vname:?})),",
                            field_inits("inner", fields)
                        ),
                    }
                })
                .collect();
            let inner_bind = if obj_arms.is_empty() {
                "_inner"
            } else {
                "inner"
            };
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (k, {inner_bind}) = &entries[0];\n\
                         match k.as_str() {{\n\
                             {obj}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"expected {name} variant (string or \
                          single-key object), got {{}}\", ::serde::de::kind(other)))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                obj = obj_arms.join("\n"),
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
