//! Property-based integration tests over randomly generated topologies:
//! BGP routing invariants that must hold for every seed, checked across
//! crates (topology → bgp → dataplane).

use bobw::bgp::{BgpTimingConfig, NextHop, OriginConfig, Standalone};
use bobw::dataplane::{walk, walk_with_path, Delivery, ForwardEnv};
use bobw::event::RngFactory;
use bobw::net::Prefix;
use bobw::topology::{generate, GenConfig, Rel};
use proptest::prelude::*;

fn converged_anycast(
    seed: u64,
) -> (
    bobw::topology::Topology,
    bobw::topology::CdnDeployment,
    Standalone,
) {
    let rng = RngFactory::new(seed);
    let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
    let mut sim = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
    let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
    for &site in cdn.site_nodes() {
        sim.announce(site, prefix, OriginConfig::plain());
    }
    sim.run_to_idle(50_000_000);
    (topo, cdn, sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every client AS reaches some site under anycast, with no loops, and
    /// the forwarding path follows existing links.
    #[test]
    fn anycast_full_reachability(seed in 0u64..1000) {
        let (topo, cdn, sim) = converged_anycast(seed);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let env = ForwardEnv { topo: &topo, bgp: sim.sim(), down: &[] };
        for client in topo.client_nodes() {
            let (d, path) = walk_with_path(&env, client, prefix.addr_at(1));
            match d {
                Delivery::Delivered { node, .. } => {
                    prop_assert!(cdn.site_at(node).is_some(), "ended at non-site {node}");
                }
                other => prop_assert!(false, "client {client} undelivered: {other:?}"),
            }
            // The path is made of real links and visits no node twice.
            for w in path.windows(2) {
                prop_assert!(topo.are_linked(w[0], w[1]));
            }
            let mut sorted = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len(), "loop in delivered path");
        }
    }

    /// Valley-free invariant: no converged best path contains a
    /// customer→provider step after a peer/provider step (no valleys, no
    /// peer-peer-peer chains), checked by walking actual forwarding paths
    /// backwards. Equivalently: once a path goes "down" (provider→customer
    /// direction), it never goes "up" or "across" again.
    #[test]
    fn forwarding_paths_are_valley_free(seed in 0u64..1000) {
        let (topo, _cdn, sim) = converged_anycast(seed);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let env = ForwardEnv { topo: &topo, bgp: sim.sim(), down: &[] };
        for client in topo.client_nodes() {
            let (_d, path) = walk_with_path(&env, client, prefix.addr_at(1));
            // Packet direction client→site corresponds to route export
            // direction site→client. Walk the packet path and classify each
            // hop by the relationship of the NEXT node from the CURRENT
            // node's perspective: going to a Provider = "up", Peer/
            // MutualTransit = "across", Customer = "down".
            let mut gone_down_or_across = false;
            for w in path.windows(2) {
                let rel = topo.rel(w[0], w[1]).expect("linked");
                match rel {
                    Rel::Provider => {
                        prop_assert!(
                            !gone_down_or_across,
                            "valley: up-step after down/across step on {path:?}"
                        );
                    }
                    Rel::Peer => {
                        // At most one lateral step, and nothing after a
                        // down-step. (MutualTransit fabric links are exempt:
                        // R&E networks deliberately chain them.)
                        prop_assert!(
                            !gone_down_or_across,
                            "lateral step after down/across on {path:?}"
                        );
                        gone_down_or_across = true;
                    }
                    Rel::MutualTransit => {
                        // Fabric hops may chain, but never after a real
                        // down-step into a customer cone... (checked below
                        // via the down flag only for Customer steps).
                    }
                    Rel::Customer => {
                        gone_down_or_across = true;
                    }
                }
            }
        }
    }

    /// Withdrawing every origin leaves the whole network route-free: no
    /// ghost state survives full convergence.
    #[test]
    fn withdrawal_leaves_no_ghosts(seed in 0u64..1000) {
        let (topo, cdn, mut sim) = converged_anycast(seed);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        for &site in cdn.site_nodes() {
            sim.withdraw(site, prefix);
        }
        sim.run_to_idle(50_000_000);
        for id in topo.ids() {
            prop_assert!(sim.sim().best(id, &prefix).is_none(), "{id} kept a route");
            prop_assert!(sim.sim().fib_lookup(id, prefix.addr_at(1)).is_none());
        }
    }

    /// Longest-prefix-match consistency: with a /23 covering announced
    /// anycast and a /24 unicast, every node's FIB matches the /24 for
    /// addresses inside it and the /23 for the other half.
    #[test]
    fn lpm_consistency_across_network(seed in 0u64..1000) {
        let rng = RngFactory::new(seed);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        let mut sim = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let covering: Prefix = "184.164.244.0/23".parse().unwrap();
        let specific: Prefix = "184.164.244.0/24".parse().unwrap();
        let site0 = cdn.site_nodes()[0];
        sim.announce(site0, specific, OriginConfig::plain());
        for &site in cdn.site_nodes() {
            sim.announce(site, covering, OriginConfig::plain());
        }
        sim.run_to_idle(50_000_000);
        let in_specific = specific.addr_at(7);
        let in_other_half = covering.addr_at(0x17f); // 184.164.245.127
        for id in topo.ids() {
            // CDN sites other than site0 reject the /24 (their own ASN is
            // on its path) and match their self-originated /23 instead —
            // that is correct behaviour, so they are exempt here.
            if cdn.site_at(id).is_some() {
                continue;
            }
            if let Some((p, _)) = sim.sim().fib_lookup(id, in_specific) {
                prop_assert_eq!(p, specific, "node {} matched {} for specific addr", id, p);
            }
            if let Some((p, _)) = sim.sim().fib_lookup(id, in_other_half) {
                prop_assert_eq!(p, covering);
            }
        }
        // And the specific's traffic all lands at site0.
        let env = ForwardEnv { topo: &topo, bgp: sim.sim(), down: &[] };
        for client in topo.client_nodes() {
            if let Delivery::Delivered { node, .. } = walk(&env, client, in_specific) {
                prop_assert_eq!(node, site0);
            } else {
                prop_assert!(false, "client {} lost", client);
            }
        }
    }

    /// Prepending monotonicity: a site's anycast catchment never grows when
    /// it prepends more while others stay plain.
    #[test]
    fn prepending_shrinks_catchment(seed in 0u64..200) {
        let rng = RngFactory::new(seed);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let site0 = cdn.site_nodes()[0];
        let count_catchment = |prepend: u8| -> usize {
            let mut sim = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
            for &site in cdn.site_nodes() {
                let cfg = if site == site0 {
                    OriginConfig::prepended(prepend)
                } else {
                    OriginConfig::plain()
                };
                sim.announce(site, prefix, cfg);
            }
            sim.run_to_idle(50_000_000);
            let env = ForwardEnv { topo: &topo, bgp: sim.sim(), down: &[] };
            topo.client_nodes()
                .filter(|c| {
                    matches!(
                        walk(&env, *c, prefix.addr_at(1)),
                        Delivery::Delivered { node, .. } if node == site0
                    )
                })
                .count()
        };
        let c0 = count_catchment(0);
        let c3 = count_catchment(3);
        let c7 = count_catchment(7);
        prop_assert!(c3 <= c0, "prepend 3 grew catchment {c3} > {c0}");
        prop_assert!(c7 <= c3, "prepend 7 grew catchment {c7} > {c3}");
    }

    /// The FIB next hop is always a real neighbor (or Local at an origin).
    #[test]
    fn fib_next_hops_are_neighbors(seed in 0u64..1000) {
        let (topo, cdn, sim) = converged_anycast(seed);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        for id in topo.ids() {
            match sim.sim().fib_lookup(id, prefix.addr_at(1)) {
                Some((_, NextHop::Via(nh))) => prop_assert!(topo.are_linked(id, nh)),
                Some((_, NextHop::Local)) => {
                    prop_assert!(cdn.site_at(id).is_some(), "{id} claims Local without originating");
                }
                None => prop_assert!(false, "{id} has no route under anycast"),
            }
        }
    }
}
