//! End-to-end integration tests: the full §5 pipeline across all crates —
//! topology generation → BGP convergence → target selection → failure →
//! probing → metrics — checking the paper's headline relations.

use bobw::core::{run_failover, ExperimentConfig, Technique, Testbed};
use bobw::event::SimDuration;
use bobw::measure::Cdf;

fn testbed(seed: u64) -> Testbed {
    let mut cfg = ExperimentConfig::quick(seed);
    cfg.targets_per_site = 80;
    cfg.probe.duration = SimDuration::from_secs(240);
    Testbed::new(cfg)
}

fn failover_median(tb: &Testbed, t: &Technique, sites: &[&str]) -> f64 {
    let mut all = Vec::new();
    for s in sites {
        let r = run_failover(tb, t, tb.site(s));
        all.extend(r.failover_secs());
    }
    Cdf::new(all).median().expect("samples")
}

const SITES: &[&str] = &["bos", "atl", "slc"];

#[test]
fn headline_reactive_anycast_close_to_anycast_superprefix_far() {
    // The paper's central quantitative claim (Figure 2): reactive-anycast's
    // failover is close to anycast's, proactive-superprefix's is much
    // slower.
    let tb = testbed(11);
    let anycast = failover_median(&tb, &Technique::Anycast, SITES);
    let reactive = failover_median(&tb, &Technique::ReactiveAnycast, SITES);
    let superprefix = failover_median(&tb, &Technique::ProactiveSuperprefix, SITES);
    assert!(
        reactive <= anycast * 4.0 + 5.0,
        "reactive-anycast failover {reactive}s too far from anycast {anycast}s"
    );
    assert!(
        superprefix > 3.0 * reactive,
        "superprefix failover {superprefix}s should be much slower than reactive {reactive}s"
    );
    assert!(
        superprefix > 20.0,
        "superprefix failover {superprefix}s should be withdrawal-convergence slow"
    );
}

#[test]
fn unicast_prefix_techniques_control_everything() {
    // §5.4.2: reactive-anycast and proactive-superprefix route all targets
    // to the specific site (the prefix is unicast in normal operation).
    let tb = testbed(12);
    for t in [
        Technique::ReactiveAnycast,
        Technique::ProactiveSuperprefix,
        Technique::Unicast,
    ] {
        let r = run_failover(&tb, &t, tb.site("bos"));
        assert!(r.num_selected > 0);
        assert!(
            r.control_fraction() > 0.99,
            "{} control {}",
            r.technique,
            r.control_fraction()
        );
    }
}

#[test]
fn prepending_controls_some_but_not_all() {
    // Table 1: prepending steers a strict subset of the not-anycast-routed
    // targets.
    let tb = testbed(13);
    let t = Technique::ProactivePrepending {
        prepends: 3,
        selective: false,
    };
    let mut controlled_everything = true;
    let mut controlled_nothing = true;
    for s in ["ams", "bos", "sea1", "sea2", "msn", "slc"] {
        let r = run_failover(&tb, &t, tb.site(s));
        if r.num_selected == 0 {
            continue;
        }
        let f = r.control_fraction();
        if f < 0.999 {
            controlled_everything = false;
        }
        if f > 0.001 {
            controlled_nothing = false;
        }
    }
    assert!(
        !controlled_everything,
        "prepending must lose control somewhere (it is 'medium' control)"
    );
    assert!(!controlled_nothing, "prepending must steer someone");
}

#[test]
fn all_clients_eventually_served_by_survivors() {
    // Availability invariant: after failover every target that stabilized
    // ends at a live (non-failed) site.
    let tb = testbed(14);
    for t in [
        Technique::Anycast,
        Technique::ReactiveAnycast,
        Technique::ProactiveSuperprefix,
        Technique::Combined,
    ] {
        let failed = tb.site("atl");
        let r = run_failover(&tb, &t, failed);
        for o in &r.outcomes {
            if let Some(site) = o.final_site {
                assert_ne!(
                    site, failed,
                    "{}: target ended at the failed site",
                    r.technique
                );
            }
        }
        // And the overwhelming majority do stabilize within the window.
        let stabilized = r.outcomes.iter().filter(|o| o.failover.is_some()).count();
        assert!(
            stabilized * 10 >= r.outcomes.len() * 9,
            "{}: only {}/{} stabilized",
            r.technique,
            stabilized,
            r.outcomes.len()
        );
    }
}

#[test]
fn reconnection_lower_bounds_failover() {
    // Metric sanity across the whole pipeline (§5.4.1 definitions).
    let tb = testbed(15);
    let r = run_failover(&tb, &Technique::ReactiveAnycast, tb.site("slc"));
    for o in &r.outcomes {
        if let (Some(rec), Some(f)) = (o.reconnection, o.failover) {
            assert!(rec <= f, "reconnection {rec} > failover {f}");
        }
        // A target with a failover time must have reconnected.
        if o.failover.is_some() {
            assert!(o.reconnection.is_some());
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    // Same seed, same everything: two independent testbeds and runs give
    // identical measurements.
    let ta = testbed(16);
    let tb = testbed(16);
    let ra = run_failover(&ta, &Technique::Combined, ta.site("msn"));
    let rb = run_failover(&tb, &Technique::Combined, tb.site("msn"));
    assert_eq!(ra.num_candidates, rb.num_candidates);
    assert_eq!(ra.num_controllable, rb.num_controllable);
    assert_eq!(ra.outcomes, rb.outcomes);
}

#[test]
fn different_seeds_change_the_internet_not_the_conclusions() {
    // Robustness: another seed still shows the superprefix-vs-reactive gap.
    let tb = testbed(99);
    let reactive = failover_median(&tb, &Technique::ReactiveAnycast, &["bos", "slc"]);
    let superprefix = failover_median(&tb, &Technique::ProactiveSuperprefix, &["bos", "slc"]);
    assert!(
        superprefix > 2.0 * reactive,
        "{superprefix} !> 2x {reactive}"
    );
}
