//! AS numbers and interned AS paths.
//!
//! The AS path is the BGP attribute everything in this paper turns on:
//! `proactive-prepending` trades control for availability by lengthening
//! backup paths, and the decision process compares path lengths right after
//! LOCAL_PREF. Paths here are simple sequences (no AS_SETs — route
//! aggregation is out of scope for the reproduction).
//!
//! # Interning
//!
//! The path universe is tiny relative to the route count: a route for one
//! prefix is copied into thousands of Adj-RIB-Ins, but the distinct hop
//! sequences number in the hundreds. [`AsPath`] is therefore a copyable
//! handle — a [`PathTable`] id plus the (hot) length — and propagation
//! composes ids instead of cloning `Vec<Asn>`: `prepended` is a memoized
//! `(base id, asn, count) → id` lookup, so the per-update hot path neither
//! allocates nor copies hops.
//!
//! The table is **thread-local**. Every simulation cell runs start-to-finish
//! on one thread and results serialize hops (never ids), so paths have no
//! reason to cross threads; `AsPath` is deliberately `!Send` so an
//! accidental cross-thread move is a compile error rather than silent id
//! confusion. Ids are not comparable across threads or runs — equality of
//! two `AsPath` values (same table) is exactly equality of their hop
//! sequences, and nothing observable depends on id *values*.

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::hash::FastHashMap;

/// An autonomous system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Handle to an interned hop sequence in the thread's [`PathTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PathId(u32);

/// The deduplicating path store: id ↔ hop-sequence, plus a composition memo
/// so repeated prepends of the same base resolve without touching hops.
///
/// One table exists per thread (see the module docs); all access goes
/// through [`PathTable::with`].
pub struct PathTable {
    /// id → hops. Entry 0 is always the empty path.
    paths: Vec<Rc<[Asn]>>,
    /// hops → id (shares the allocation with `paths`).
    index: FastHashMap<Rc<[Asn]>, u32>,
    /// `(base id, asn, count)` → id of `asn^count ++ base`.
    compose: FastHashMap<(u32, u32, u16), u32>,
}

thread_local! {
    static TABLE: RefCell<PathTable> = RefCell::new(PathTable::new());
}

impl PathTable {
    fn new() -> PathTable {
        let empty: Rc<[Asn]> = Rc::from(&[][..]);
        let mut index = FastHashMap::default();
        index.insert(Rc::clone(&empty), 0u32);
        PathTable {
            paths: vec![empty],
            index,
            compose: FastHashMap::default(),
        }
    }

    /// Runs `f` against this thread's table.
    pub fn with<R>(f: impl FnOnce(&mut PathTable) -> R) -> R {
        TABLE.with(|t| f(&mut t.borrow_mut()))
    }

    /// Number of distinct hop sequences interned on this thread so far.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// The table always holds at least the empty path.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Interns `hops`, returning the id of the canonical copy.
    pub fn intern(&mut self, hops: &[Asn]) -> PathId {
        if let Some(&id) = self.index.get(hops) {
            return PathId(id);
        }
        let id = self.paths.len() as u32;
        let rc: Rc<[Asn]> = Rc::from(hops);
        self.paths.push(Rc::clone(&rc));
        self.index.insert(rc, id);
        PathId(id)
    }

    /// The hops behind `id`, nearest first.
    pub fn hops(&self, id: PathId) -> &[Asn] {
        &self.paths[id.0 as usize]
    }

    /// Id of `asn` repeated `count` times, followed by the hops of `base`.
    /// Memoized: the steady-state cost is one map lookup, no hop copies.
    pub fn prepend(&mut self, base: PathId, asn: Asn, count: u16) -> PathId {
        if count == 0 {
            return base;
        }
        if let Some(&id) = self.compose.get(&(base.0, asn.0, count)) {
            return PathId(id);
        }
        let old = &self.paths[base.0 as usize];
        let mut hops = Vec::with_capacity(old.len() + count as usize);
        hops.extend(std::iter::repeat_n(asn, count as usize));
        hops.extend_from_slice(old);
        let id = self.intern(&hops);
        self.compose.insert((base.0, asn.0, count), id.0);
        id
    }
}

/// A BGP AS path: the sequence of ASes an announcement traversed, most
/// recent (nearest) first, origin last.
///
/// Prepending repeats the origin (or announcing) ASN to make the path less
/// preferred without changing reachability.
///
/// `AsPath` is a copyable interned handle (see the module docs): equality
/// and hashing are by id, the length rides inline so the decision process
/// never touches the table, and hop-reading accessors resolve through the
/// thread's [`PathTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsPath {
    id: PathId,
    len: u32,
    /// Pins the value to the thread whose table minted `id`.
    _single_thread: PhantomData<Rc<()>>,
}

impl Default for AsPath {
    fn default() -> AsPath {
        AsPath::empty()
    }
}

impl AsPath {
    fn from_id(id: PathId, len: usize) -> AsPath {
        AsPath {
            id,
            len: len as u32,
            _single_thread: PhantomData,
        }
    }

    /// The empty path (a route at its origin, before any export).
    pub fn empty() -> AsPath {
        // Slot 0 of every table is the empty path; no table access needed.
        AsPath::from_id(PathId(0), 0)
    }

    /// A path freshly originated by `origin`, optionally prepended
    /// `extra_prepends` additional times (so the origin appears
    /// `1 + extra_prepends` times).
    pub fn originate(origin: Asn, extra_prepends: u8) -> AsPath {
        let count = extra_prepends as u16 + 1;
        let id = PathTable::with(|t| t.prepend(PathId(0), origin, count));
        AsPath::from_id(id, count as usize)
    }

    /// Builds a path from explicit hops, nearest first.
    pub fn from_hops(hops: Vec<Asn>) -> AsPath {
        let id = PathTable::with(|t| t.intern(&hops));
        AsPath::from_id(id, hops.len())
    }

    /// The interning id (diagnostics only; not stable across threads/runs).
    pub fn id(&self) -> PathId {
        self.id
    }

    /// Path length as used by the decision process (prepends count).
    /// Stored inline: the hot comparison never touches the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for a freshly-originated, never-exported path of length zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The hops, nearest first, copied out of the table.
    pub fn hops(&self) -> Vec<Asn> {
        PathTable::with(|t| t.hops(self.id).to_vec())
    }

    /// Runs `f` over the hop slice without copying.
    pub fn with_hops<R>(&self, f: impl FnOnce(&[Asn]) -> R) -> R {
        PathTable::with(|t| f(t.hops(self.id)))
    }

    /// The origin AS (last hop), if any.
    pub fn origin(&self) -> Option<Asn> {
        self.with_hops(|h| h.last().copied())
    }

    /// The neighbor AS that sent us the route (first hop), if any.
    pub fn first(&self) -> Option<Asn> {
        self.with_hops(|h| h.first().copied())
    }

    /// Does the path contain `asn`? Used for loop detection on import:
    /// a router discards routes already carrying its own ASN.
    pub fn contains(&self, asn: Asn) -> bool {
        self.with_hops(|h| h.contains(&asn))
    }

    /// Returns a new path with `asn` prepended `count` times. `count == 0`
    /// returns the path unchanged — useful when policy decides per-neighbor.
    pub fn prepended(&self, asn: Asn, count: u8) -> AsPath {
        if count == 0 {
            return *self;
        }
        let id = PathTable::with(|t| t.prepend(self.id, asn, count as u16));
        AsPath::from_id(id, self.len as usize + count as usize)
    }

    /// The number of *distinct* ASes on the path (prepends collapse).
    ///
    /// Appendix C.1 compares unicast and anycast paths; distinct-hop length
    /// is the meaningful quantity when paths carry different prepend counts.
    pub fn distinct_len(&self) -> usize {
        self.with_hops(|hops| {
            let mut n = 0;
            let mut prev: Option<Asn> = None;
            for &h in hops {
                if prev != Some(h) {
                    n += 1;
                    prev = Some(h);
                }
            }
            n
        })
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_hops(|hops| {
            let mut first = true;
            for h in hops {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}", h.0)?;
                first = false;
            }
            Ok(())
        })
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self)
    }
}

// Hand-written so the wire shape stays exactly what the old
// `struct AsPath { hops: Vec<Asn> }` derive emitted: `{"hops": [u32...]}`.
// Ids never serialize; deserialization re-interns on the reading thread.
impl Serialize for AsPath {
    fn to_value(&self) -> Value {
        let hops = self.with_hops(|h| h.iter().map(|a| Value::UInt(a.0 as u64)).collect());
        Value::Object(vec![(String::from("hops"), Value::Array(hops))])
    }
}

impl Deserialize for AsPath {
    fn from_value(v: &Value) -> Result<AsPath, DeError> {
        let hops: Vec<Asn> = serde::de::field(v, "hops")?;
        Ok(AsPath::from_hops(hops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn originate_respects_prepend_count() {
        let p = AsPath::originate(Asn(47065), 0);
        assert_eq!(p.len(), 1);
        let p3 = AsPath::originate(Asn(47065), 3);
        assert_eq!(p3.len(), 4);
        assert_eq!(p3.origin(), Some(Asn(47065)));
        assert_eq!(p3.distinct_len(), 1);
    }

    #[test]
    fn prepended_puts_new_hops_first() {
        let p = AsPath::originate(Asn(1), 0)
            .prepended(Asn(2), 1)
            .prepended(Asn(3), 2);
        assert_eq!(p.hops(), &[Asn(3), Asn(3), Asn(2), Asn(1)]);
        assert_eq!(p.first(), Some(Asn(3)));
        assert_eq!(p.origin(), Some(Asn(1)));
        assert_eq!(p.distinct_len(), 3);
    }

    #[test]
    fn prepend_zero_is_identity() {
        let p = AsPath::originate(Asn(1), 2);
        assert_eq!(p.prepended(Asn(9), 0), p);
    }

    #[test]
    fn loop_detection_sees_every_hop() {
        let p = AsPath::from_hops(vec![Asn(3), Asn(2), Asn(1)]);
        assert!(p.contains(Asn(2)));
        assert!(!p.contains(Asn(4)));
    }

    #[test]
    fn empty_path_edge_cases() {
        let e = AsPath::empty();
        assert!(e.is_empty());
        assert_eq!(e.origin(), None);
        assert_eq!(e.first(), None);
        assert_eq!(e.distinct_len(), 0);
        assert_eq!(e.to_string(), "");
    }

    #[test]
    fn display_is_space_separated() {
        let p = AsPath::from_hops(vec![Asn(3), Asn(3), Asn(1)]);
        assert_eq!(p.to_string(), "3 3 1");
        assert_eq!(format!("{:?}", p), "[3 3 1]");
    }

    #[test]
    fn interning_dedups_equal_sequences() {
        let a = AsPath::from_hops(vec![Asn(7), Asn(8)]);
        let b = AsPath::originate(Asn(8), 0).prepended(Asn(7), 1);
        assert_eq!(a.id(), b.id(), "same hops must intern to the same id");
        assert_eq!(a, b);
        let c = AsPath::from_hops(vec![Asn(8), Asn(7)]);
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn serde_round_trip_is_hop_based() {
        let p = AsPath::from_hops(vec![Asn(3), Asn(3), Asn(1)]);
        let v = p.to_value();
        // Exactly the shape the old derived `{ hops: Vec<Asn> }` produced.
        assert_eq!(
            serde_json::to_string(&v).unwrap(),
            "{\"hops\":[3,3,1]}".to_string()
        );
        let back = AsPath::from_value(&v).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.hops(), p.hops());
    }
}
