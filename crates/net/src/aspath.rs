//! AS numbers and AS paths.
//!
//! The AS path is the BGP attribute everything in this paper turns on:
//! `proactive-prepending` trades control for availability by lengthening
//! backup paths, and the decision process compares path lengths right after
//! LOCAL_PREF. Paths here are simple sequences (no AS_SETs — route
//! aggregation is out of scope for the reproduction).

use std::fmt;

use serde::{Deserialize, Serialize};

/// An autonomous system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A BGP AS path: the sequence of ASes an announcement traversed, most
/// recent (nearest) first, origin last.
///
/// Prepending repeats the origin (or announcing) ASN to make the path less
/// preferred without changing reachability.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    hops: Vec<Asn>,
}

impl AsPath {
    /// The empty path (a route at its origin, before any export).
    pub fn empty() -> AsPath {
        AsPath { hops: Vec::new() }
    }

    /// A path freshly originated by `origin`, optionally prepended
    /// `extra_prepends` additional times (so the origin appears
    /// `1 + extra_prepends` times).
    pub fn originate(origin: Asn, extra_prepends: u8) -> AsPath {
        let mut hops = Vec::with_capacity(1 + extra_prepends as usize);
        for _ in 0..=extra_prepends {
            hops.push(origin);
        }
        AsPath { hops }
    }

    /// Builds a path from explicit hops, nearest first.
    pub fn from_hops(hops: Vec<Asn>) -> AsPath {
        AsPath { hops }
    }

    /// Path length as used by the decision process (prepends count).
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for a freshly-originated, never-exported path of length zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The hops, nearest first.
    #[inline]
    pub fn hops(&self) -> &[Asn] {
        &self.hops
    }

    /// The origin AS (last hop), if any.
    pub fn origin(&self) -> Option<Asn> {
        self.hops.last().copied()
    }

    /// The neighbor AS that sent us the route (first hop), if any.
    pub fn first(&self) -> Option<Asn> {
        self.hops.first().copied()
    }

    /// Does the path contain `asn`? Used for loop detection on import:
    /// a router discards routes already carrying its own ASN.
    pub fn contains(&self, asn: Asn) -> bool {
        self.hops.contains(&asn)
    }

    /// Returns a new path with `asn` prepended `count` times. `count == 0`
    /// returns the path unchanged — useful when policy decides per-neighbor.
    pub fn prepended(&self, asn: Asn, count: u8) -> AsPath {
        let mut hops = Vec::with_capacity(self.hops.len() + count as usize);
        for _ in 0..count {
            hops.push(asn);
        }
        hops.extend_from_slice(&self.hops);
        AsPath { hops }
    }

    /// The number of *distinct* ASes on the path (prepends collapse).
    ///
    /// Appendix C.1 compares unicast and anycast paths; distinct-hop length
    /// is the meaningful quantity when paths carry different prepend counts.
    pub fn distinct_len(&self) -> usize {
        let mut n = 0;
        let mut prev: Option<Asn> = None;
        for &h in &self.hops {
            if prev != Some(h) {
                n += 1;
                prev = Some(h);
            }
        }
        n
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for h in &self.hops {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", h.0)?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn originate_respects_prepend_count() {
        let p = AsPath::originate(Asn(47065), 0);
        assert_eq!(p.len(), 1);
        let p3 = AsPath::originate(Asn(47065), 3);
        assert_eq!(p3.len(), 4);
        assert_eq!(p3.origin(), Some(Asn(47065)));
        assert_eq!(p3.distinct_len(), 1);
    }

    #[test]
    fn prepended_puts_new_hops_first() {
        let p = AsPath::originate(Asn(1), 0)
            .prepended(Asn(2), 1)
            .prepended(Asn(3), 2);
        assert_eq!(p.hops(), &[Asn(3), Asn(3), Asn(2), Asn(1)]);
        assert_eq!(p.first(), Some(Asn(3)));
        assert_eq!(p.origin(), Some(Asn(1)));
        assert_eq!(p.distinct_len(), 3);
    }

    #[test]
    fn prepend_zero_is_identity() {
        let p = AsPath::originate(Asn(1), 2);
        assert_eq!(p.prepended(Asn(9), 0), p);
    }

    #[test]
    fn loop_detection_sees_every_hop() {
        let p = AsPath::from_hops(vec![Asn(3), Asn(2), Asn(1)]);
        assert!(p.contains(Asn(2)));
        assert!(!p.contains(Asn(4)));
    }

    #[test]
    fn empty_path_edge_cases() {
        let e = AsPath::empty();
        assert!(e.is_empty());
        assert_eq!(e.origin(), None);
        assert_eq!(e.first(), None);
        assert_eq!(e.distinct_len(), 0);
        assert_eq!(e.to_string(), "");
    }

    #[test]
    fn display_is_space_separated() {
        let p = AsPath::from_hops(vec![Asn(3), Asn(3), Asn(1)]);
        assert_eq!(p.to_string(), "3 3 1");
        assert_eq!(format!("{:?}", p), "[3 3 1]");
    }
}
