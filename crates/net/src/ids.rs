//! Dense node identifiers for topology entities.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a node in the simulated topology.
///
/// A node is an AS-level routing entity: one per autonomous system, plus one
/// per CDN *site* (sites share the CDN's ASN but are distinct announcement
/// origins — that is what makes anycast anycast), plus one per route
/// collector. `NodeId`s are dense, so per-node state lives in `Vec`s indexed
/// by `NodeId::index()` rather than hash maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense array index.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("topology larger than u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 42, 1_000_000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(NodeId(1) < NodeId(2));
    }
}
