//! IPv4 addresses and CIDR prefixes.
//!
//! The simulator works with 32-bit IPv4 addresses stored as plain `u32`s in
//! host byte order, matching how a router's forwarding engine treats them: a
//! destination is just a bit pattern matched against prefixes.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An IPv4 address as a 32-bit integer (`a.b.c.d` == `a<<24 | b<<16 | c<<8 | d`).
pub type Ipv4Net = u32;

/// Errors produced when parsing a [`Prefix`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The string did not have the `a.b.c.d/len` shape.
    Malformed,
    /// An octet was out of `0..=255`.
    BadOctet,
    /// The prefix length was greater than 32.
    BadLength,
    /// Host bits below the mask were set (e.g. `10.0.0.1/24`).
    HostBitsSet,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::Malformed => write!(f, "malformed prefix, expected a.b.c.d/len"),
            PrefixParseError::BadOctet => write!(f, "octet out of range 0..=255"),
            PrefixParseError::BadLength => write!(f, "prefix length out of range 0..=32"),
            PrefixParseError::HostBitsSet => write!(f, "host bits set below the prefix length"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

/// An IPv4 CIDR prefix: a network address plus a mask length.
///
/// ```
/// use bobw_net::Prefix;
///
/// let covering: Prefix = "184.164.244.0/23".parse().unwrap();
/// let specific: Prefix = "184.164.244.0/24".parse().unwrap();
/// assert!(covering.covers(&specific));
/// assert!(specific.contains(specific.addr_at(10))); // 184.164.244.10
/// ```
///
/// Invariant: all bits below the mask are zero (`bits & !mask == 0`).
/// [`Prefix::new`] enforces this by masking; [`Prefix::from_str`] rejects
/// violations so that typos in experiment configs surface loudly.
///
/// Ordering sorts by network address first and then by length, so more
/// specific prefixes of the same network sort *after* their covering
/// prefixes — convenient for stable output in reports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// Builds a prefix from a (possibly unmasked) address and length,
    /// zeroing any host bits. Panics if `len > 32`.
    pub fn new(addr: Ipv4Net, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            bits: addr & Self::mask(len),
            len,
        }
    }

    /// The network mask for a given length (`/24` -> `0xffff_ff00`).
    #[inline]
    pub fn mask(len: u8) -> u32 {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address bits (host bits are always zero).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The mask length. (Not a container length, so no `is_empty` pair.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default route.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain the given address?
    #[inline]
    pub fn contains(&self, addr: Ipv4Net) -> bool {
        addr & Self::mask(self.len) == self.bits
    }

    /// Is `other` a subnet of (or equal to) `self`?
    ///
    /// `10.0.0.0/23` covers `10.0.0.0/24` and `10.0.1.0/24` and itself.
    #[inline]
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && other.bits & Self::mask(self.len) == self.bits
    }

    /// The number of addresses in the prefix (`/24` -> 256). Saturates for `/0`.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// The first address of the prefix (the network address itself).
    #[inline]
    pub fn first_addr(&self) -> Ipv4Net {
        self.bits
    }

    /// The last address of the prefix (the broadcast address for subnets).
    #[inline]
    pub fn last_addr(&self) -> Ipv4Net {
        self.bits | !Self::mask(self.len)
    }

    /// The `n`-th host address inside the prefix, wrapping within the prefix.
    ///
    /// Used to hand out per-service addresses inside a site prefix (the paper
    /// sources its Verfploeter probes from `184.164.244.10`, i.e. offset 10).
    pub fn addr_at(&self, n: u32) -> Ipv4Net {
        let span = !Self::mask(self.len);
        self.bits | (n & span)
    }

    /// Splits the prefix into its two halves, one bit longer each.
    ///
    /// Returns `None` for `/32`s. `184.164.244.0/23` splits into
    /// `184.164.244.0/24` and `184.164.245.0/24` — exactly the paper's
    /// allocation from PEERING.
    pub fn halves(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix::new(self.bits, len);
        let hi = Prefix::new(self.bits | (1 << (32 - len)), len);
        Some((lo, hi))
    }

    /// The covering prefix one bit shorter, or `None` for the default route.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::new(self.bits, self.len - 1))
        }
    }

    /// The value of the `i`-th bit from the top (bit 0 is the most
    /// significant). Callers must keep `i < 32`.
    #[inline]
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        self.bits & (0x8000_0000u32 >> i) != 0
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bits;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (b >> 24) & 0xff,
            (b >> 16) & 0xff,
            (b >> 8) & 0xff,
            b & 0xff,
            self.len
        )
    }
}

impl fmt::Debug for Prefix {
    // Prefixes read better as `184.164.244.0/24` than as struct syntax in
    // assertion failures, so Debug delegates to Display.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Formats an address in dotted-quad form.
pub fn fmt_addr(addr: Ipv4Net) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xff,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// Parses `a.b.c.d` into an [`Ipv4Net`].
pub fn parse_addr(s: &str) -> Result<Ipv4Net, PrefixParseError> {
    let mut octets = [0u32; 4];
    let mut parts = s.split('.');
    for slot in octets.iter_mut() {
        let part = parts.next().ok_or(PrefixParseError::Malformed)?;
        let v: u32 = part.parse().map_err(|_| PrefixParseError::Malformed)?;
        if v > 255 {
            return Err(PrefixParseError::BadOctet);
        }
        *slot = v;
    }
    if parts.next().is_some() {
        return Err(PrefixParseError::Malformed);
    }
    Ok((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3])
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(PrefixParseError::Malformed)?;
        let addr = parse_addr(addr)?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError::Malformed)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        if addr & !Prefix::mask(len) != 0 {
            return Err(PrefixParseError::HostBitsSet);
        }
        Ok(Prefix { bits: addr, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["184.164.244.0/24", "0.0.0.0/0", "10.0.0.0/8", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            "1.2.3/24".parse::<Prefix>(),
            Err(PrefixParseError::Malformed)
        );
        assert_eq!(
            "1.2.3.4.5/24".parse::<Prefix>(),
            Err(PrefixParseError::Malformed)
        );
        assert_eq!(
            "1.2.3.400/24".parse::<Prefix>(),
            Err(PrefixParseError::BadOctet)
        );
        assert_eq!(
            "1.2.3.0/33".parse::<Prefix>(),
            Err(PrefixParseError::BadLength)
        );
        assert_eq!(
            "1.2.3.1/24".parse::<Prefix>(),
            Err(PrefixParseError::HostBitsSet)
        );
        assert_eq!("".parse::<Prefix>(), Err(PrefixParseError::Malformed));
    }

    #[test]
    fn new_masks_host_bits() {
        let q = Prefix::new(parse_addr("10.1.2.3").unwrap(), 16);
        assert_eq!(q, p("10.1.0.0/16"));
    }

    #[test]
    fn contains_edges() {
        let q = p("184.164.244.0/24");
        assert!(q.contains(parse_addr("184.164.244.0").unwrap()));
        assert!(q.contains(parse_addr("184.164.244.255").unwrap()));
        assert!(!q.contains(parse_addr("184.164.245.0").unwrap()));
        assert!(!q.contains(parse_addr("184.164.243.255").unwrap()));
        assert!(Prefix::DEFAULT.contains(0));
        assert!(Prefix::DEFAULT.contains(u32::MAX));
    }

    #[test]
    fn covers_is_reflexive_and_respects_length() {
        let sup = p("184.164.244.0/23");
        let (lo, hi) = sup.halves().unwrap();
        assert_eq!(lo, p("184.164.244.0/24"));
        assert_eq!(hi, p("184.164.245.0/24"));
        assert!(sup.covers(&sup));
        assert!(sup.covers(&lo));
        assert!(sup.covers(&hi));
        assert!(!lo.covers(&sup));
        assert!(!lo.covers(&hi));
        assert!(Prefix::DEFAULT.covers(&sup));
    }

    #[test]
    fn parent_inverts_halves() {
        let q = p("184.164.244.0/24");
        assert_eq!(q.parent(), Some(p("184.164.244.0/23")));
        assert_eq!(Prefix::DEFAULT.parent(), None);
    }

    #[test]
    fn addr_at_stays_inside() {
        let q = p("184.164.244.0/24");
        assert_eq!(q.addr_at(10), parse_addr("184.164.244.10").unwrap());
        // Wraps instead of escaping the prefix.
        assert_eq!(q.addr_at(256 + 7), q.addr_at(7));
        assert!(q.contains(q.addr_at(u32::MAX)));
    }

    #[test]
    fn size_and_bounds() {
        let q = p("184.164.244.0/24");
        assert_eq!(q.size(), 256);
        assert_eq!(q.first_addr(), parse_addr("184.164.244.0").unwrap());
        assert_eq!(q.last_addr(), parse_addr("184.164.244.255").unwrap());
        assert_eq!(p("1.2.3.4/32").size(), 1);
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let q = p("128.0.0.0/1");
        assert!(q.bit(0));
        let r = p("64.0.0.0/2");
        assert!(!r.bit(0));
        assert!(r.bit(1));
    }

    #[test]
    fn ordering_places_specifics_after_covering() {
        let sup = p("184.164.244.0/23");
        let spec = p("184.164.244.0/24");
        assert!(sup < spec);
    }
}
