//! # bobw-net
//!
//! Address-family primitives shared by every layer of the *Best of Both
//! Worlds* CDN routing simulator:
//!
//! * [`Prefix`] — an IPv4 CIDR prefix with containment / covering math,
//!   used both as the routing key in BGP RIBs and as the destination key in
//!   the data-plane longest-prefix-match.
//! * [`PrefixTrie`] — a binary (uncompressed) prefix trie providing exact
//!   longest-prefix-match semantics. FIBs are built on this, which is what
//!   makes the `proactive-superprefix` failure mode (stale more-specific
//!   routes shadowing a valid covering route) fall out of the data structure
//!   rather than being hand-coded.
//! * [`Asn`], [`AsPath`] — AS numbers and AS paths with prepending and
//!   loop detection, the currency of the BGP decision process. Paths are
//!   interned in a thread-local [`PathTable`] so they copy as a handle.
//! * [`NodeId`] — a dense index for topology nodes (one per AS, plus one per
//!   CDN site, plus one per route collector).
//!
//! Everything here is deterministic plain data: no clocks, no randomness.
//! The only interior mutability is the per-thread path interner, whose id
//! assignment is invisible to results (ids never serialize and never order).

pub mod addr;
pub mod aspath;
pub mod flatmap;
pub mod hash;
pub mod ids;
pub mod trie;

pub use addr::{fmt_addr, parse_addr, Ipv4Net, Prefix, PrefixParseError};
pub use aspath::{AsPath, Asn, PathId, PathTable};
pub use flatmap::FlatPrefixMap;
pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use ids::NodeId;
pub use trie::PrefixTrie;
