//! A flat, sorted prefix map with longest-prefix-match lookup.
//!
//! Same LPM semantics as [`PrefixTrie`](crate::PrefixTrie), different
//! memory layout: one contiguous `Vec<(Prefix, V)>` kept sorted by
//! `(address, length)` instead of one heap node per prefix bit. Simulator
//! FIBs hold a handful of experiment prefixes (a covering /23, its /24
//! halves, per-target /24s), so a linear scan over a cache-resident vector
//! beats chasing up to 24 `Box` pointers per lookup — and insert/remove
//! stop allocating entirely once the vector has warmed up. The trie remains
//! the right structure for large tables; this is the right one for FIBs on
//! the simulator's hot path.

use crate::addr::{Ipv4Net, Prefix};

/// A map from [`Prefix`] to `V` supporting exact and longest-prefix-match
/// lookups, backed by a single sorted vector.
///
/// ```
/// use bobw_net::{FlatPrefixMap, Prefix};
///
/// let mut fib = FlatPrefixMap::new();
/// fib.insert("184.164.244.0/23".parse().unwrap(), "backup");
/// fib.insert("184.164.244.0/24".parse().unwrap(), "primary");
/// let addr = "184.164.244.0/24".parse::<Prefix>().unwrap().addr_at(10);
/// // Longest-prefix match: the /24 shadows the /23 …
/// assert_eq!(*fib.lookup(addr).unwrap().1, "primary");
/// fib.remove(&"184.164.244.0/24".parse().unwrap());
/// // … until it is withdrawn and traffic falls through to the cover.
/// assert_eq!(*fib.lookup(addr).unwrap().1, "backup");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatPrefixMap<V> {
    /// Sorted by `Prefix` order (address, then length). Kept deduplicated:
    /// at most one entry per exact prefix.
    entries: Vec<(Prefix, V)>,
}

impl<V> FlatPrefixMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        FlatPrefixMap {
            entries: Vec::new(),
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces the value at `prefix`, returning the previous
    /// value if one existed.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        match self.entries.binary_search_by_key(&prefix, |(p, _)| *p) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (prefix, value));
                None
            }
        }
    }

    /// Removes and returns the value at exactly `prefix`.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        match self.entries.binary_search_by_key(prefix, |(p, _)| *p) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value stored at exactly `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        match self.entries.binary_search_by_key(prefix, |(p, _)| *p) {
            Ok(i) => Some(&self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Mutable access to the value stored at exactly `prefix`.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        match self.entries.binary_search_by_key(prefix, |(p, _)| *p) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Longest-prefix-match: the deepest stored prefix containing `addr`,
    /// with its value. This is the forwarding lookup.
    pub fn lookup(&self, addr: Ipv4Net) -> Option<(Prefix, &V)> {
        let mut best: Option<(Prefix, &V)> = None;
        for (p, v) in &self.entries {
            if p.contains(addr) && best.is_none_or(|(b, _)| p.len() > b.len()) {
                best = Some((*p, v));
            }
        }
        best
    }

    /// All stored prefixes that cover `addr`, shallowest first.
    pub fn matches(&self, addr: Ipv4Net) -> Vec<(Prefix, &V)> {
        let mut out: Vec<(Prefix, &V)> = self
            .entries
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .map(|(p, v)| (*p, v))
            .collect();
        out.sort_by_key(|(p, _)| p.len());
        out
    }

    /// Iterates over all `(prefix, value)` pairs in lexicographic
    /// (address, length) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        self.entries.iter().map(|(p, v)| (*p, v))
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::parse_addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Net {
        parse_addr(s).unwrap()
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = FlatPrefixMap::new();
        t.insert(p("184.164.244.0/23"), "super");
        t.insert(p("184.164.244.0/24"), "specific");
        let (q, v) = t.lookup(a("184.164.244.7")).unwrap();
        assert_eq!((q, *v), (p("184.164.244.0/24"), "specific"));
        let (q, v) = t.lookup(a("184.164.245.7")).unwrap();
        assert_eq!((q, *v), (p("184.164.244.0/23"), "super"));
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = FlatPrefixMap::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(*t.get(&p("10.0.0.0/8")).unwrap(), 2);
    }

    #[test]
    fn remove_and_exact_get() {
        let mut t = FlatPrefixMap::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.remove(&p("10.1.0.0/16")), Some(2));
        assert_eq!(t.remove(&p("10.1.0.0/16")), None);
        assert!(t.get(&p("10.0.0.0/16")).is_none());
        assert_eq!(*t.get(&p("10.0.0.0/8")).unwrap(), 1);
        *t.get_mut(&p("10.0.0.0/8")).unwrap() += 10;
        assert_eq!(*t.get(&p("10.0.0.0/8")).unwrap(), 11);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = FlatPrefixMap::new();
        t.insert(Prefix::DEFAULT, 0u8);
        assert!(t.lookup(0).is_some());
        assert!(t.lookup(u32::MAX).is_some());
        t.insert(p("10.0.0.0/8"), 1u8);
        assert_eq!(*t.lookup(a("10.1.1.1")).unwrap().1, 1);
        assert_eq!(*t.lookup(a("11.1.1.1")).unwrap().1, 0);
    }

    #[test]
    fn lookup_misses_when_nothing_covers() {
        let mut t = FlatPrefixMap::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.lookup(a("11.0.0.1")).is_none());
        assert!(FlatPrefixMap::<()>::new().lookup(0).is_none());
    }

    #[test]
    fn matches_returns_chain_shallowest_first() {
        let mut t = FlatPrefixMap::new();
        t.insert(Prefix::DEFAULT, 0);
        t.insert(p("184.164.244.0/23"), 23);
        t.insert(p("184.164.244.0/24"), 24);
        let m: Vec<u8> = t
            .matches(a("184.164.244.1"))
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(m, vec![0, 23, 24]);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = FlatPrefixMap::new();
        let prefixes = [
            "10.0.0.0/8",
            "184.164.244.0/24",
            "184.164.244.0/23",
            "0.0.0.0/0",
        ];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(q, _)| q).collect();
        let mut want: Vec<Prefix> = prefixes.iter().map(|s| p(s)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn slash32_round_trip() {
        let mut t = FlatPrefixMap::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(*t.lookup(a("1.2.3.4")).unwrap().1, "host");
        assert!(t.lookup(a("1.2.3.5")).is_none());
        t.clear();
        assert!(t.is_empty());
    }
}
