//! A binary prefix trie with longest-prefix-match lookup.
//!
//! This is the data structure behind every FIB in the simulator. Its LPM
//! semantics are load-bearing for the paper: under `proactive-superprefix`,
//! a router that still holds a stale `/24` route forwards along it even when
//! a perfectly valid `/23` covering route is present — `lookup` returns the
//! deepest match, exactly like a real forwarding engine, so the §3 failure
//! mode needs no special-casing.
//!
//! The trie is uncompressed (one node per bit). The simulator's routing
//! tables hold a handful of experiment prefixes plus per-target /24s, so
//! simplicity and obvious correctness win over path compression.

use crate::addr::{Ipv4Net, Prefix};

#[derive(Debug, Clone)]
struct TrieNode<V> {
    value: Option<V>,
    children: [Option<Box<TrieNode<V>>>; 2],
}

impl<V> TrieNode<V> {
    fn new() -> Self {
        TrieNode {
            value: None,
            children: [None, None],
        }
    }

    fn is_leafless(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A map from [`Prefix`] to `V` supporting exact and longest-prefix-match
/// lookups.
///
/// ```
/// use bobw_net::{Prefix, PrefixTrie};
///
/// let mut fib = PrefixTrie::new();
/// fib.insert("184.164.244.0/23".parse().unwrap(), "backup");
/// fib.insert("184.164.244.0/24".parse().unwrap(), "primary");
/// let addr = "184.164.244.0/24".parse::<Prefix>().unwrap().addr_at(10);
/// // Longest-prefix match: the /24 shadows the /23 …
/// assert_eq!(*fib.lookup(addr).unwrap().1, "primary");
/// fib.remove(&"184.164.244.0/24".parse().unwrap());
/// // … until it is withdrawn, and traffic falls through to the covering
/// // prefix — §3's proactive-superprefix mechanism in four lines.
/// assert_eq!(*fib.lookup(addr).unwrap().1, "backup");
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: TrieNode<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: TrieNode::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces the value at `prefix`, returning the previous
    /// value if one existed.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(TrieNode::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at exactly `prefix`, pruning now-empty
    /// interior nodes so memory does not grow across repeated
    /// announce/withdraw cycles.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        fn rec<V>(node: &mut TrieNode<V>, prefix: &Prefix, depth: u8) -> Option<V> {
            if depth == prefix.len() {
                return node.value.take();
            }
            let b = prefix.bit(depth) as usize;
            let child = node.children[b].as_mut()?;
            let out = rec(child, prefix, depth + 1);
            if out.is_some() && child.is_leafless() {
                node.children[b] = None;
            }
            out
        }
        let out = rec(&mut self.root, prefix, 0);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// The value stored at exactly `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Mutable access to the value stored at exactly `prefix`.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Longest-prefix-match: the deepest stored prefix containing `addr`,
    /// with its value. This is the forwarding lookup.
    pub fn lookup(&self, addr: Ipv4Net) -> Option<(Prefix, &V)> {
        let mut node = &self.root;
        let mut best: Option<(Prefix, &V)> = None;
        let mut depth: u8 = 0;
        loop {
            if let Some(v) = node.value.as_ref() {
                best = Some((Prefix::new(addr, depth), v));
            }
            if depth == 32 {
                break;
            }
            let b = ((addr >> (31 - depth)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    depth += 1;
                }
                None => break,
            }
        }
        best
    }

    /// All stored prefixes that cover `addr`, shallowest first. Useful for
    /// diagnosing which routes *could* have matched.
    pub fn matches(&self, addr: Ipv4Net) -> Vec<(Prefix, &V)> {
        let mut node = &self.root;
        let mut out = Vec::new();
        let mut depth: u8 = 0;
        loop {
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::new(addr, depth), v));
            }
            if depth == 32 {
                break;
            }
            let b = ((addr >> (31 - depth)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    depth += 1;
                }
                None => break,
            }
        }
        out
    }

    /// Iterates over all `(prefix, value)` pairs in lexicographic
    /// (address, length) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut out = Vec::new();
        fn walk<'a, V>(
            node: &'a TrieNode<V>,
            bits: u32,
            depth: u8,
            out: &mut Vec<(Prefix, &'a V)>,
        ) {
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::new(bits, depth), v));
            }
            if depth == 32 {
                return;
            }
            if let Some(c) = node.children[0].as_deref() {
                walk(c, bits, depth + 1, out);
            }
            if let Some(c) = node.children[1].as_deref() {
                walk(c, bits | (0x8000_0000u32 >> depth), depth + 1, out);
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out.sort_by_key(|(p, _)| *p);
        out.into_iter()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.root = TrieNode::new();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::parse_addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Net {
        parse_addr(s).unwrap()
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("184.164.244.0/23"), "super");
        t.insert(p("184.164.244.0/24"), "specific");
        let (q, v) = t.lookup(a("184.164.244.7")).unwrap();
        assert_eq!((q, *v), (p("184.164.244.0/24"), "specific"));
        // Addresses in the other half match only the covering prefix.
        let (q, v) = t.lookup(a("184.164.245.7")).unwrap();
        assert_eq!((q, *v), (p("184.164.244.0/23"), "super"));
    }

    #[test]
    fn superprefix_failover_emerges_from_lpm() {
        // The §3 scenario: while the stale /24 is present it shadows the /23;
        // once removed, the same lookup falls through to the covering route.
        let mut t = PrefixTrie::new();
        t.insert(p("184.164.244.0/23"), "backup-site");
        t.insert(p("184.164.244.0/24"), "failed-site");
        assert_eq!(*t.lookup(a("184.164.244.10")).unwrap().1, "failed-site");
        t.remove(&p("184.164.244.0/24"));
        assert_eq!(*t.lookup(a("184.164.244.10")).unwrap().1, "backup-site");
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, 0u8);
        assert!(t.lookup(0).is_some());
        assert!(t.lookup(u32::MAX).is_some());
        t.insert(p("10.0.0.0/8"), 1u8);
        assert_eq!(*t.lookup(a("10.1.1.1")).unwrap().1, 1);
        assert_eq!(*t.lookup(a("11.1.1.1")).unwrap().1, 0);
    }

    #[test]
    fn lookup_misses_when_nothing_covers() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.lookup(a("11.0.0.1")).is_none());
        assert!(PrefixTrie::<()>::new().lookup(0).is_none());
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(*t.get(&p("10.0.0.0/8")).unwrap(), 2);
    }

    #[test]
    fn remove_prunes_and_updates_len() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(&p("10.1.0.0/16")), Some(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&p("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
        assert!(t.get(&p("10.0.0.0/8")).is_some());
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(1));
        assert!(t.is_empty());
    }

    #[test]
    fn exact_get_distinguishes_lengths() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        assert!(t.get(&p("10.0.0.0/16")).is_none());
        assert_eq!(*t.get(&p("10.0.0.0/8")).unwrap(), "eight");
    }

    #[test]
    fn matches_returns_chain_shallowest_first() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, 0);
        t.insert(p("184.164.244.0/23"), 23);
        t.insert(p("184.164.244.0/24"), 24);
        let m: Vec<u8> = t
            .matches(a("184.164.244.1"))
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(m, vec![0, 23, 24]);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = PrefixTrie::new();
        let prefixes = [
            "10.0.0.0/8",
            "184.164.244.0/24",
            "184.164.244.0/23",
            "0.0.0.0/0",
        ];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(q, _)| q).collect();
        let mut want: Vec<Prefix> = prefixes.iter().map(|s| p(s)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        *t.get_mut(&p("10.0.0.0/8")).unwrap() += 10;
        assert_eq!(*t.get(&p("10.0.0.0/8")).unwrap(), 11);
    }

    #[test]
    fn clear_empties() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.clear();
        assert!(t.is_empty());
        assert!(t.lookup(a("10.0.0.1")).is_none());
    }

    #[test]
    fn slash32_round_trip() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(*t.lookup(a("1.2.3.4")).unwrap().1, "host");
        assert!(t.lookup(a("1.2.3.5")).is_none());
    }
}
