//! A fast, non-cryptographic hasher for interner-style tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per lookup — noticeable when a map sits on the per-update hot path (the
//! AS-path composition memo is hit once per export decision). Simulator
//! tables are keyed by internal ids and fixed-size tuples, never by
//! attacker-controlled input, so a multiply-xor hash in the FxHash family
//! is safe and several times faster.
//!
//! Only use these maps for point lookups. Iteration order is unspecified
//! (as with any `HashMap`) and must never influence simulation results.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (Firefox / rustc-hash): a single
/// odd constant with good bit dispersion under wrapping multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A word-at-a-time multiply-xor hasher.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with [`FastHasher`]: for id/tuple-keyed point-lookup tables.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn h(f: impl FnOnce(&mut FastHasher)) -> u64 {
        let mut hasher = FastHasher::default();
        f(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(h(|x| x.write_u64(7)), h(|x| x.write_u64(7)));
        assert_ne!(h(|x| x.write_u64(7)), h(|x| x.write_u64(8)));
        assert_ne!(h(|x| x.write(b"ab")), h(|x| x.write(b"ba")));
        // Order within a compound key matters.
        assert_ne!(
            h(|x| {
                x.write_u32(1);
                x.write_u32(2);
            }),
            h(|x| {
                x.write_u32(2);
                x.write_u32(1);
            })
        );
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastHashMap<(u32, u32, u16), u32> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7, (i % 9) as u16), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 7, (i % 9) as u16)), Some(&i));
        }
        assert_eq!(m.get(&(1, 1, 1)), None);
    }
}
