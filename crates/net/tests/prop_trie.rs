//! Property-based tests checking the prefix trie against a naive
//! linear-scan reference model, and structural prefix invariants.

use std::collections::HashMap;

use bobw_net::{Prefix, PrefixTrie};
use proptest::prelude::*;

/// A reference LPM: scan all prefixes, keep the longest that contains `addr`.
fn naive_lpm(entries: &HashMap<Prefix, u32>, addr: u32) -> Option<(Prefix, u32)> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, *v))
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(bits, len))
}

proptest! {
    #[test]
    fn trie_lpm_matches_naive(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 0..64),
        addrs in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        let mut trie = PrefixTrie::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
        }
        prop_assert_eq!(trie.len(), entries.len());
        for addr in addrs {
            let got = trie.lookup(addr).map(|(p, v)| (p, *v));
            let want = naive_lpm(&entries, addr);
            // Value must match exactly; prefix must match in length (two
            // distinct prefixes of the same length cannot both contain addr).
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn insert_remove_round_trip(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 1..64),
    ) {
        let mut trie = PrefixTrie::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
        }
        // Remove in sorted order; after each removal the entry is gone and
        // the others still resolve exactly.
        let mut keys: Vec<Prefix> = entries.keys().copied().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(trie.remove(k), Some(entries[k]));
            prop_assert!(trie.get(k).is_none());
            for later in &keys[i + 1..] {
                prop_assert_eq!(trie.get(later), Some(&entries[later]));
            }
        }
        prop_assert!(trie.is_empty());
    }

    #[test]
    fn matches_is_ordered_cover_chain(
        entries in proptest::collection::hash_map(arb_prefix(), any::<u32>(), 0..64),
        addr in any::<u32>(),
    ) {
        let mut trie = PrefixTrie::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
        }
        let chain = trie.matches(addr);
        // Every returned prefix contains the address, lengths strictly
        // increase, and each covers the next.
        for w in chain.windows(2) {
            prop_assert!(w[0].0.len() < w[1].0.len());
            prop_assert!(w[0].0.covers(&w[1].0));
        }
        for (p, _) in &chain {
            prop_assert!(p.contains(addr));
        }
        // The chain length equals the naive count of covering prefixes.
        let want = entries.keys().filter(|p| p.contains(addr)).count();
        prop_assert_eq!(chain.len(), want);
    }

    #[test]
    fn prefix_halves_partition_parent(prefix in (any::<u32>(), 0u8..=31).prop_map(|(b, l)| Prefix::new(b, l)), addr in any::<u32>()) {
        let (lo, hi) = prefix.halves().unwrap();
        prop_assert!(prefix.covers(&lo) && prefix.covers(&hi));
        prop_assert_eq!(lo.parent(), Some(prefix));
        prop_assert_eq!(hi.parent(), Some(prefix));
        // Each address in the parent is in exactly one half.
        if prefix.contains(addr) {
            prop_assert!(lo.contains(addr) ^ hi.contains(addr));
        } else {
            prop_assert!(!lo.contains(addr) && !hi.contains(addr));
        }
    }

    #[test]
    fn prefix_display_parse_round_trip(prefix in arb_prefix()) {
        let s = prefix.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(prefix, back);
    }

    #[test]
    fn covers_agrees_with_contains(a in arb_prefix(), b in arb_prefix()) {
        if a.covers(&b) {
            prop_assert!(a.contains(b.first_addr()));
            prop_assert!(a.contains(b.last_addr()));
            prop_assert!(a.len() <= b.len());
        }
        // Reflexivity.
        prop_assert!(a.covers(&a));
    }
}
