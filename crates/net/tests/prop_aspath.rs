//! Property tests of AS-path interning: every [`AsPath`] operation must
//! agree with a plain `Vec<Asn>` reference model, so the interned handles
//! are observationally identical to the historic owned-hops representation.

use bobw_net::{AsPath, Asn};
use proptest::prelude::*;

/// The reference model: owned hops, nearest first.
fn display_of(hops: &[Asn]) -> String {
    hops.iter()
        .map(|a| a.0.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn distinct_len_of(hops: &[Asn]) -> usize {
    let mut n = 0;
    let mut prev = None;
    for &h in hops {
        if prev != Some(h) {
            n += 1;
            prev = Some(h);
        }
    }
    n
}

fn arb_hops() -> impl Strategy<Value = Vec<Asn>> {
    // Small ASN universe so duplicate hops (prepend runs) are common.
    proptest::collection::vec((1u32..32).prop_map(Asn), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interning round-trips: the handle reads back exactly the hops it
    /// was built from, and every accessor matches the reference model.
    #[test]
    fn intern_round_trips_against_reference(hops in arb_hops()) {
        let path = AsPath::from_hops(hops.clone());
        prop_assert_eq!(path.hops(), hops.clone());
        prop_assert_eq!(path.len(), hops.len());
        prop_assert_eq!(path.is_empty(), hops.is_empty());
        prop_assert_eq!(path.origin(), hops.last().copied());
        prop_assert_eq!(path.first(), hops.first().copied());
        prop_assert_eq!(path.distinct_len(), distinct_len_of(&hops));
        prop_assert_eq!(path.to_string(), display_of(&hops));
        for asn in 0u32..40 {
            prop_assert_eq!(path.contains(Asn(asn)), hops.contains(&Asn(asn)));
        }
    }

    /// Equality of handles is exactly equality of hop sequences — two
    /// paths interned independently compare equal iff their hops do.
    #[test]
    fn equality_is_hop_equality(a in arb_hops(), b in arb_hops()) {
        let pa = AsPath::from_hops(a.clone());
        let pb = AsPath::from_hops(b.clone());
        prop_assert_eq!(pa == pb, a == b);
    }

    /// Prepend chains compose like the reference model: repeated
    /// `prepended` calls produce the same hops as building the final
    /// sequence directly, and memoized re-composition returns the same id.
    #[test]
    fn prepend_matches_reference(
        base in arb_hops(),
        steps in proptest::collection::vec(
            (1u32..32, 0u8..4).prop_map(|(asn, count)| (Asn(asn), count)), 0..5),
    ) {
        let mut expect = base.clone();
        let mut path = AsPath::from_hops(base);
        for &(asn, count) in &steps {
            path = path.prepended(asn, count);
            for _ in 0..count {
                expect.insert(0, asn);
            }
            prop_assert_eq!(path.hops(), expect.clone());
            prop_assert_eq!(path.len(), expect.len());
        }
        // Replaying the same composition must intern to the same handle.
        prop_assert_eq!(path, AsPath::from_hops(expect));
    }
}

/// The duplicate-hop regression from the interning change: `[3, 3, 1]`
/// (a prepend run) must display each hop, not collapse the run.
#[test]
fn duplicate_hops_display_individually() {
    let path = AsPath::from_hops(vec![Asn(3), Asn(3), Asn(1)]);
    assert_eq!(path.to_string(), "3 3 1");
    assert_eq!(path.len(), 3);
    assert_eq!(path.distinct_len(), 2);
    assert_eq!(format!("{path:?}"), "[3 3 1]");
}

/// Origination is `asn` repeated `1 + extra` times.
#[test]
fn originate_repeats_origin() {
    let p = AsPath::originate(Asn(7), 2);
    assert_eq!(p.hops(), vec![Asn(7), Asn(7), Asn(7)]);
    assert_eq!(p.origin(), Some(Asn(7)));
    assert_eq!(p.distinct_len(), 1);
}
