//! Internet-like topology generation.
//!
//! The generator builds a four-layer hierarchy: a tier-1 clique, regional
//! commercial transit, R&E backbones, and an eyeball/stub edge, then
//! realizes the CDN deployment's sites against it. All wiring decisions are
//! drawn from named [`RngFactory`] streams, so the same `(config, seed)`
//! always produces the same graph.

use bobw_event::RngFactory;
use bobw_net::{Asn, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cdn::{CdnDeployment, SiteAttachment, SiteSpec, CDN_ASN};
use crate::geo::{Coords, REGIONS};
use crate::graph::{NodeKind, Topology};

/// Generator parameters. Start from a preset ([`GenConfig::eval`] is the
/// scale used for the paper reproduction) and tweak fields as needed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenConfig {
    /// Number of tier-1 (default-free) ASes, fully meshed as peers.
    pub tier1: usize,
    /// Number of regional commercial transit ASes.
    pub transit: usize,
    /// Number of R&E backbone/gigapop ASes.
    pub rne: usize,
    /// Number of eyeball (access) ASes.
    pub eyeballs: usize,
    /// Number of small stub ASes.
    pub stubs: usize,
    /// Probability that two transits in the same region peer.
    pub transit_peer_prob: f64,
    /// Number of random cross-region transit peerings (IXP long lines).
    pub transit_cross_peers: usize,
    /// Fraction of stubs that are R&E customers (universities) rather than
    /// commercial customers.
    pub stub_rne_fraction: f64,
    /// Extra random tier-1 providers per transit (beyond the nearest one).
    /// Higher values add path diversity, deepening BGP path exploration.
    pub transit_extra_tier1: usize,
    /// Provider count band for eyeball ASes (multihoming degree).
    pub eyeball_providers: (usize, usize),
    /// Provider count band for commercial stub ASes.
    pub stub_providers: (usize, usize),
    /// Number of nearest R&E networks each R&E peers with.
    pub rne_peers: usize,
    /// Number of Internet exchange points. Each IXP sits in one region and
    /// full-meshes (settlement-free) the regional transits and eyeballs
    /// that join. Default 0 in every preset so the calibrated dynamics are
    /// unchanged; turn it up to study denser lateral peering.
    pub ixps: usize,
    /// Probability that an eligible regional AS joins its region's IXP.
    pub ixp_member_prob: f64,
    /// The CDN deployment to realize.
    pub sites: Vec<SiteSpec>,
}

impl GenConfig {
    /// Minimal topology for unit tests (runs in microseconds).
    pub fn tiny() -> GenConfig {
        GenConfig {
            tier1: 4,
            transit: 12,
            rne: 6,
            eyeballs: 24,
            stubs: 30,
            transit_peer_prob: 0.4,
            transit_cross_peers: 4,
            stub_rne_fraction: 0.15,
            transit_extra_tier1: 1,
            eyeball_providers: (2, 3),
            stub_providers: (1, 2),
            rne_peers: 2,
            ixps: 0,
            ixp_member_prob: 0.5,
            sites: crate::cdn::paper_sites(),
        }
    }

    /// Small topology for integration tests and quick benches.
    pub fn small() -> GenConfig {
        GenConfig {
            tier1: 6,
            transit: 30,
            rne: 12,
            eyeballs: 80,
            stubs: 120,
            transit_peer_prob: 0.5,
            transit_cross_peers: 25,
            stub_rne_fraction: 0.15,
            transit_extra_tier1: 2,
            eyeball_providers: (3, 4),
            stub_providers: (2, 3),
            rne_peers: 3,
            ixps: 0,
            ixp_member_prob: 0.5,
            sites: crate::cdn::paper_sites(),
        }
    }

    /// Evaluation-scale topology used for the full paper reproduction.
    pub fn eval() -> GenConfig {
        GenConfig {
            tier1: 8,
            transit: 70,
            rne: 24,
            eyeballs: 250,
            stubs: 400,
            transit_peer_prob: 0.4,
            transit_cross_peers: 80,
            stub_rne_fraction: 0.15,
            transit_extra_tier1: 2,
            eyeball_providers: (3, 4),
            stub_providers: (2, 3),
            rne_peers: 3,
            ixps: 0,
            ixp_member_prob: 0.5,
            sites: crate::cdn::paper_sites(),
        }
    }

    /// Double-scale topology for robustness checks.
    pub fn large() -> GenConfig {
        GenConfig {
            tier1: 10,
            transit: 140,
            rne: 40,
            eyeballs: 500,
            stubs: 800,
            transit_peer_prob: 0.35,
            transit_cross_peers: 160,
            stub_rne_fraction: 0.15,
            transit_extra_tier1: 2,
            eyeball_providers: (3, 4),
            stub_providers: (2, 3),
            rne_peers: 3,
            ixps: 0,
            ixp_member_prob: 0.5,
            sites: crate::cdn::paper_sites(),
        }
    }

    /// Total node count excluding CDN sites.
    pub fn num_ases(&self) -> usize {
        self.tier1 + self.transit + self.rne + self.eyeballs + self.stubs
    }
}

/// Connectivity profile for standalone announcement origins, used by the
/// Appendix A/B reproductions (Figures 3 and 4) to compare withdrawal
/// convergence and announcement propagation between hypergiant-like and
/// PEERING-like origins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OriginProfile {
    /// Many providers and wide peering, like a hypergiant.
    Hypergiant,
    /// A couple of providers (one R&E), like a PEERING testbed site.
    PeeringTestbed,
}

struct Builder<'a> {
    topo: Topology,
    rng: &'a RngFactory,
    next_asn: u32,
    /// Trig-precomputed coordinates, parallel to the topology's node list.
    /// Every [`Builder::nearest`] call scans all nodes, so each node's
    /// haversine terms are computed once here instead of once per scan.
    prep: Vec<crate::geo::PreparedCoords>,
}

impl<'a> Builder<'a> {
    fn coords_near(&self, region: usize, stream: &str, id: u64) -> Coords {
        let c = REGIONS[region].center;
        let mut r = self.rng.stream(stream, id);
        Coords::new(
            c.lat + r.gen_range(-2.0..2.0),
            c.lon + r.gen_range(-2.0..2.0),
        )
    }

    fn add_prepared(&mut self, asn: Asn, kind: NodeKind, coords: Coords, region: usize) -> NodeId {
        self.prep.push(coords.prepare());
        self.topo.add_node(asn, kind, coords, region)
    }

    fn add(&mut self, kind: NodeKind, region: usize, stream: &str, id: u64) -> NodeId {
        let asn = Asn(self.next_asn);
        self.next_asn += 1;
        let coords = self.coords_near(region, stream, id);
        self.add_prepared(asn, kind, coords, region)
    }

    /// The `k` nearest nodes to `from` satisfying `filter`, deterministic
    /// (ties break by node id), excluding already-linked nodes.
    fn nearest<F: Fn(&crate::graph::Node) -> bool>(
        &self,
        from: Coords,
        filter: F,
        k: usize,
        exclude_linked_to: Option<NodeId>,
    ) -> Vec<NodeId> {
        let from = from.prepare();
        let mut candidates: Vec<(u64, NodeId)> = self
            .topo
            .nodes()
            .filter(|n| filter(n))
            .filter(|n| match exclude_linked_to {
                Some(x) => n.id != x && !self.topo.are_linked(x, n.id),
                None => true,
            })
            .map(|n| {
                let km = from.distance_km_to(&self.prep[n.id.index()]);
                ((km * 1000.0) as u64, n.id)
            })
            .collect();
        candidates.sort();
        candidates.into_iter().take(k).map(|(_, id)| id).collect()
    }
}

/// Generates a topology and realizes the CDN deployment in `cfg.sites`.
///
/// Panics if any site spec lacks a provider (peer-only sites are not
/// globally reachable; the paper excludes such PEERING sites too).
pub fn generate(cfg: &GenConfig, rng: &RngFactory) -> (Topology, CdnDeployment) {
    for s in &cfg.sites {
        assert!(
            s.has_provider(),
            "site {} has no provider attachment; it would not be globally reachable",
            s.name
        );
    }

    let mut b = Builder {
        topo: Topology::new(),
        rng,
        next_asn: 1,
        prep: Vec::with_capacity(cfg.num_ases() + cfg.sites.len()),
    };
    let nregions = REGIONS.len();

    // --- Tier-1 clique, spread round-robin over regions. ---
    let mut tier1s = Vec::with_capacity(cfg.tier1);
    for i in 0..cfg.tier1 {
        let region = i % nregions;
        tier1s.push(b.add(NodeKind::Tier1, region, "t1-coords", i as u64));
    }
    for i in 0..tier1s.len() {
        for j in (i + 1)..tier1s.len() {
            b.topo.link_peers(tier1s[i], tier1s[j]);
        }
    }

    // --- Regional transit: 2 tier-1 providers (nearest + random), regional
    // peering mesh, a few long-line cross-region peers. ---
    let mut transits = Vec::with_capacity(cfg.transit);
    for i in 0..cfg.transit {
        let region = b
            .rng
            .stream("transit-region", i as u64)
            .gen_range(0..nregions);
        let id = b.add(NodeKind::Transit, region, "transit-coords", i as u64);
        let coords = b.topo.node(id).coords;
        // Nearest tier-1 is always a provider.
        let near = b.nearest(coords, |n| n.kind == NodeKind::Tier1, 1, Some(id));
        for p in &near {
            b.topo.link_provider_customer(*p, id);
        }
        // Plus random distinct tier-1s (multihoming).
        let mut r = b.rng.stream("transit-provider2", i as u64);
        for _ in 0..cfg.transit_extra_tier1 {
            if let Some(p2) = tier1s
                .iter()
                .filter(|t| !b.topo.are_linked(**t, id))
                .collect::<Vec<_>>()
                .choose(&mut r)
            {
                b.topo.link_provider_customer(**p2, id);
            }
        }
        transits.push(id);
    }
    // Same-region transit peering.
    for i in 0..transits.len() {
        for j in (i + 1)..transits.len() {
            let (a, c) = (transits[i], transits[j]);
            if b.topo.node(a).region == b.topo.node(c).region {
                let p: f64 = b
                    .rng
                    .stream("transit-peer", (i * cfg.transit + j) as u64)
                    .gen();
                if p < cfg.transit_peer_prob && !b.topo.are_linked(a, c) {
                    b.topo.link_peers(a, c);
                }
            }
        }
    }
    // Cross-region transit peering (long lines).
    {
        let mut r = b.rng.stream("transit-cross", 0);
        let mut added = 0;
        let mut attempts = 0;
        while added < cfg.transit_cross_peers && attempts < cfg.transit_cross_peers * 20 {
            attempts += 1;
            let a = *transits.choose(&mut r).expect("transits nonempty");
            let c = *transits.choose(&mut r).expect("transits nonempty");
            if a != c && !b.topo.are_linked(a, c) {
                b.topo.link_peers(a, c);
                added += 1;
            }
        }
    }

    // --- R&E backbones: customers of one tier-1 and one transit
    // (commercial upstreams), peering with the 2 nearest other R&Es. The
    // customer link is the Appendix C.1 mechanism: commercial networks
    // prefer the R&E customer route to an R&E-hosted site over a peer route
    // to the intended site. ---
    let mut rnes = Vec::with_capacity(cfg.rne);
    for i in 0..cfg.rne {
        let region = b.rng.stream("rne-region", i as u64).gen_range(0..nregions);
        let id = b.add(NodeKind::ResearchEdu, region, "rne-coords", i as u64);
        let coords = b.topo.node(id).coords;
        for p in b.nearest(coords, |n| n.kind == NodeKind::Tier1, 1, Some(id)) {
            b.topo.link_provider_customer(p, id);
        }
        // Gigapops buy from the local commercial transits too (the PNW
        // Gigapop pattern): their upstreams then hold *customer* routes to
        // everything the R&E fabric carries — Appendix C.1's mechanism.
        for p in b.nearest(coords, |n| n.kind == NodeKind::Transit, 2, Some(id)) {
            b.topo.link_provider_customer(p, id);
        }
        rnes.push(id);
    }
    for (i, &id) in rnes.iter().enumerate() {
        let coords = b.topo.node(id).coords;
        let peers = b.nearest(
            coords,
            |n| n.kind == NodeKind::ResearchEdu,
            cfg.rne_peers,
            Some(id),
        );
        let _ = i;
        for p in peers {
            if !b.topo.are_linked(id, p) {
                // The R&E fabric provides mutual transit, not mere peering.
                b.topo.link_mutual_transit(id, p);
            }
        }
    }

    // --- Edge: eyeballs (multihomed to 2-3 regional transits) and stubs
    // (1-2 providers; a fraction are universities behind R&E). ---
    let mut edge_count = 0u64;
    for _ in 0..cfg.eyeballs {
        let region = b
            .rng
            .stream("eyeball-region", edge_count)
            .gen_range(0..nregions);
        let id = b.add(NodeKind::Eyeball, region, "eyeball-coords", edge_count);
        let coords = b.topo.node(id).coords;
        let nproviders = b
            .rng
            .stream("eyeball-degree", edge_count)
            .gen_range(cfg.eyeball_providers.0..=cfg.eyeball_providers.1);
        for p in b.nearest(
            coords,
            |n| n.kind == NodeKind::Transit,
            nproviders,
            Some(id),
        ) {
            b.topo.link_provider_customer(p, id);
        }
        edge_count += 1;
    }
    for _ in 0..cfg.stubs {
        let region = b
            .rng
            .stream("stub-region", edge_count)
            .gen_range(0..nregions);
        let id = b.add(NodeKind::Stub, region, "stub-coords", edge_count);
        let coords = b.topo.node(id).coords;
        let is_university: f64 = b.rng.stream("stub-rne", edge_count).gen();
        if is_university < cfg.stub_rne_fraction && !rnes.is_empty() {
            for p in b.nearest(coords, |n| n.kind == NodeKind::ResearchEdu, 1, Some(id)) {
                b.topo.link_provider_customer(p, id);
            }
        } else {
            let nproviders = b
                .rng
                .stream("stub-degree", edge_count)
                .gen_range(cfg.stub_providers.0..=cfg.stub_providers.1);
            for p in b.nearest(
                coords,
                |n| n.kind == NodeKind::Transit,
                nproviders,
                Some(id),
            ) {
                b.topo.link_provider_customer(p, id);
            }
        }
        edge_count += 1;
    }

    // --- Internet exchange points: full-mesh peering among regional
    // members (transits and eyeballs). ---
    for ix in 0..cfg.ixps {
        let region = ix % nregions;
        let mut members: Vec<NodeId> = Vec::new();
        for n in b.topo.nodes() {
            if n.region != region || !matches!(n.kind, NodeKind::Transit | NodeKind::Eyeball) {
                continue;
            }
            let roll: f64 = b
                .rng
                .stream("ixp-join", (ix * 100_000 + n.id.index()) as u64)
                .gen();
            if roll < cfg.ixp_member_prob {
                members.push(n.id);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if !b.topo.are_linked(members[i], members[j]) {
                    b.topo.link_peers(members[i], members[j]);
                }
            }
        }
    }

    // --- CDN sites. ---
    let mut site_nodes = Vec::with_capacity(cfg.sites.len());
    for (i, spec) in cfg.sites.iter().enumerate() {
        let region = REGIONS
            .iter()
            .position(|r| r.name == spec.region)
            .unwrap_or_else(|| panic!("site {} in unknown region {}", spec.name, spec.region));
        let coords = b.coords_near(region, "site-coords", i as u64);
        // Sites use CDN_ASN, not the counter.
        let id = b.add_prepared(
            CDN_ASN,
            NodeKind::CdnSite(crate::cdn::SiteId(i as u8)),
            coords,
            region,
        );
        for att in &spec.attachments {
            match *att {
                SiteAttachment::TransitProviders(n) => {
                    for p in b.nearest(coords, |x| x.kind == NodeKind::Transit, n, Some(id)) {
                        b.topo.link_provider_customer(p, id);
                    }
                }
                SiteAttachment::RemoteTransitProviders(n) => {
                    for p in b.nearest(
                        coords,
                        |x| x.kind == NodeKind::Transit && x.region != region,
                        n,
                        Some(id),
                    ) {
                        b.topo.link_provider_customer(p, id);
                    }
                }
                SiteAttachment::Tier1Providers(n) => {
                    for p in b.nearest(coords, |x| x.kind == NodeKind::Tier1, n, Some(id)) {
                        b.topo.link_provider_customer(p, id);
                    }
                }
                SiteAttachment::ResearchEduProviders(n) => {
                    for p in b.nearest(coords, |x| x.kind == NodeKind::ResearchEdu, n, Some(id)) {
                        b.topo.link_provider_customer(p, id);
                    }
                }
                SiteAttachment::EyeballPeers(n) => {
                    for p in b.nearest(coords, |x| x.kind == NodeKind::Eyeball, n, Some(id)) {
                        b.topo.link_peers(id, p);
                    }
                }
                SiteAttachment::TransitPeers(n) => {
                    for p in b.nearest(coords, |x| x.kind == NodeKind::Transit, n, Some(id)) {
                        b.topo.link_peers(id, p);
                    }
                }
            }
        }
        site_nodes.push(id);
    }

    let topo = b.topo;
    debug_assert!(topo.check_consistency().is_ok());
    assert!(topo.is_connected(), "generated topology is not connected");
    (topo, CdnDeployment::new(cfg.sites.clone(), site_nodes))
}

/// Adds a standalone announcement origin with the given connectivity
/// profile to an existing topology (Appendix A/B experiments). Returns the
/// new node's id. Each call allocates a fresh ASN above 60000.
pub fn attach_origin(
    topo: &mut Topology,
    profile: OriginProfile,
    rng: &RngFactory,
    instance: u64,
) -> NodeId {
    let nregions = REGIONS.len();
    let region = rng.stream("origin-region", instance).gen_range(0..nregions);
    let center = REGIONS[region].center;
    let mut r = rng.stream("origin-coords", instance);
    let coords = Coords::new(
        center.lat + r.gen_range(-2.0..2.0),
        center.lon + r.gen_range(-2.0..2.0),
    );
    let asn = Asn(60000 + instance as u32);
    // Origins are modeled as stubs: they only originate, never transit.
    let id = topo.add_node(asn, NodeKind::Stub, coords, region);

    let nearest = |topo: &Topology, kind: NodeKind, k: usize, exclude: NodeId| -> Vec<NodeId> {
        let mut c: Vec<(u64, NodeId)> = topo
            .nodes()
            .filter(|n| n.kind == kind && n.id != exclude && !topo.are_linked(exclude, n.id))
            .map(|n| ((coords.distance_km(&n.coords) * 1000.0) as u64, n.id))
            .collect();
        c.sort();
        c.into_iter().take(k).map(|(_, x)| x).collect()
    };

    match profile {
        OriginProfile::Hypergiant => {
            for p in nearest(topo, NodeKind::Tier1, 3, id) {
                topo.link_provider_customer(p, id);
            }
            for p in nearest(topo, NodeKind::Transit, 6, id) {
                topo.link_peers(id, p);
            }
        }
        OriginProfile::PeeringTestbed => {
            for p in nearest(topo, NodeKind::Transit, 1, id) {
                topo.link_provider_customer(p, id);
            }
            for p in nearest(topo, NodeKind::ResearchEdu, 1, id) {
                topo.link_provider_customer(p, id);
            }
            for p in nearest(topo, NodeKind::Transit, 2, id) {
                topo.link_peers(id, p);
            }
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_topology_is_connected_and_consistent() {
        let rng = RngFactory::new(1);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        assert!(topo.is_connected());
        topo.check_consistency().unwrap();
        assert_eq!(cdn.num_sites(), 8);
        // All sites share the CDN ASN and are distinct nodes.
        let mut nodes: Vec<NodeId> = cdn.site_nodes().to_vec();
        for &n in &nodes {
            assert_eq!(topo.node(n).asn, CDN_ASN);
            assert!(topo.node(n).kind.is_site());
        }
        nodes.dedup();
        assert_eq!(nodes.len(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::tiny();
        let (a, _) = generate(&cfg, &RngFactory::new(7));
        let (b, _) = generate(&cfg, &RngFactory::new(7));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.link_count(), b.link_count());
        for (na, nb) in a.nodes().zip(b.nodes()) {
            assert_eq!(na.asn, nb.asn);
            assert_eq!(na.kind, nb.kind);
            assert_eq!(na.coords, nb.coords);
        }
        for id in a.ids() {
            let aa: Vec<_> = a.neighbors(id).iter().map(|x| (x.peer, x.rel)).collect();
            let bb: Vec<_> = b.neighbors(id).iter().map(|x| (x.peer, x.rel)).collect();
            assert_eq!(aa, bb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::tiny();
        let (a, _) = generate(&cfg, &RngFactory::new(1));
        let (b, _) = generate(&cfg, &RngFactory::new(2));
        // Same node counts, different wiring (with overwhelming probability).
        assert_eq!(a.len(), b.len());
        let wiring_differs = a.ids().any(|id| {
            let aa: Vec<_> = a.neighbors(id).iter().map(|x| x.peer).collect();
            let bb: Vec<_> = b.neighbors(id).iter().map(|x| x.peer).collect();
            aa != bb
        });
        assert!(wiring_differs);
    }

    #[test]
    fn every_nonsite_as_has_a_path_up() {
        // Every non-tier1, non-site node must have at least one provider,
        // otherwise it could be unreachable in valley-free routing.
        let (topo, _) = generate(&GenConfig::small(), &RngFactory::new(3));
        for n in topo.nodes() {
            if n.kind == NodeKind::Tier1 || n.kind.is_site() {
                continue;
            }
            let has_provider = topo
                .neighbors(n.id)
                .iter()
                .any(|a| a.rel == crate::graph::Rel::Provider);
            assert!(has_provider, "{:?} {} has no provider", n.kind, n.id);
        }
    }

    #[test]
    fn site_attachments_realize_spec() {
        let (topo, cdn) = generate(&GenConfig::small(), &RngFactory::new(3));
        // ams: 3 providers (2 transit + 1 tier1) and 10 peers.
        let ams = cdn.by_name("ams").unwrap();
        let node = cdn.node(ams);
        let providers = topo
            .neighbors(node)
            .iter()
            .filter(|a| a.rel == crate::graph::Rel::Provider)
            .count();
        let peers = topo
            .neighbors(node)
            .iter()
            .filter(|a| a.rel == crate::graph::Rel::Peer)
            .count();
        assert_eq!(providers, 3);
        assert_eq!(peers, 10);
        // sea2 sits behind R&E gigapops.
        let sea2 = cdn.by_name("sea2").unwrap();
        let rne_providers = topo
            .neighbors(cdn.node(sea2))
            .iter()
            .filter(|a| a.rel == crate::graph::Rel::Provider && topo.node(a.peer).kind.is_rne())
            .count();
        assert_eq!(rne_providers, 2);
    }

    #[test]
    fn rne_networks_are_customers_of_commercial() {
        let (topo, _) = generate(&GenConfig::small(), &RngFactory::new(3));
        for n in topo.nodes().filter(|n| n.kind.is_rne()) {
            let commercial_providers = topo
                .neighbors(n.id)
                .iter()
                .filter(|a| {
                    a.rel == crate::graph::Rel::Provider
                        && matches!(topo.node(a.peer).kind, NodeKind::Tier1 | NodeKind::Transit)
                })
                .count();
            assert!(
                commercial_providers >= 1,
                "{} lacks commercial upstream",
                n.id
            );
        }
    }

    #[test]
    fn origin_profiles_differ_in_degree() {
        let rng = RngFactory::new(5);
        let (mut topo, _) = generate(&GenConfig::tiny(), &rng);
        let hg = attach_origin(&mut topo, OriginProfile::Hypergiant, &rng, 0);
        let pe = attach_origin(&mut topo, OriginProfile::PeeringTestbed, &rng, 1);
        assert!(topo.neighbors(hg).len() > topo.neighbors(pe).len());
        assert_ne!(topo.node(hg).asn, topo.node(pe).asn);
        assert!(topo.is_connected());
        topo.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "no provider attachment")]
    fn peer_only_site_rejected() {
        let mut cfg = GenConfig::tiny();
        cfg.sites = vec![SiteSpec::new(
            "bad",
            "seattle",
            vec![SiteAttachment::TransitPeers(2)],
        )];
        generate(&cfg, &RngFactory::new(1));
    }

    #[test]
    fn ixps_add_lateral_peering_without_breaking_anything() {
        let rng = RngFactory::new(4);
        let base = GenConfig::tiny();
        let mut with_ixps = GenConfig::tiny();
        with_ixps.ixps = 4;
        let (a, _) = generate(&base, &rng);
        let (b, _) = generate(&with_ixps, &rng);
        assert!(
            b.link_count() > a.link_count(),
            "IXPs must add links: {} !> {}",
            b.link_count(),
            a.link_count()
        );
        assert!(b.is_connected());
        b.check_consistency().unwrap();
        // IXP links are settlement-free peerings.
        // (Spot check: node counts unchanged.)
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn scales_have_expected_order() {
        assert!(GenConfig::tiny().num_ases() < GenConfig::small().num_ases());
        assert!(GenConfig::small().num_ases() < GenConfig::eval().num_ases());
        assert!(GenConfig::eval().num_ases() < GenConfig::large().num_ases());
    }
}
