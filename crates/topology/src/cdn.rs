//! The CDN deployment: sites, their names, and how each attaches to the
//! surrounding Internet.
//!
//! The default deployment mirrors the eight PEERING sites of the paper's
//! Table 1 (`ams ath bos atl sea1 slc sea2 msn`), with attachment profiles
//! chosen to span the same qualitative connectivity range:
//!
//! * `ams` — rich commercial connectivity (providers + many peers): attracts
//!   a large anycast catchment, like the paper's ams (only 15% of its nearby
//!   targets were *not* anycast-routed to it).
//! * `sea1` — connected at a commercial exchange, mostly peers: its
//!   non-prepended announcement loses to *customer* routes toward other
//!   sites, reproducing Table 1's 6% control and Appendix C.1.
//! * `sea2`, `msn`, `ath` — university-hosted sites behind R&E gigapops
//!   (the R&E network is a *customer* of big transits, so routes through it
//!   are strongly preferred by the business hierarchy).
//! * the rest sit between those extremes.

use bobw_net::{Asn, NodeId};
use serde::{Deserialize, Serialize};

use std::fmt;

/// The CDN's autonomous system number (PEERING's real ASN, as a nod to the
/// testbed; any number unused by the generator works).
pub const CDN_ASN: Asn = Asn(47065);

/// Index of a CDN site within a deployment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u8);

impl SiteId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// One way a site connects to the rest of the Internet. Attachment targets
/// are resolved by the generator against the synthetic topology (nearest
/// matching ASes in the site's region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteAttachment {
    /// Buy transit from `n` regional commercial transit providers.
    TransitProviders(usize),
    /// Buy transit from `n` transit providers *outside* the site's region
    /// (an ad hoc, non-dominant upstream — the PEERING sea1 pattern, where
    /// the site's provider does not serve the local client population).
    RemoteTransitProviders(usize),
    /// Buy transit from `n` tier-1 providers.
    Tier1Providers(usize),
    /// Sit behind `n` R&E gigapops (the site is the R&E network's customer).
    ResearchEduProviders(usize),
    /// Settlement-free peering with `n` regional eyeball networks.
    EyeballPeers(usize),
    /// Settlement-free peering with `n` regional transit networks (an IXP
    /// presence).
    TransitPeers(usize),
}

/// Static description of one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Short name as used in the paper's tables (e.g. `sea1`).
    pub name: String,
    /// Region name from [`crate::geo::REGIONS`].
    pub region: String,
    /// How the site connects.
    pub attachments: Vec<SiteAttachment>,
}

impl SiteSpec {
    pub fn new(name: &str, region: &str, attachments: Vec<SiteAttachment>) -> SiteSpec {
        SiteSpec {
            name: name.to_string(),
            region: region.to_string(),
            attachments,
        }
    }

    /// Does this site have at least one provider? The paper only uses
    /// PEERING sites with a provider (peer-only sites are not globally
    /// reachable); the generator enforces the same rule.
    pub fn has_provider(&self) -> bool {
        self.attachments.iter().any(|a| {
            matches!(
                a,
                SiteAttachment::TransitProviders(n)
                    | SiteAttachment::RemoteTransitProviders(n)
                    | SiteAttachment::Tier1Providers(n)
                    | SiteAttachment::ResearchEduProviders(n)
                    if *n > 0
            )
        })
    }
}

/// The paper's eight Table-1 sites with connectivity profiles spanning the
/// same qualitative range (see module docs).
pub fn paper_sites() -> Vec<SiteSpec> {
    use SiteAttachment::*;
    vec![
        SiteSpec::new(
            "ams",
            "amsterdam",
            vec![
                TransitProviders(2),
                Tier1Providers(1),
                EyeballPeers(6),
                TransitPeers(4),
            ],
        ),
        SiteSpec::new(
            "ath",
            "athens",
            vec![ResearchEduProviders(1), EyeballPeers(1)],
        ),
        SiteSpec::new("bos", "boston", vec![TransitProviders(1), EyeballPeers(2)]),
        SiteSpec::new(
            "atl",
            "atlanta",
            vec![TransitProviders(1), ResearchEduProviders(1)],
        ),
        SiteSpec::new(
            "sea1",
            "seattle",
            vec![RemoteTransitProviders(1), TransitPeers(5)],
        ),
        SiteSpec::new(
            "slc",
            "salt-lake-city",
            vec![TransitProviders(1), EyeballPeers(1)],
        ),
        SiteSpec::new(
            "sea2",
            "seattle",
            vec![ResearchEduProviders(2), EyeballPeers(1)],
        ),
        SiteSpec::new(
            "msn",
            "madison",
            vec![ResearchEduProviders(1), TransitProviders(1)],
        ),
    ]
}

/// The realized CDN deployment inside a generated topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdnDeployment {
    specs: Vec<SiteSpec>,
    nodes: Vec<NodeId>,
}

impl CdnDeployment {
    /// Builds a deployment record; `nodes[i]` realizes `specs[i]`.
    pub fn new(specs: Vec<SiteSpec>, nodes: Vec<NodeId>) -> CdnDeployment {
        assert_eq!(specs.len(), nodes.len());
        assert!(
            specs.len() <= u8::MAX as usize,
            "more than 255 sites not supported"
        );
        CdnDeployment { specs, nodes }
    }

    pub fn num_sites(&self) -> usize {
        self.nodes.len()
    }

    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.nodes.len() as u8).map(SiteId)
    }

    pub fn node(&self, site: SiteId) -> NodeId {
        self.nodes[site.index()]
    }

    pub fn spec(&self, site: SiteId) -> &SiteSpec {
        &self.specs[site.index()]
    }

    pub fn name(&self, site: SiteId) -> &str {
        &self.specs[site.index()].name
    }

    /// Site by name (`"sea1"`), if present.
    pub fn by_name(&self, name: &str) -> Option<SiteId> {
        self.specs
            .iter()
            .position(|s| s.name == name)
            .map(|i| SiteId(i as u8))
    }

    /// Site realized at `node`, if any.
    pub fn site_at(&self, node: NodeId) -> Option<SiteId> {
        self.nodes
            .iter()
            .position(|n| *n == node)
            .map(|i| SiteId(i as u8))
    }

    /// All site node ids in site order.
    pub fn site_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// All sites except `failed` — the set that participates in
    /// reactive-anycast / prepended backup announcements.
    pub fn other_sites(&self, failed: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        self.sites().filter(move |s| *s != failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sites_match_table1_columns() {
        let sites = paper_sites();
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["ams", "ath", "bos", "atl", "sea1", "slc", "sea2", "msn"]
        );
        // Every site must be globally reachable (has a provider).
        for s in &sites {
            assert!(s.has_provider(), "{} lacks a provider", s.name);
        }
        // Regions must resolve.
        for s in &sites {
            let _ = crate::geo::region(&s.region);
        }
    }

    #[test]
    fn has_provider_logic() {
        use SiteAttachment::*;
        let peer_only = SiteSpec::new("x", "seattle", vec![TransitPeers(3), EyeballPeers(2)]);
        assert!(!peer_only.has_provider());
        let zero_counts = SiteSpec::new("y", "seattle", vec![TransitProviders(0)]);
        assert!(!zero_counts.has_provider());
        let rne = SiteSpec::new("z", "seattle", vec![ResearchEduProviders(1)]);
        assert!(rne.has_provider());
    }

    #[test]
    fn deployment_lookup() {
        let specs = paper_sites();
        let nodes: Vec<NodeId> = (100..108).map(NodeId).collect();
        let d = CdnDeployment::new(specs, nodes);
        assert_eq!(d.num_sites(), 8);
        let sea1 = d.by_name("sea1").unwrap();
        assert_eq!(d.name(sea1), "sea1");
        assert_eq!(d.node(sea1), NodeId(104));
        assert_eq!(d.site_at(NodeId(104)), Some(sea1));
        assert_eq!(d.site_at(NodeId(1)), None);
        assert_eq!(d.by_name("nope"), None);
        assert_eq!(d.other_sites(sea1).count(), 7);
        assert!(d.other_sites(sea1).all(|s| s != sea1));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        CdnDeployment::new(paper_sites(), vec![NodeId(0)]);
    }
}
