//! Geography: node coordinates, great-circle distance, propagation delay.
//!
//! Latency only has to be *plausible*, not precise: the paper's target
//! selection keeps clients "within 50 ms round-trip" of a site, and our
//! regional structure must make that predicate select mostly same-continent
//! targets, the way it does on the real Internet.

use bobw_event::SimDuration;
use serde::{Deserialize, Serialize};

/// Latitude/longitude in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coords {
    pub lat: f64,
    pub lon: f64,
}

impl Coords {
    pub const fn new(lat: f64, lon: f64) -> Coords {
        Coords { lat, lon }
    }

    /// Great-circle distance in kilometres (haversine, mean Earth radius).
    pub fn distance_km(&self, other: &Coords) -> f64 {
        self.prepare().distance_km_to(&other.prepare())
    }

    /// Caches this point's radians and `cos(lat)` for repeated distance
    /// queries (the generator's nearest-neighbor scans hit every node once
    /// per query point).
    pub fn prepare(&self) -> PreparedCoords {
        let lat_rad = self.lat.to_radians();
        PreparedCoords {
            lat_rad,
            lon_rad: self.lon.to_radians(),
            cos_lat: lat_rad.cos(),
        }
    }
}

/// Trig-precomputed form of [`Coords`]. [`PreparedCoords::distance_km_to`]
/// evaluates the same haversine expression over the same intermediates as
/// the historic inline formula, so cached and uncached distances agree bit
/// for bit — distance-sorted tie-breaking cannot be perturbed by caching.
#[derive(Debug, Clone, Copy)]
pub struct PreparedCoords {
    lat_rad: f64,
    lon_rad: f64,
    cos_lat: f64,
}

impl PreparedCoords {
    /// Great-circle distance in kilometres (haversine, mean Earth radius).
    pub fn distance_km_to(&self, other: &PreparedCoords) -> f64 {
        const R: f64 = 6371.0;
        let dla = other.lat_rad - self.lat_rad;
        let dlo = other.lon_rad - self.lon_rad;
        let a =
            (dla / 2.0).sin().powi(2) + self.cos_lat * other.cos_lat * (dlo / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().asin()
    }
}

/// One-way propagation delay over a fiber path of the given geographic
/// distance: light in fiber covers ~200 km/ms, plus ~1.3× path stretch for
/// real cable routes, plus a fixed per-link forwarding cost.
pub fn propagation_delay(km: f64) -> SimDuration {
    const KM_PER_MS: f64 = 200.0;
    const STRETCH: f64 = 1.3;
    const BASE_US: f64 = 350.0; // per-hop serialization/queueing floor
    let us = km * STRETCH / KM_PER_MS * 1000.0 + BASE_US;
    SimDuration::from_micros(us.round() as u64)
}

/// A metropolitan region where ASes and CDN sites cluster.
///
/// Serialize-only: `name` borrows from the static [`REGIONS`] table, so a
/// `Region` cannot be rebuilt from JSON (and never needs to be — regions
/// are identified by name or index everywhere they cross a file boundary).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Region {
    pub name: &'static str,
    pub center: Coords,
}

/// The simulator's region set: the 8 PEERING sites of the paper's Table 1
/// plus extra population centres so that not every client is near a site
/// (the paper's §5.1 notes PEERING lacks sites in some regions).
pub const REGIONS: &[Region] = &[
    Region {
        name: "amsterdam",
        center: Coords::new(52.37, 4.90),
    },
    Region {
        name: "athens",
        center: Coords::new(37.98, 23.73),
    },
    Region {
        name: "boston",
        center: Coords::new(42.36, -71.06),
    },
    Region {
        name: "atlanta",
        center: Coords::new(33.75, -84.39),
    },
    Region {
        name: "seattle",
        center: Coords::new(47.61, -122.33),
    },
    Region {
        name: "salt-lake-city",
        center: Coords::new(40.76, -111.89),
    },
    Region {
        name: "madison",
        center: Coords::new(43.07, -89.40),
    },
    Region {
        name: "belo-horizonte",
        center: Coords::new(-19.92, -43.94),
    },
    // Non-site population centres.
    Region {
        name: "london",
        center: Coords::new(51.51, -0.13),
    },
    Region {
        name: "frankfurt",
        center: Coords::new(50.11, 8.68),
    },
    Region {
        name: "new-york",
        center: Coords::new(40.71, -74.01),
    },
    Region {
        name: "chicago",
        center: Coords::new(41.88, -87.63),
    },
    Region {
        name: "dallas",
        center: Coords::new(32.78, -96.80),
    },
    Region {
        name: "los-angeles",
        center: Coords::new(34.05, -118.24),
    },
    Region {
        name: "sao-paulo",
        center: Coords::new(-23.55, -46.63),
    },
    Region {
        name: "tokyo",
        center: Coords::new(35.68, 139.69),
    },
];

/// Index of a region by name; panics on unknown names (config typo).
pub fn region(name: &str) -> &'static Region {
    REGIONS
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("unknown region {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let c = Coords::new(52.37, 4.90);
        assert!(c.distance_km(&c) < 1e-9);
    }

    #[test]
    fn known_distances_are_roughly_right() {
        let ams = region("amsterdam").center;
        let ath = region("athens").center;
        let d = ams.distance_km(&ath);
        // Real-world great-circle AMS-ATH ≈ 2160 km.
        assert!((2000.0..2350.0).contains(&d), "{d}");
        let sea = region("seattle").center;
        let bos = region("boston").center;
        let d = sea.distance_km(&bos);
        // ≈ 4000 km.
        assert!((3800.0..4200.0).contains(&d), "{d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = region("tokyo").center;
        let b = region("sao-paulo").center;
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn delay_scales_with_distance() {
        let near = propagation_delay(10.0);
        let far = propagation_delay(4000.0);
        assert!(far > near);
        // 4000 km -> ~26 ms one way plus floor.
        let ms = far.as_nanos() as f64 / 1e6;
        assert!((20.0..35.0).contains(&ms), "{ms}");
        // Floor applies even at zero distance.
        assert!(propagation_delay(0.0) >= SimDuration::from_micros(300));
    }

    #[test]
    fn regions_have_unique_names() {
        let mut names: Vec<&str> = REGIONS.iter().map(|r| r.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), REGIONS.len());
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn unknown_region_panics() {
        region("atlantis");
    }
}
