//! The AS-level graph: nodes, business relationships, links.

use bobw_event::SimDuration;
use bobw_net::{Asn, NodeId};
use serde::{Deserialize, Serialize};

use crate::cdn::SiteId;
use crate::geo::{propagation_delay, Coords};

/// What kind of network a node models. Drives generation, target selection
/// (clients live in eyeball/stub ASes) and the Appendix C.1 classification
/// (R&E vs commercial next hops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Default-free backbone; the tier-1 clique.
    Tier1,
    /// Regional/national transit provider.
    Transit,
    /// Access network hosting many end users (the paper's "eyeball").
    Eyeball,
    /// Small multi-purpose edge AS (enterprises, hosters).
    Stub,
    /// Research-and-education backbone or gigapop (Appendix C.1's PNW
    /// Gigapop / Internet2 style networks).
    ResearchEdu,
    /// One CDN site: a distinct announcement origin sharing the CDN ASN.
    CdnSite(SiteId),
}

impl NodeKind {
    /// Is this an R&E network? (Appendix C.1 classification.)
    pub fn is_rne(self) -> bool {
        matches!(self, NodeKind::ResearchEdu)
    }

    /// Can clients (probe targets) live here?
    pub fn hosts_clients(self) -> bool {
        matches!(self, NodeKind::Eyeball | NodeKind::Stub)
    }

    pub fn is_site(self) -> bool {
        matches!(self, NodeKind::CdnSite(_))
    }
}

/// Business relationship of a neighbor *from the owning node's point of
/// view*: `Customer` means "this neighbor pays me".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rel {
    Customer,
    Peer,
    Provider,
    /// R&E-fabric mutual transit: both sides carry each other's academic
    /// cone (Internet2 / regional gigapop behaviour). Routes learned over
    /// such links are treated nearly like customer routes — the Appendix
    /// C.1 mechanism ("providers prefer to route through an R&E network")
    /// depends on this.
    MutualTransit,
}

impl Rel {
    /// The same link seen from the other side.
    pub fn flipped(self) -> Rel {
        match self {
            Rel::Customer => Rel::Provider,
            Rel::Peer => Rel::Peer,
            Rel::Provider => Rel::Customer,
            Rel::MutualTransit => Rel::MutualTransit,
        }
    }
}

/// One node (AS or CDN site).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub asn: Asn,
    pub kind: NodeKind,
    pub coords: Coords,
    /// Region index into [`crate::geo::REGIONS`] the node clusters around.
    pub region: usize,
}

/// One direction of a link, stored in the owning node's adjacency list.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Adjacency {
    /// The neighbor node.
    pub peer: NodeId,
    /// Relationship of `peer` relative to the owner.
    pub rel: Rel,
    /// One-way message/packet delay on the link.
    pub delay: SimDuration,
}

/// The full topology. Node ids are dense; adjacency lists are sorted by
/// neighbor id so iteration order (and therefore the whole simulation) is
/// deterministic regardless of construction order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    adj: Vec<Vec<Adjacency>>,
}

impl Topology {
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, asn: Asn, kind: NodeKind, coords: Coords, region: usize) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            id,
            asn,
            kind,
            coords,
            region,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Connects `provider` and `customer` with a provider-customer link,
    /// delay derived from geography.
    pub fn link_provider_customer(&mut self, provider: NodeId, customer: NodeId) {
        let delay = self.geo_delay(provider, customer);
        self.add_link(provider, customer, Rel::Customer, delay);
    }

    /// Connects two nodes as settlement-free peers.
    pub fn link_peers(&mut self, a: NodeId, b: NodeId) {
        let delay = self.geo_delay(a, b);
        self.add_link(a, b, Rel::Peer, delay);
    }

    /// Connects two R&E networks with a mutual-transit link.
    pub fn link_mutual_transit(&mut self, a: NodeId, b: NodeId) {
        let delay = self.geo_delay(a, b);
        self.add_link(a, b, Rel::MutualTransit, delay);
    }

    /// Low-level link insertion; `rel` is the relationship of `b` from
    /// `a`'s point of view (`Rel::Customer` = "b is a's customer").
    /// Duplicate links between the same pair are rejected — real ASes have
    /// one business relationship, and duplicates would double-deliver
    /// updates.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, rel: Rel, delay: SimDuration) {
        assert_ne!(a, b, "self-link at {a}");
        assert!(!self.are_linked(a, b), "duplicate link between {a} and {b}");
        self.adj[a.index()].push(Adjacency {
            peer: b,
            rel,
            delay,
        });
        self.adj[b.index()].push(Adjacency {
            peer: a,
            rel: rel.flipped(),
            delay,
        });
        // Keep adjacency deterministic under any insertion order.
        self.adj[a.index()].sort_by_key(|x| x.peer);
        self.adj[b.index()].sort_by_key(|x| x.peer);
    }

    fn geo_delay(&self, a: NodeId, b: NodeId) -> SimDuration {
        let km = self.nodes[a.index()]
            .coords
            .distance_km(&self.nodes[b.index()].coords);
        propagation_delay(km)
    }

    pub fn are_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].iter().any(|x| x.peer == b)
    }

    /// The relationship of `b` from `a`'s point of view, if linked.
    pub fn rel(&self, a: NodeId, b: NodeId) -> Option<Rel> {
        self.adj[a.index()]
            .iter()
            .find(|x| x.peer == b)
            .map(|x| x.rel)
    }

    /// Link delay between two directly connected nodes.
    pub fn delay(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        self.adj[a.index()]
            .iter()
            .find(|x| x.peer == b)
            .map(|x| x.delay)
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn neighbors(&self, id: NodeId) -> &[Adjacency] {
        &self.adj[id.index()]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node ids, in dense order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Ids of nodes that can host probe targets.
    pub fn client_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind.hosts_clients())
            .map(|n| n.id)
    }

    /// Total number of (undirected) links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Checks that the graph is connected (every node reachable from node 0
    /// over undirected links). The generator guarantees this; experiments
    /// assert it because an accidentally partitioned topology would show up
    /// as bogus "unreachable target" measurements.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for a in &self.adj[n.index()] {
                if !seen[a.peer.index()] {
                    seen[a.peer.index()] = true;
                    count += 1;
                    stack.push(a.peer);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Verifies relationship symmetry: if `b` is `a`'s customer then `a`
    /// is `b`'s provider, and delays match. Used by tests and debug builds.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, adjs) in self.adj.iter().enumerate() {
            let a = NodeId::from_index(i);
            for x in adjs {
                let back = self.adj[x.peer.index()]
                    .iter()
                    .find(|y| y.peer == a)
                    .ok_or_else(|| format!("one-way link {a}->{}", x.peer))?;
                if back.rel != x.rel.flipped() {
                    return Err(format!("asymmetric relationship {a}<->{}", x.peer));
                }
                if back.delay != x.delay {
                    return Err(format!("asymmetric delay {a}<->{}", x.peer));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::REGIONS;

    fn topo3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let a = t.add_node(Asn(1), NodeKind::Tier1, c, 0);
        let b = t.add_node(Asn(2), NodeKind::Transit, c, 0);
        let d = t.add_node(Asn(3), NodeKind::Stub, c, 0);
        t.link_peers(a, b);
        t.link_provider_customer(b, d);
        (t, a, b, d)
    }

    #[test]
    fn relationships_are_symmetric() {
        let (t, a, b, d) = topo3();
        assert_eq!(t.rel(a, b), Some(Rel::Peer));
        assert_eq!(t.rel(b, a), Some(Rel::Peer));
        assert_eq!(t.rel(b, d), Some(Rel::Customer));
        assert_eq!(t.rel(d, b), Some(Rel::Provider));
        assert_eq!(t.rel(a, d), None);
        t.check_consistency().unwrap();
    }

    #[test]
    fn flipped_is_involution() {
        for r in [Rel::Customer, Rel::Peer, Rel::Provider, Rel::MutualTransit] {
            assert_eq!(r.flipped().flipped(), r);
        }
        assert_eq!(Rel::Customer.flipped(), Rel::Provider);
        assert_eq!(Rel::Peer.flipped(), Rel::Peer);
        assert_eq!(Rel::MutualTransit.flipped(), Rel::MutualTransit);
    }

    #[test]
    fn adjacency_sorted_by_peer() {
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let hub = t.add_node(Asn(1), NodeKind::Tier1, c, 0);
        let n3 = t.add_node(Asn(4), NodeKind::Stub, c, 0);
        let n1 = t.add_node(Asn(2), NodeKind::Stub, c, 0);
        let n2 = t.add_node(Asn(3), NodeKind::Stub, c, 0);
        // Link in scrambled order.
        t.link_provider_customer(hub, n2);
        t.link_provider_customer(hub, n3);
        t.link_provider_customer(hub, n1);
        let peers: Vec<NodeId> = t.neighbors(hub).iter().map(|a| a.peer).collect();
        let mut sorted = peers.clone();
        sorted.sort();
        assert_eq!(peers, sorted);
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let (mut t, a, b, _) = topo3();
        t.link_peers(a, b);
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_rejected() {
        let (mut t, a, _, _) = topo3();
        t.link_peers(a, a);
    }

    #[test]
    fn connectivity_detection() {
        let (mut t, _, _, _) = topo3();
        assert!(t.is_connected());
        let lonely = t.add_node(Asn(99), NodeKind::Stub, REGIONS[1].center, 1);
        assert!(!t.is_connected());
        t.link_provider_customer(NodeId(0), lonely);
        assert!(t.is_connected());
        assert!(Topology::new().is_connected());
    }

    #[test]
    fn counts() {
        let (t, _, _, _) = topo3();
        assert_eq!(t.len(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.client_nodes().count(), 1);
    }

    #[test]
    fn delay_comes_from_geography() {
        let mut t = Topology::new();
        let ams = crate::geo::region("amsterdam").center;
        let ath = crate::geo::region("athens").center;
        let a = t.add_node(Asn(1), NodeKind::Transit, ams, 0);
        let b = t.add_node(Asn(2), NodeKind::Transit, ath, 1);
        t.link_peers(a, b);
        let d = t.delay(a, b).unwrap();
        // ~2160 km * 1.3 / 200 km-per-ms ≈ 14 ms.
        let ms = d.as_nanos() as f64 / 1e6;
        assert!((10.0..20.0).contains(&ms), "{ms}");
        assert_eq!(t.delay(a, b), t.delay(b, a));
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::ResearchEdu.is_rne());
        assert!(!NodeKind::Transit.is_rne());
        assert!(NodeKind::Eyeball.hosts_clients());
        assert!(NodeKind::Stub.hosts_clients());
        assert!(!NodeKind::Tier1.hosts_clients());
        assert!(NodeKind::CdnSite(SiteId(0)).is_site());
        assert!(!NodeKind::CdnSite(SiteId(0)).hosts_clients());
    }
}
