//! # bobw-topology
//!
//! Synthetic Internet-like AS-level topologies for the *Best of Both Worlds*
//! simulator, replacing the real Internet + PEERING testbed the paper used
//! (see DESIGN.md §2 for the substitution argument).
//!
//! The model is the standard one for anycast catchment studies:
//!
//! * one node per AS, connected by *provider–customer* or *peer–peer*
//!   links (Gao-Rexford economics);
//! * the CDN is special: each **site** is its own node, all sharing the CDN
//!   ASN — multiple origins for the same prefix is precisely what anycast
//!   is, and per-site unicast prefixes are what the paper's techniques
//!   manipulate;
//! * nodes carry geographic coordinates; link delays derive from fiber
//!   distance, so "targets within 50 ms of a site" (§5.1) is meaningful.
//!
//! The generator ([`gen`]) produces a hierarchy — tier-1 clique, regional
//! transit, eyeball/stub edge, and research-and-education (R&E) backbones —
//! whose R&E/commercial split reproduces the Appendix C.1 control-loss
//! mechanism: a transit AS prefers a *customer* route through an R&E network
//! to one site over a *peer* route to the intended site, no matter how much
//! the backup sites prepend.

pub mod cdn;
pub mod gen;
pub mod geo;
pub mod graph;

pub use cdn::{CdnDeployment, SiteAttachment, SiteId, SiteSpec, CDN_ASN};
pub use gen::{attach_origin, generate, GenConfig, OriginProfile};
pub use geo::{propagation_delay, Coords, PreparedCoords, Region, REGIONS};
pub use graph::{Adjacency, Node, NodeKind, Rel, Topology};
