//! Property tests on the event kernel: total ordering of the queue and
//! engine-time monotonicity under arbitrary schedules.

use bobw_event::{Engine, EventQueue, Handler, RngFactory, Scheduler, SimDuration, SimTime};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    /// The queue pops a permutation of its input, sorted by time with ties
    /// FIFO by insertion order.
    #[test]
    fn queue_is_stable_priority_order(times in proptest::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(*t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, idx)) = q.pop() {
            popped.push((t, idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
        // It is a permutation.
        let mut idxs: Vec<usize> = popped.iter().map(|(_, i)| *i).collect();
        idxs.sort();
        prop_assert_eq!(idxs, (0..times.len()).collect::<Vec<_>>());
    }

    /// The engine's clock never runs backwards, every scheduled event is
    /// eventually handled, and handler-scheduled follow-ups obey the same
    /// rule.
    #[test]
    fn engine_time_monotone_under_random_load(
        seeds in proptest::collection::vec(0u64..1_000, 1..30),
    ) {
        struct H {
            observed: Vec<SimTime>,
            spawn_budget: u32,
        }
        impl Handler<u64> for H {
            fn handle(&mut self, now: SimTime, ev: u64, sched: &mut Scheduler<'_, u64>) {
                self.observed.push(now);
                if self.spawn_budget > 0 && ev.is_multiple_of(3) {
                    self.spawn_budget -= 1;
                    sched.after(SimDuration::from_millis(ev % 500), ev / 3);
                }
            }
        }
        let mut eng = Engine::new();
        let mut rng = RngFactory::new(7).stream("load", seeds[0]);
        let n_initial = seeds.len();
        for s in &seeds {
            let at = SimTime::from_nanos(rng.gen_range(0..10_000_000_000u64));
            eng.schedule_at(at, *s);
        }
        let mut h = H { observed: Vec::new(), spawn_budget: 100 };
        eng.run_to_idle(&mut h, 1_000_000);
        prop_assert!(h.observed.len() >= n_initial);
        for w in h.observed.windows(2) {
            prop_assert!(w[0] <= w[1], "clock went backwards");
        }
        prop_assert_eq!(eng.pending(), 0);
        prop_assert_eq!(eng.processed(), h.observed.len() as u64);
    }

    /// Deadline splitting is seamless: running to a deadline and resuming
    /// observes exactly the same events as one uninterrupted run.
    #[test]
    fn split_runs_equal_single_run(
        times in proptest::collection::vec(0u64..100, 1..50),
        split_at in 0u64..100,
    ) {
        struct Collect(Vec<(SimTime, usize)>);
        impl Handler<usize> for Collect {
            fn handle(&mut self, now: SimTime, ev: usize, _s: &mut Scheduler<'_, usize>) {
                self.0.push((now, ev));
            }
        }
        let run_split = {
            let mut eng = Engine::new();
            for (i, t) in times.iter().enumerate() {
                eng.schedule_at(SimTime::from_secs(*t), i);
            }
            let mut h = Collect(Vec::new());
            eng.run_until(&mut h, SimTime::from_secs(split_at), 1_000_000);
            eng.run_to_idle(&mut h, 1_000_000);
            h.0
        };
        let run_whole = {
            let mut eng = Engine::new();
            for (i, t) in times.iter().enumerate() {
                eng.schedule_at(SimTime::from_secs(*t), i);
            }
            let mut h = Collect(Vec::new());
            eng.run_to_idle(&mut h, 1_000_000);
            h.0
        };
        prop_assert_eq!(run_split, run_whole);
    }
}
