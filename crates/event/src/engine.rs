//! The simulation engine: pops events in order and hands them to a handler,
//! which may schedule more events.
//!
//! The engine is generic over the event payload `E`; the composition layer
//! (`bobw-core`) defines one enum covering BGP, data-plane and DNS events
//! and dispatches in its [`Handler`] implementation.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Implemented by the simulation's dispatch layer.
pub trait Handler<E> {
    /// Processes one event at time `now`, scheduling follow-ups via `sched`.
    fn handle(&mut self, now: SimTime, event: E, sched: &mut Scheduler<'_, E>);
}

/// Restricted view of the engine handed to handlers: scheduling only, so a
/// handler cannot pop events or rewind the clock.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay`.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `at`; clamps to `now` if `at` is
    /// in the past (zero-delay processing rather than time travel).
    pub fn at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }
}

/// Outcome of [`Engine::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The queue drained before the deadline; time is at the last event.
    Idle,
    /// The deadline was reached with events still pending.
    DeadlineReached,
    /// The event budget was exhausted (runaway protection).
    BudgetExhausted,
}

/// A discrete-event engine over payload type `E`.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    peak_pending: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Engine<E> {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            peak_pending: 0,
        }
    }

    /// An engine whose queue is preallocated for `cap` pending events.
    /// Feeding back a comparable run's [`peak_pending`] skips the heap's
    /// doubling growth; scheduling order and results are unaffected.
    ///
    /// [`peak_pending`]: Engine::peak_pending
    pub fn with_capacity(cap: usize) -> Engine<E> {
        Engine {
            queue: EventQueue::with_capacity(cap),
            now: SimTime::ZERO,
            processed: 0,
            peak_pending: 0,
        }
    }

    /// Events the queue can hold without reallocating.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending queue over the engine's lifetime.
    /// Sampled after every externally scheduled event and every handler
    /// step, so it reflects the depth the run loop actually saw. Feeds the
    /// per-cell perf instrumentation of the experiment runner.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    fn note_depth(&mut self) {
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Schedules an event at absolute time `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
        self.note_depth();
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
        self.note_depth();
    }

    /// Runs until the queue is empty, the next event is later than
    /// `deadline`, or `max_events` have been processed. Events *at* the
    /// deadline still run.
    pub fn run_until<H: Handler<E>>(
        &mut self,
        handler: &mut H,
        deadline: SimTime,
        max_events: u64,
    ) -> StepOutcome {
        let mut budget = max_events;
        loop {
            let t = match self.queue.peek_time() {
                None => {
                    // Draining before a *finite* deadline still advances
                    // the clock to it: "run until T" guarantees now >= T,
                    // so callers can schedule follow-up work at absolute
                    // times past quiet periods (e.g. multi-day lifecycles).
                    if deadline < SimTime::FAR_FUTURE {
                        self.now = self.now.max(deadline);
                    }
                    return StepOutcome::Idle;
                }
                Some(t) if t > deadline => {
                    // Advance the clock to the deadline so callers observe
                    // a consistent "now" (e.g. probing windows that end
                    // while BGP timers are still pending).
                    self.now = deadline;
                    return StepOutcome::DeadlineReached;
                }
                Some(t) => t,
            };
            if budget == 0 {
                return StepOutcome::BudgetExhausted;
            }
            // One wakeup drains the whole same-timestamp run (FIFO by
            // insertion seq — including events a handler schedules *at* `t`
            // while the run is draining), so deadline/idle checks are paid
            // once per distinct timestamp, not once per event. Processing
            // order is exactly the (time, seq) order the per-event loop had.
            while budget > 0 {
                let Some((at, ev)) = self.queue.pop_if_at(t) else {
                    break;
                };
                budget -= 1;
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.processed += 1;
                let mut sched = Scheduler {
                    now: self.now,
                    queue: &mut self.queue,
                };
                handler.handle(at, ev, &mut sched);
                self.note_depth();
            }
        }
    }

    /// Runs until idle with an event budget; convenience for convergence
    /// ("wait one hour" in the paper becomes "run to idle").
    pub fn run_to_idle<H: Handler<E>>(&mut self, handler: &mut H, max_events: u64) -> StepOutcome {
        self.run_until(handler, SimTime::FAR_FUTURE, max_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handler that records processing order and optionally re-schedules.
    struct Recorder {
        seen: Vec<(u64, u32)>,
        chain: u32,
    }

    impl Handler<u32> for Recorder {
        fn handle(&mut self, now: SimTime, event: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((now.as_nanos(), event));
            if event < self.chain {
                sched.after(SimDuration::from_secs(1), event + 1);
            }
        }
    }

    #[test]
    fn chain_of_events_advances_time() {
        let mut eng = Engine::new();
        let mut h = Recorder {
            seen: vec![],
            chain: 3,
        };
        eng.schedule_at(SimTime::from_secs(1), 0);
        assert_eq!(eng.run_to_idle(&mut h, 1000), StepOutcome::Idle);
        let times: Vec<u64> = h.seen.iter().map(|(t, _)| *t / 1_000_000_000).collect();
        assert_eq!(times, vec![1, 2, 3, 4]);
        assert_eq!(eng.now(), SimTime::from_secs(4));
        assert_eq!(eng.processed(), 4);
    }

    #[test]
    fn deadline_stops_and_clamps_clock() {
        let mut eng = Engine::new();
        let mut h = Recorder {
            seen: vec![],
            chain: 0,
        };
        eng.schedule_at(SimTime::from_secs(1), 1);
        eng.schedule_at(SimTime::from_secs(10), 2);
        let out = eng.run_until(&mut h, SimTime::from_secs(5), 1000);
        assert_eq!(out, StepOutcome::DeadlineReached);
        assert_eq!(h.seen.len(), 1);
        assert_eq!(eng.now(), SimTime::from_secs(5));
        assert_eq!(eng.pending(), 1);
        // Resuming picks up the remaining event.
        let out = eng.run_to_idle(&mut h, 1000);
        assert_eq!(out, StepOutcome::Idle);
        assert_eq!(h.seen.len(), 2);
    }

    #[test]
    fn event_at_deadline_still_runs() {
        let mut eng = Engine::new();
        let mut h = Recorder {
            seen: vec![],
            chain: 0,
        };
        eng.schedule_at(SimTime::from_secs(5), 7);
        let out = eng.run_until(&mut h, SimTime::from_secs(5), 1000);
        assert_eq!(out, StepOutcome::Idle);
        assert_eq!(h.seen, vec![(5_000_000_000, 7)]);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        struct Perpetual;
        impl Handler<()> for Perpetual {
            fn handle(&mut self, _now: SimTime, _e: (), sched: &mut Scheduler<'_, ()>) {
                sched.after(SimDuration::from_secs(1), ());
            }
        }
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, ());
        assert_eq!(
            eng.run_to_idle(&mut Perpetual, 100),
            StepOutcome::BudgetExhausted
        );
        assert_eq!(eng.processed(), 100);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        struct PastScheduler {
            fired: bool,
        }
        impl Handler<u8> for PastScheduler {
            fn handle(&mut self, now: SimTime, e: u8, sched: &mut Scheduler<'_, u8>) {
                if e == 0 {
                    // Absolute time in the past; must clamp, not panic.
                    sched.at(SimTime::ZERO, 1);
                    assert_eq!(sched.now(), now);
                } else {
                    self.fired = true;
                }
            }
        }
        let mut eng = Engine::new();
        let mut h = PastScheduler { fired: false };
        eng.schedule_at(SimTime::from_secs(3), 0);
        eng.run_to_idle(&mut h, 10);
        assert!(h.fired);
        assert_eq!(eng.now(), SimTime::from_secs(3));
    }

    #[test]
    fn idle_with_finite_deadline_advances_clock() {
        struct Nop;
        impl Handler<u8> for Nop {
            fn handle(&mut self, _: SimTime, _: u8, _: &mut Scheduler<'_, u8>) {}
        }
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), 0);
        // Queue drains at t=1; the finite deadline still pulls now to t=10.
        assert_eq!(
            eng.run_until(&mut Nop, SimTime::from_secs(10), 100),
            StepOutcome::Idle
        );
        assert_eq!(eng.now(), SimTime::from_secs(10));
        // run_to_idle (infinite deadline) must NOT move the clock.
        assert_eq!(eng.run_to_idle(&mut Nop, 100), StepOutcome::Idle);
        assert_eq!(eng.now(), SimTime::from_secs(10));
    }

    #[test]
    fn peak_pending_tracks_high_water_mark() {
        struct Nop;
        impl Handler<u8> for Nop {
            fn handle(&mut self, _: SimTime, _: u8, _: &mut Scheduler<'_, u8>) {}
        }
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), 0);
        eng.schedule_at(SimTime::from_secs(2), 1);
        eng.schedule_at(SimTime::from_secs(3), 2);
        assert_eq!(eng.peak_pending(), 3);
        eng.run_to_idle(&mut Nop, 10);
        // Draining never lowers the high-water mark.
        assert_eq!(eng.pending(), 0);
        assert_eq!(eng.peak_pending(), 3);
    }

    #[test]
    fn peak_pending_sees_handler_fanout() {
        /// Schedules `n` follow-ups the first time it runs.
        struct FanOut(u32);
        impl Handler<u32> for FanOut {
            fn handle(&mut self, _now: SimTime, event: u32, sched: &mut Scheduler<'_, u32>) {
                if event == 0 {
                    for i in 0..self.0 {
                        sched.after(SimDuration::from_secs(1 + i as u64), 1);
                    }
                }
            }
        }
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, 0u32);
        eng.run_to_idle(&mut FanOut(5), 100);
        assert_eq!(eng.peak_pending(), 5);
    }

    #[test]
    fn with_capacity_changes_nothing_but_the_allocation() {
        /// Deterministic little workload: each event < 8 fans out two
        /// follow-ups, recording everything it sees.
        struct Fan {
            seen: Vec<(u64, u32)>,
        }
        impl Handler<u32> for Fan {
            fn handle(&mut self, now: SimTime, e: u32, sched: &mut Scheduler<'_, u32>) {
                self.seen.push((now.as_nanos(), e));
                if e < 8 {
                    sched.after(SimDuration::from_secs(1), e * 2 + 1);
                    sched.after(SimDuration::from_secs(2), e * 2 + 2);
                }
            }
        }
        let run = |mut eng: Engine<u32>| {
            let mut h = Fan { seen: vec![] };
            eng.schedule_at(SimTime::ZERO, 0);
            eng.run_to_idle(&mut h, 1000);
            (h.seen, eng.processed(), eng.now(), eng.peak_pending())
        };
        let cold = run(Engine::new());
        let warm = run(Engine::with_capacity(cold.3));
        assert_eq!(warm, cold, "preallocation must not change behavior");

        let eng: Engine<u32> = Engine::with_capacity(32);
        assert!(eng.queue_capacity() >= 32);
    }

    #[test]
    fn empty_engine_is_idle() {
        let mut eng: Engine<()> = Engine::new();
        struct Nop;
        impl Handler<()> for Nop {
            fn handle(&mut self, _: SimTime, _: (), _: &mut Scheduler<'_, ()>) {}
        }
        assert_eq!(eng.run_to_idle(&mut Nop, 10), StepOutcome::Idle);
        assert_eq!(eng.now(), SimTime::ZERO);
    }
}
