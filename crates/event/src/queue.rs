//! A hierarchical timer wheel with a strict `(time, seq)` total order.
//!
//! # Why not a binary heap?
//!
//! The simulator's hot loop is push/pop on this queue — millions of events
//! per failover cell. A single global `BinaryHeap` pays `O(log n)` compares
//! (and cache misses) per operation at queue depths in the thousands. A
//! calendar/timer wheel files far-out events into coarse time buckets for
//! `O(1)` amortized insertion and only pays heap discipline for the handful
//! of events inside the *current* few-millisecond window.
//!
//! # Structure
//!
//! Two bucket levels plus two heaps:
//!
//! * **L0**: 1024 slots of 2^22 ns (≈4.2 ms) each — covers ≈4.3 s ahead.
//! * **L1**: 1024 slots of 2^32 ns (≈4.3 s) each — covers ≈73 min ahead.
//! * **overflow**: a min-heap for anything farther out (BGP timers never
//!   get here; `FAR_FUTURE` sentinels would).
//! * **ready**: a small min-heap holding events in the current L0 window
//!   *and* any event pushed at or before the cursor (handlers scheduling
//!   "now" land here directly).
//!
//! The cursor (`pos0`, an absolute L0 slot number — never wrapped, so there
//! is no ambiguity between wheel cycles) advances only when `ready` drains:
//! the next non-empty L0 slot is spilled into `ready`, L1 slots cascade into
//! L0 when the cursor crosses an L1 boundary, and overflow events are pulled
//! in once they fit the L1 horizon. Empty stretches are skipped a slot (or
//! an L1 boundary, or straight to the overflow minimum) at a time without
//! touching event data.
//!
//! # Determinism contract
//!
//! Ordering is **exactly** what the old heap provided and what the
//! reproduction's byte-identity gates rely on: strictly by `(time, seq)`,
//! where `seq` is the global insertion number — equal-time events pop FIFO.
//! Buckets never reorder anything: a slot is drained in its entirety into
//! the `ready` heap before any of its events pop, and the heap applies the
//! same `(time, seq)` key the old implementation used. Every event, near or
//! far, passes through `ready` exactly once; the win is that `ready` holds
//! tens of events instead of the whole queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 10;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot-index mask.
const MASK: u64 = (SLOTS as u64) - 1;
/// L0 granularity: events within the same 2^22 ns (≈4.2 ms) share a slot.
const S0: u32 = 22;
/// L1 granularity: 2^32 ns ≈ 4.3 s per slot.
const S1: u32 = S0 + SLOT_BITS;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// Index of the first set bit at or after `start` in a [`SLOTS`]-bit map.
fn next_occupied(words: &[u64; SLOTS / 64], start: usize) -> Option<usize> {
    let mut w = start >> 6;
    let mut word = words[w] & (!0u64 << (start & 63));
    loop {
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
        w += 1;
        if w == SLOTS / 64 {
            return None;
        }
        word = words[w];
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Payloads are never compared.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event queue: min by `(time, insertion seq)`, so
/// equal timestamps process FIFO. See the module docs for the wheel layout.
pub struct EventQueue<E> {
    /// Events at or before the cursor window, ordered by `(time, seq)`.
    ready: BinaryHeap<Entry<E>>,
    /// Fine level: slot `i & MASK` holds events with `at >> S0 == i`.
    l0: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over `l0` (bit `i` set ⇔ `l0[i]` non-empty), so the
    /// cursor can jump over empty stretches in a few word scans instead of
    /// stepping ~4.2 ms slots one by one (BGP delays are seconds apart).
    occ0: [u64; SLOTS / 64],
    /// Coarse level: slot `j & MASK` holds events with `at >> S1 == j`.
    l1: Vec<Vec<Entry<E>>>,
    /// Beyond the L1 horizon (> ≈73 min ahead of the cursor).
    overflow: BinaryHeap<Entry<E>>,
    /// Absolute L0 slot number of the current window (monotone, unwrapped).
    pos0: u64,
    count0: usize,
    count1: usize,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates a queue whose hot `ready` lane can hold `cap` events without
    /// reallocating. Callers that know a run's high-water mark (the
    /// experiment loop records one per cell) use this to avoid regrowth.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            ready: BinaryHeap::with_capacity(cap),
            l0: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ0: [0; SLOTS / 64],
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            pos0: 0,
            count0: 0,
            count1: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Events the hot `ready` lane can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.ready.capacity()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(Entry { at, seq, payload });
    }

    /// Files an entry into the right lane relative to the current cursor.
    /// Also used when cascading, which is why it never touches `len`/`seq`.
    fn place(&mut self, e: Entry<E>) {
        let idx0 = e.at.as_nanos() >> S0;
        if idx0 <= self.pos0 {
            // Current window, or scheduled at/before the cursor (handlers
            // pushing "now"): heap-ordered with whatever is already ready.
            self.ready.push(e);
        } else if idx0 - self.pos0 < SLOTS as u64 {
            let slot = (idx0 & MASK) as usize;
            self.l0[slot].push(e);
            self.occ0[slot >> 6] |= 1 << (slot & 63);
            self.count0 += 1;
        } else {
            let idx1 = e.at.as_nanos() >> S1;
            if idx1 - (self.pos0 >> SLOT_BITS) < SLOTS as u64 {
                self.l1[(idx1 & MASK) as usize].push(e);
                self.count1 += 1;
            } else {
                self.overflow.push(e);
            }
        }
    }

    /// Advances the cursor until `ready` holds the globally earliest event
    /// (or the queue is empty). Each event moves between lanes at most a
    /// constant number of times over its lifetime, and empty slots are
    /// skipped without touching event data.
    fn refill(&mut self) {
        while self.ready.is_empty() && self.len > 0 {
            if self.count0 > 0 {
                // Jump to the next occupied L0 slot, stopping at the L1
                // boundary (which must cascade before the next block's
                // occupancy is known). Identical slot-visit order to
                // stepping one slot at a time — the skipped slots are
                // empty by the bitmap invariant.
                let first = ((self.pos0 + 1) & MASK) as usize;
                let bit = if (self.pos0 & MASK) == MASK {
                    None // cursor sits on the boundary slot already
                } else {
                    next_occupied(&self.occ0, first)
                };
                match bit {
                    Some(slot) => {
                        self.pos0 = (self.pos0 & !MASK) + slot as u64;
                        self.drain_l0_slot(slot);
                    }
                    None => {
                        // Nothing left in this block: cross into the next
                        // one, then take its slot 0 if occupied (events can
                        // be filed there before the cursor arrives).
                        self.pos0 = (self.pos0 | MASK) + 1;
                        self.cascade();
                        if self.occ0[0] & 1 != 0 {
                            self.drain_l0_slot(0);
                        }
                    }
                }
            } else if self.count1 > 0 {
                // Nothing within the L0 horizon: jump to the next L1
                // boundary and cascade that slot.
                self.pos0 = (self.pos0 | MASK) + 1;
                self.cascade();
            } else {
                // Only overflow events remain: jump the cursor straight to
                // the earliest one (safe — every nearer lane is empty).
                let at = self.overflow.peek().expect("len>0 with empty lanes").at;
                self.pos0 = at.as_nanos() >> S0;
                self.pull_overflow();
            }
        }
    }

    /// Moves every event in L0 slot `slot` into `ready`, maintaining the
    /// occupancy bitmap and count.
    fn drain_l0_slot(&mut self, slot: usize) {
        let bucket = &mut self.l0[slot];
        self.count0 -= bucket.len();
        self.occ0[slot >> 6] &= !(1 << (slot & 63));
        self.ready.extend(bucket.drain(..));
    }

    /// Spills the L1 slot the cursor just entered down into L0/ready, and
    /// pulls overflow events that now fit the L1 horizon.
    fn cascade(&mut self) {
        let pos1 = self.pos0 >> SLOT_BITS;
        let slot = std::mem::take(&mut self.l1[(pos1 & MASK) as usize]);
        self.count1 -= slot.len();
        for e in slot {
            self.place(e);
        }
        self.pull_overflow();
    }

    fn pull_overflow(&mut self) {
        let pos1 = self.pos0 >> SLOT_BITS;
        while let Some(top) = self.overflow.peek() {
            let idx1 = top.at.as_nanos() >> S1;
            if idx1 <= pos1 || idx1 - pos1 < SLOTS as u64 {
                let e = self.overflow.pop().expect("peeked non-empty");
                self.place(e);
            } else {
                break;
            }
        }
    }

    /// Removes and returns the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.refill();
        self.ready.pop().map(|e| {
            self.len -= 1;
            (e.at, e.payload)
        })
    }

    /// Pops the earliest event only if it is scheduled exactly at `t`.
    ///
    /// Used by the engine to drain a same-timestamp run in one wakeup
    /// without re-checking deadlines per event. Once the cursor has reached
    /// `t`, every remaining event at `t` is in the ready lane (slots are
    /// drained whole, and later pushes at `t` file as "at/before cursor"),
    /// so the hot path skips the refill entirely.
    pub fn pop_if_at(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.ready.is_empty() {
            self.refill();
        }
        if self.ready.peek()?.at != t {
            return None;
        }
        self.pop()
    }

    /// The timestamp of the earliest event, if any. Advances the internal
    /// cursor (never the event order), hence `&mut`.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.refill();
        self.ready.peek().map(|e| e.at)
    }

    /// Drops all pending events. The cursor keeps its position so time
    /// stays monotone for the owning engine.
    pub fn clear(&mut self) {
        self.ready.clear();
        self.overflow.clear();
        if self.count0 > 0 {
            for slot in &mut self.l0 {
                slot.clear();
            }
        }
        self.occ0 = [0; SLOTS / 64];
        if self.count1 > 0 {
            for slot in &mut self.l1 {
                slot.clear();
            }
        }
        self.count0 = 0;
        self.count1 = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)), "FIFO broken at {i}");
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), "late");
        q.push(t(5), "mid");
        assert_eq!(q.pop(), Some((t(5), "mid")));
        // Push earlier than an already-popped time region: still fine,
        // the queue orders purely by (time, seq) among what remains.
        q.push(t(1), "early-but-late-push");
        assert_eq!(q.pop(), Some((t(1), "early-but-late-push")));
        assert_eq!(q.pop(), Some((t(10), "late")));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(2), "x");
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "x")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn with_capacity_preallocates_without_changing_order() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        q.push(t(2), "b");
        q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        q.push(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_different_batches_fifo() {
        let mut q = EventQueue::new();
        q.push(t(1), "first");
        assert_eq!(q.pop(), Some((t(1), "first")));
        q.push(t(1), "second");
        q.push(t(1), "third");
        assert_eq!(q.pop(), Some((t(1), "second")));
        assert_eq!(q.pop(), Some((t(1), "third")));
    }

    #[test]
    fn spans_all_wheel_levels() {
        // One event per lane: ready-window, L0, L1, overflow, FAR_FUTURE.
        let mut q = EventQueue::new();
        q.push(SimTime::FAR_FUTURE, "sentinel");
        q.push(SimTime::from_nanos(1), "now-ish");
        q.push(SimTime::from_nanos(50 << S0), "l0");
        q.push(t(60), "l1");
        q.push(t(2 * 3600), "overflow");
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "now-ish")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(50 << S0), "l0")));
        assert_eq!(q.pop(), Some((t(60), "l1")));
        assert_eq!(q.pop(), Some((t(2 * 3600), "overflow")));
        assert_eq!(q.pop(), Some((SimTime::FAR_FUTURE, "sentinel")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_behind_cursor_after_long_jump_still_orders() {
        // Drain past a long empty stretch (cursor jumps), then push events
        // earlier than the cursor: they must still pop in (time, seq) order.
        let mut q = EventQueue::new();
        q.push(t(3600), "far");
        assert_eq!(q.peek_time(), Some(t(3600)));
        q.push(t(1), "a");
        q.push(t(1), "b");
        q.push(t(2), "c");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(1), "b")));
        assert_eq!(q.pop(), Some((t(2), "c")));
        assert_eq!(q.pop(), Some((t(3600), "far")));
    }

    #[test]
    fn cascade_preserves_fifo_within_coarse_slot() {
        // Two same-time events far enough out to land in L1 together must
        // still pop FIFO after cascading through L0.
        let mut q = EventQueue::new();
        let far = SimTime::from_nanos((5u64 << S1) + 12345);
        q.push(far, "first");
        q.push(far, "second");
        q.push(SimTime::from_nanos(10), "near");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "near")));
        assert_eq!(q.pop(), Some((far, "first")));
        assert_eq!(q.pop(), Some((far, "second")));
    }

    #[test]
    fn pop_if_at_only_takes_matching_time() {
        let mut q = EventQueue::new();
        q.push(t(1), "a");
        q.push(t(1), "b");
        q.push(t(2), "c");
        assert_eq!(q.peek_time(), Some(t(1)));
        assert_eq!(q.pop_if_at(t(1)), Some((t(1), "a")));
        assert_eq!(q.pop_if_at(t(1)), Some((t(1), "b")));
        assert_eq!(q.pop_if_at(t(1)), None, "next event is at t=2");
        assert_eq!(q.pop_if_at(t(2)), Some((t(2), "c")));
        assert_eq!(q.pop_if_at(t(2)), None);
    }

    #[test]
    fn dense_random_workload_matches_reference_sort() {
        // Deterministic pseudo-random times across all wheel levels,
        // compared against a stable sort by (time, insertion index).
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, usize)> = Vec::new();
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for i in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Bias towards small times, but cover L1/overflow too.
            let ns = match i % 7 {
                0 => x % (1 << S0),               // current window
                1..=4 => x % (1 << (S1 - 1)),     // L0 span
                5 => x % (1 << (S1 + SLOT_BITS)), // L1 span
                _ => x % (1 << 45),               // overflow
            };
            q.push(SimTime::from_nanos(ns), i);
            expect.push((ns, i));
        }
        expect.sort_by_key(|&(ns, i)| (ns, i));
        for &(ns, i) in &expect {
            assert_eq!(q.pop(), Some((SimTime::from_nanos(ns), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn l0_slot_edges_keep_order_and_fifo() {
        // Events exactly on L0 slot boundaries (multiples of 2^22 ns), one
        // nanosecond before, and one after. Slot membership is `at >> S0`,
        // so `k<<S0` and `(k<<S0)+1` share slot `k` while `(k<<S0)-1` lives
        // in slot `k-1`; order must come out strictly by (time, seq) anyway.
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, usize)> = Vec::new();
        let mut id = 0usize;
        for k in [1u64, 2, 511, 512, 1023] {
            let edge = k << S0;
            for ns in [edge - 1, edge, edge + 1, edge] {
                q.push(SimTime::from_nanos(ns), id);
                expect.push((ns, id));
                id += 1;
            }
        }
        expect.sort_by_key(|&(ns, i)| (ns, i));
        for &(ns, i) in &expect {
            assert_eq!(q.pop(), Some((SimTime::from_nanos(ns), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn l0_horizon_edge_routes_to_l1_and_back() {
        // From a fresh cursor (pos0 = 0) the L0 horizon ends at slot 1023:
        // `1023 << S0` is the last L0-filed time and `1024 << S0` (= 1 << S1,
        // the first L1 boundary) must file into L1, then cascade into L0 when
        // the cursor crosses the block boundary. Pin both sides of the edge
        // plus a same-time pair straddling the cascade.
        let mut q = EventQueue::new();
        let last_l0 = (SLOTS as u64 - 1) << S0;
        let first_l1 = 1u64 << S1;
        q.push(SimTime::from_nanos(first_l1), "l1-edge-a");
        q.push(SimTime::from_nanos(last_l0), "l0-edge");
        q.push(SimTime::from_nanos(first_l1), "l1-edge-b");
        q.push(SimTime::from_nanos(first_l1 + 1), "l1-edge-next");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(last_l0), "l0-edge")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(first_l1), "l1-edge-a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(first_l1), "l1-edge-b")));
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos(first_l1 + 1), "l1-edge-next"))
        );
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_promotes_through_l1_without_reordering() {
        // An event beyond the L1 horizon (≥ 1024·2^32 ns ≈ 73 min) starts in
        // the overflow heap. Draining nearer events advances the cursor until
        // `pull_overflow` promotes it into L1, then `cascade` moves it into
        // L0/ready. Two same-time overflow events must survive both
        // promotions in FIFO order.
        let mut q = EventQueue::new();
        let beyond = (SLOTS as u64) << S1; // first time outside the L1 horizon
        q.push(SimTime::from_nanos(beyond + 7), "ovf-first".to_string());
        q.push(SimTime::from_nanos(beyond + 7), "ovf-second".to_string());
        q.push(SimTime::from_nanos(beyond), "ovf-edge".to_string());
        // A ladder of nearer events spread across L0 and L1, so the cursor
        // walks (not teleports) toward the overflow region and exercises the
        // cascade path, not the only-overflow jump in `refill`.
        for k in 0..8u64 {
            q.push(
                SimTime::from_nanos((k + 1) << (S1 - 1)),
                format!("rung-{k}"),
            );
        }
        for k in 0..8u64 {
            assert_eq!(
                q.pop(),
                Some((
                    SimTime::from_nanos((k + 1) << (S1 - 1)),
                    format!("rung-{k}")
                ))
            );
        }
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos(beyond), "ovf-edge".to_string()))
        );
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos(beyond + 7), "ovf-first".to_string()))
        );
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos(beyond + 7), "ovf-second".to_string()))
        );
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn only_overflow_jump_lands_exactly_on_the_minimum() {
        // When every nearer lane is empty, `refill` teleports the cursor to
        // the overflow minimum's slot. Later pushes earlier than that cursor
        // must still pop first (they file into `ready` as at/before-cursor).
        let mut q = EventQueue::new();
        let far = ((SLOTS as u64) + 3) << S1;
        q.push(SimTime::from_nanos(far), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(far)));
        q.push(SimTime::from_nanos(far - 1), "now-earlier");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far - 1), "now-earlier")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_if_at_drains_tie_run_across_wheel_rollover() {
        // A same-timestamp run filed more than one full L0 wheel revolution
        // ahead (so the batch sits in L1 until the cursor rolls the L0 block
        // over and cascades). `pop_if_at` must drain the whole run FIFO,
        // including members pushed *during* the drain, and refuse the next
        // distinct timestamp.
        let mut q = EventQueue::new();
        let rollover = SimTime::from_nanos((SLOTS as u64 + 5) << S0);
        for i in 0..16 {
            q.push(rollover, i);
        }
        q.push(SimTime::from_nanos(40 << S0), -1); // nearer event, pops first
        q.push(SimTime::from_nanos((SLOTS as u64 + 9) << S0), 99); // next slot over
        assert_eq!(q.pop(), Some((SimTime::from_nanos(40 << S0), -1)));
        for i in 0..16 {
            assert_eq!(q.pop_if_at(rollover), Some((rollover, i)), "tie run at {i}");
            if i == 7 {
                // A handler scheduling "now" mid-run joins the same batch.
                q.push(rollover, 50);
            }
        }
        assert_eq!(q.pop_if_at(rollover), Some((rollover, 50)));
        assert_eq!(q.pop_if_at(rollover), None, "run exhausted");
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos((SLOTS as u64 + 9) << S0), 99))
        );
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_drain_and_push_matches_reference() {
        // Alternate pushes and pops; remaining events must always pop in
        // (time, seq) order even as the cursor advances mid-stream.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut seq = 0usize;
        let mut pending: Vec<(u64, usize)> = Vec::new();
        let mut popped: Vec<(u64, usize)> = Vec::new();
        let mut clock = 0u64;
        for round in 0..200 {
            for _ in 0..(round % 5) + 1 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let ns = clock + x % SimDuration::from_secs(20).as_nanos();
                q.push(SimTime::from_nanos(ns), seq);
                pending.push((ns, seq));
                seq += 1;
            }
            for _ in 0..(round % 3) + 1 {
                if let Some((at, id)) = q.pop() {
                    clock = at.as_nanos();
                    popped.push((clock, id));
                }
            }
        }
        while let Some((at, id)) = q.pop() {
            popped.push((at.as_nanos(), id));
        }
        pending.sort_by_key(|&(ns, i)| (ns, i));
        assert_eq!(popped, pending);
    }
}
