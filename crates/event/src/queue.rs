//! The event queue: a priority queue ordered by `(time, sequence)`.
//!
//! The sequence number makes ordering *total*: two events scheduled for the
//! same instant pop in the order they were pushed. Without this, BGP message
//! processing order would depend on `BinaryHeap` internals and runs would
//! not be reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// A queue with room for `cap` events before the heap reallocates.
    /// Capacity is invisible to ordering — callers feed a previous run's
    /// high-water mark (e.g. [`Engine::peak_pending`]) to skip the doubling
    /// growth of a cold heap.
    ///
    /// [`Engine::peak_pending`]: crate::Engine::peak_pending
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `payload` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(5), 5);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 5)));
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(7), 7);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), 7)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 10)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn with_capacity_preallocates_without_changing_order() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_different_batches_fifo() {
        // Events pushed at the same instant across separate pushes (e.g.
        // updates fanned out to many neighbors) keep push order.
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(42);
        q.push(t, "first");
        q.push(SimTime::from_secs(1), "later");
        q.push(t, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "later");
    }
}
