//! Named deterministic RNG streams.
//!
//! Every stochastic quantity in the simulator (MRAI draws, processing
//! delays, topology wiring, target sampling, TTL-violation overshoots) pulls
//! from its own stream, derived from `(master seed, purpose string, entity
//! id)` by a splitmix-style hash. Two properties matter:
//!
//! 1. **Reproducibility** — the same config and seed produce bit-identical
//!    runs.
//! 2. **Stability under extension** — adding a new consumer creates a new
//!    stream instead of shifting draws inside existing ones, so calibrated
//!    experiments do not silently change when unrelated code gains a random
//!    choice.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives independent [`SmallRng`] streams from a master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    master: u64,
}

/// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a, then mixed; only needs to separate the handful of purpose
    // strings used in the codebase.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix(h)
}

impl RngFactory {
    /// A factory rooted at `seed`.
    pub fn new(seed: u64) -> RngFactory {
        RngFactory { master: mix(seed) }
    }

    /// The stream for `(purpose, id)`; e.g. `("mrai", session_index)`.
    pub fn stream(&self, purpose: &str, id: u64) -> SmallRng {
        let s = self
            .master
            .wrapping_add(hash_str(purpose))
            .wrapping_add(mix(id.wrapping_mul(0x2545_f491_4f6c_dd1d)));
        SmallRng::seed_from_u64(mix(s))
    }

    /// Convenience: a single draw of a uniform value in `[lo, hi)` from the
    /// named stream. For one-shot jitter where holding an RNG is noise.
    pub fn uniform_f64(&self, purpose: &str, id: u64, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        self.stream(purpose, id).gen_range(lo..hi)
    }

    /// A sub-factory, e.g. per experiment repetition. Streams under
    /// different sub-factories are independent.
    pub fn derive(&self, purpose: &str, id: u64) -> RngFactory {
        RngFactory {
            master: mix(self.master ^ hash_str(purpose) ^ mix(id)),
        }
    }
}

/// Samples a lognormal with the given *median* and sigma (of the underlying
/// normal). Used for heavy-tailed delays: BGP update batching/processing,
/// and DNS TTL-violation overshoot (Allman '20 reports a *median* of 890 s,
/// which is why the parameterization is by median, not mean).
pub fn lognormal(rng: &mut SmallRng, median: f64, sigma: f64) -> f64 {
    debug_assert!(median > 0.0 && sigma >= 0.0);
    // Box-Muller from two uniforms; SmallRng has no normal distribution
    // built in and we avoid extra dependencies.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_stream() {
        let f = RngFactory::new(42);
        let a: Vec<u32> = (0..8).map(|_| f.stream("x", 1).gen()).collect();
        let b: Vec<u32> = (0..8).map(|_| f.stream("x", 1).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_ids_different_streams() {
        let f = RngFactory::new(42);
        let a: u64 = f.stream("x", 1).gen();
        let b: u64 = f.stream("x", 2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_purposes_different_streams() {
        let f = RngFactory::new(42);
        let a: u64 = f.stream("mrai", 7).gen();
        let b: u64 = f.stream("proc", 7).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_different_streams() {
        let a: u64 = RngFactory::new(1).stream("x", 0).gen();
        let b: u64 = RngFactory::new(2).stream("x", 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_isolates_subfactories() {
        let f = RngFactory::new(9);
        let a: u64 = f.derive("rep", 0).stream("x", 0).gen();
        let b: u64 = f.derive("rep", 1).stream("x", 0).gen();
        assert_ne!(a, b);
        // And deriving is itself deterministic.
        let a2: u64 = f.derive("rep", 0).stream("x", 0).gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn uniform_respects_bounds() {
        let f = RngFactory::new(3);
        for id in 0..200 {
            let v = f.uniform_f64("u", id, 10.0, 40.0);
            assert!((10.0..40.0).contains(&v), "{v}");
        }
        assert_eq!(f.uniform_f64("u", 0, 5.0, 5.0), 5.0);
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut rng = RngFactory::new(11).stream("ln", 0);
        let mut samples: Vec<f64> = (0..4001).map(|_| lognormal(&mut rng, 890.0, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        // Sampling error tolerance ~ ±15%.
        assert!((750.0..1030.0).contains(&median), "median {median}");
        assert!(samples.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let mut rng = RngFactory::new(11).stream("ln", 1);
        for _ in 0..10 {
            assert_eq!(lognormal(&mut rng, 3.0, 0.0), 3.0);
        }
    }
}
