//! Simulated time.
//!
//! Time is a count of nanoseconds since the start of the run, wide enough
//! for the paper's longest windows (600 s probing, 1000 s convergence
//! windows, multi-day visibility aggregation) with room to spare
//! (`u64` nanoseconds ≈ 584 years).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A duration in simulated time (nanosecond resolution).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds. Panics on negative or
    /// non-finite input — durations never run backwards.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An instant in simulated time: nanoseconds since run start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event the simulator will ever schedule.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is later than
    /// `self` — a reversed subtraction is always a simulation bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later time"),
        )
    }

    /// `self - earlier` if non-negative, else `None`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(t.since(SimTime::from_secs(4)), SimDuration::from_secs(6));
        assert_eq!(
            SimDuration::from_secs(3) + SimDuration::from_secs(4),
            SimDuration::from_secs(7)
        );
        assert_eq!(
            SimDuration::from_secs(4) - SimDuration::from_secs(3),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    #[should_panic(expected = "later time")]
    fn reversed_since_panics() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn checked_since_returns_none_when_reversed() {
        assert_eq!(
            SimTime::from_secs(1).checked_since(SimTime::from_secs(2)),
            None
        );
        assert_eq!(
            SimTime::from_secs(2).checked_since(SimTime::from_secs(1)),
            Some(SimDuration::from_secs(1))
        );
    }

    #[test]
    fn far_future_saturates() {
        let t = SimTime::FAR_FUTURE + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::FAR_FUTURE);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.000s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_secs(3).to_string(), "t=3.000s");
    }

    #[test]
    fn conversions() {
        let d = SimDuration::from_millis(1234);
        assert_eq!(d.as_millis(), 1234);
        assert_eq!(d.as_secs(), 1);
        assert!((d.as_secs_f64() - 1.234).abs() < 1e-12);
        assert_eq!(d.saturating_mul(2), SimDuration::from_millis(2468));
        assert_eq!(
            SimDuration::from_nanos(u64::MAX / 2).saturating_mul(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
    }
}
