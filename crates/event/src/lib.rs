//! # bobw-event
//!
//! A deterministic discrete-event simulation kernel.
//!
//! Everything in the *Best of Both Worlds* reproduction — BGP message
//! delivery, per-router processing delays, MRAI timer expiry, probe
//! transmissions, probe responses, DNS re-queries, site failures — is an
//! event in a single totally-ordered queue. That one queue is what lets the
//! data plane observe the control plane *mid-convergence*, which is the crux
//! of every experiment in the paper (a ping either reaches a site or dies at
//! a router whose FIB has not converged yet, at a specific simulated
//! instant).
//!
//! Determinism rules enforced here:
//!
//! * Time is simulated ([`SimTime`], nanosecond ticks); there is no wall
//!   clock anywhere.
//! * Ties in the queue break by insertion sequence number, so identical
//!   timestamps process FIFO ([`EventQueue`]).
//! * All randomness flows from named streams derived from a single seed
//!   ([`rng::RngFactory`]), so runs are bit-reproducible and adding a new
//!   consumer does not perturb existing streams.

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::{Engine, Handler, Scheduler, StepOutcome};
pub use queue::EventQueue;
pub use rng::RngFactory;
pub use time::{SimDuration, SimTime};
