//! Property tests for the core crate's pure logic: the §5.4.1 metric
//! extraction and the Table-2 rubric, under arbitrary inputs.

use bobw_core::{analyze_target, derive_tradeoffs, MeasuredTechnique, Rating, Technique};
use bobw_dataplane::{ProbeOutcome, ProbeRecord};
use bobw_event::SimTime;
use bobw_topology::SiteId;
use proptest::prelude::*;

/// Arbitrary probe record streams: per probe, either lost or received at
/// one of 4 sites with a small arrival delay.
fn arb_records() -> impl Strategy<Value = Vec<ProbeRecord>> {
    proptest::collection::vec(
        prop_oneof![
            Just(None),
            (0u8..4, 0u64..3).prop_map(|(site, delay)| Some((site, delay))),
        ],
        0..60,
    )
    .prop_map(|outcomes| {
        outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                let sent = SimTime::from_secs(100 + 2 * i as u64);
                ProbeRecord {
                    seq: i as u32,
                    sent,
                    outcome: match o {
                        None => ProbeOutcome::Lost,
                        Some((site, delay)) => ProbeOutcome::Received {
                            site: SiteId(site),
                            at: sent + bobw_event::SimDuration::from_secs(delay),
                        },
                    },
                }
            })
            .collect()
    })
}

const T_FAIL: SimTime = SimTime::from_secs(100);

proptest! {
    /// Invariants of the metric extraction, for any probe stream:
    /// reconnection ≤ failover, failover implies a final site, the final
    /// site matches the last received record, and bounce/loss counters are
    /// bounded by the record count.
    #[test]
    fn metric_invariants(records in arb_records()) {
        let o = analyze_target(&records, T_FAIL);
        if let (Some(r), Some(f)) = (o.reconnection, o.failover) {
            prop_assert!(r <= f, "reconnection {r} > failover {f}");
        }
        if o.failover.is_some() {
            prop_assert!(o.reconnection.is_some());
            prop_assert!(o.final_site.is_some());
        }
        match records.last().map(|r| r.outcome) {
            Some(ProbeOutcome::Received { site, .. }) => {
                prop_assert_eq!(o.final_site, Some(site));
                // A stream ending in a reply always stabilizes (at worst on
                // the very last probe).
                prop_assert!(o.failover.is_some());
            }
            _ => {
                prop_assert_eq!(o.final_site, None);
                prop_assert!(o.failover.is_none());
            }
        }
        let received = records
            .iter()
            .filter(|r| matches!(r.outcome, ProbeOutcome::Received { .. }))
            .count();
        prop_assert!(o.bounces as usize <= received.saturating_sub(1));
        prop_assert!(o.losses_after_reconnect as usize <= records.len());
        if received == 0 {
            prop_assert_eq!(o.reconnection, None);
        } else {
            prop_assert!(o.reconnection.is_some());
        }
    }

    /// The failover instant marks a genuinely stable suffix: re-analyzing
    /// only the records from the stable suffix onward yields zero bounces.
    #[test]
    fn failover_suffix_is_stable(records in arb_records()) {
        let o = analyze_target(&records, T_FAIL);
        if o.failover.is_none() {
            return Ok(());
        }
        // Find the suffix start: last run of identical Received sites.
        let last_site = o.final_site.expect("failover implies final site");
        let mut start = records.len();
        for i in (0..records.len()).rev() {
            match records[i].outcome {
                ProbeOutcome::Received { site, .. } if site == last_site => start = i,
                _ => break,
            }
        }
        let suffix = &records[start..];
        let o2 = analyze_target(suffix, T_FAIL);
        prop_assert_eq!(o2.bounces, 0);
        prop_assert_eq!(o2.losses_after_reconnect, 0);
        prop_assert_eq!(o2.final_site, Some(last_site));
    }

    /// Table-2 rubric sanity for arbitrary measured inputs: ratings are
    /// monotone in their inputs.
    #[test]
    fn tradeoff_rubric_monotone(
        control in 0.0f64..=1.0,
        failover in 0.1f64..1000.0,
        anycast in 1.0f64..100.0,
    ) {
        let mk = |c: f64, f: Option<f64>| MeasuredTechnique {
            technique: Technique::Anycast,
            control_fraction: c,
            failover_median_s: f,
        };
        let rows = derive_tradeoffs(
            &[mk(control, Some(failover)), mk(control, None)],
            anycast,
        );
        // DNS-bound availability is always Low; BGP-bound never Low.
        prop_assert_ne!(rows[0].availability, Rating::Low);
        prop_assert_eq!(rows[1].availability, Rating::Low);
        // Faster-than-anycast failover is always High.
        if failover <= anycast {
            prop_assert_eq!(rows[0].availability, Rating::High);
        }
        // Control rating brackets.
        match rows[0].control {
            Rating::High => prop_assert!(control >= 0.99),
            Rating::Low => prop_assert!(control <= 0.05),
            Rating::Medium => prop_assert!(control > 0.05 && control < 0.99),
        }
    }
}
