//! Integration tests for the two fault-injection knobs of
//! [`ExperimentConfig`]: a botched reactive reconfiguration
//! (`reaction_fault`, the §4/§7 "risk" of reactive-anycast made
//! measurable) and a silent site crash (`failure_mode`, where neighbors
//! must discover the failure via the BGP hold timer instead of receiving
//! withdrawals).

use bobw_core::{
    run_failover, ExperimentConfig, FailoverResult, FailureMode, ReactionFault, Technique, Testbed,
};
use bobw_event::SimDuration;

fn config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(seed);
    cfg.targets_per_site = 60;
    cfg.probe.duration = SimDuration::from_secs(240);
    cfg
}

fn never_reconnected(r: &FailoverResult) -> usize {
    r.outcomes
        .iter()
        .filter(|o| o.reconnection.is_none())
        .count()
}

#[test]
fn skip_sites_degrades_failover_monotonically() {
    // Partial rollout: the first n backup sites never get the reactive
    // configuration. The more sites the automation skips, the more targets
    // are stranded; skipping every site strands (almost) everyone, because
    // only the faulty reaction would have re-announced the specific prefix.
    let mut stranded = Vec::new();
    for n in [0usize, 3, 7] {
        let mut cfg = config(21);
        cfg.reaction_fault = (n > 0).then_some(ReactionFault::SkipSites(n));
        let tb = Testbed::new(cfg);
        let r = run_failover(&tb, &Technique::ReactiveAnycast, tb.site("bos"));
        assert!(r.num_controllable > 0);
        stranded.push(never_reconnected(&r));
    }
    let (clean, partial, total) = (stranded[0], stranded[1], stranded[2]);
    assert!(
        partial >= clean,
        "skipping sites must not improve failover ({partial} < {clean})"
    );
    assert!(
        total > partial,
        "skipping all sites ({total}) must strand more targets than skipping 3 ({partial})"
    );
}

#[test]
fn wrong_prefix_typo_slows_failover_to_withdrawal_convergence() {
    // The Amazon-typo class of outage: every backup site announces the
    // *covering* prefix instead of the failed site's specific one.
    // Longest-prefix match keeps clients on the (dead) specific route
    // until its withdrawal converges — so instead of reactive-anycast's
    // fast failover, clients crawl back at proactive-superprefix speed.
    let clean_tb = Testbed::new(config(22));
    let clean = run_failover(&clean_tb, &Technique::ReactiveAnycast, clean_tb.site("bos"));

    let mut cfg = config(22);
    cfg.reaction_fault = Some(ReactionFault::WrongPrefix);
    let tb = Testbed::new(cfg);
    let typo = run_failover(&tb, &Technique::ReactiveAnycast, tb.site("bos"));

    assert_eq!(clean.num_controllable, typo.num_controllable);
    assert!(
        never_reconnected(&typo) >= never_reconnected(&clean),
        "the typo must not save targets the clean reaction loses"
    );
    let median = |r: &FailoverResult| {
        let mut v = r.failover_secs();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (fast, slow) = (median(&clean), median(&typo));
    assert!(
        slow > 2.0 * fast,
        "wrong-prefix failover ({slow:.1}s) should be withdrawal-convergence \
         slow vs the clean reaction ({fast:.1}s)"
    );
}

#[test]
fn silent_crash_converges_only_after_hold_timer() {
    // Under a silent crash nothing is withdrawn: each neighbor discovers
    // the failure only when its hold timer expires, so no anycast target
    // can reconnect before `hold_time_s`. A graceful withdrawal at the
    // same seed reconnects well before that.
    let hold_s = 90.0;
    let mk = |mode: FailureMode| {
        let mut cfg = config(23);
        cfg.failure_mode = mode;
        cfg.timing.hold_time_s = hold_s;
        let tb = Testbed::new(cfg);
        run_failover(&tb, &Technique::Anycast, tb.site("slc"))
    };
    let graceful = mk(FailureMode::GracefulWithdrawal);
    let crash = mk(FailureMode::SilentCrash);

    let crash_recons: Vec<f64> = crash.reconnection_secs();
    assert!(
        !crash_recons.is_empty(),
        "some targets must still fail over"
    );
    let earliest_crash = crash_recons.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        earliest_crash >= hold_s,
        "a target reconnected after {earliest_crash:.1}s, before the {hold_s}s hold timer"
    );

    let graceful_recons = graceful.reconnection_secs();
    assert!(!graceful_recons.is_empty());
    let earliest_graceful = graceful_recons
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(
        earliest_graceful < hold_s,
        "graceful withdrawal should beat the hold timer (earliest {earliest_graceful:.1}s)"
    );
}

#[test]
fn bfd_style_detection_restores_fast_crash_failover() {
    // With a sub-second hold timer (BFD-style liveness detection) the
    // silent crash stops being special: reconnection times drop from the
    // hold-timer plateau back to withdrawal-convergence territory.
    let mk = |hold_s: f64| {
        let mut cfg = config(24);
        cfg.failure_mode = FailureMode::SilentCrash;
        cfg.timing.hold_time_s = hold_s;
        let tb = Testbed::new(cfg);
        let r = run_failover(&tb, &Technique::Anycast, tb.site("msn"));
        let recons = r.reconnection_secs();
        assert!(!recons.is_empty());
        recons.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    let slow = mk(90.0);
    let fast = mk(0.5);
    assert!(slow >= 90.0);
    assert!(
        fast < slow / 2.0,
        "BFD-style detection (earliest {fast:.1}s) should be far faster than \
         hold-timer discovery (earliest {slow:.1}s)"
    );
}
