//! Traffic-control measurement (Table 1).
//!
//! For each site, the paper reports (a) the percentage of its ≤50 ms
//! targets that anycast routes to a *different* site, and (b) of those, the
//! percentage `proactive-prepending` can steer to the site when the backup
//! sites prepend 3 or 5 times. (Targets anycast already routes to the site
//! can trivially be steered by any technique — §5.1.)

use bobw_bgp::{OriginConfig, Standalone};
use bobw_dataplane::{catchment, rtt_to_site, ForwardEnv};
use bobw_event::SimDuration;
use bobw_net::NodeId;
use bobw_topology::SiteId;
use serde::{Deserialize, Serialize};

use crate::experiment::{CellPerf, Testbed};
use crate::technique::Technique;

/// Table 1 numbers for one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControlResult {
    pub site_name: String,
    pub site: SiteId,
    /// Clients within the proximity criterion.
    pub num_near: usize,
    /// Of the near clients, the fraction anycast routes to a different
    /// site (Table 1's second row).
    pub frac_not_anycast_routed: f64,
    /// Per prepend count: of the not-anycast-routed near clients, the
    /// fraction steered to this site by proactive-prepending.
    pub steered: Vec<(u8, f64)>,
}

/// Measures Table 1 for one site across the given prepend counts.
pub fn measure_control(testbed: &Testbed, site: SiteId, prepend_counts: &[u8]) -> ControlResult {
    measure_control_instrumented(testbed, site, prepend_counts).0
}

/// [`measure_control`] plus the cell's perf counters (event count, peak
/// queue depth, wall time) — the control-cell analogue of
/// `run_failover_instrumented`, so Table 1 cells show up in `PerfLog` and
/// can be dispatched to distributed workers.
pub fn measure_control_instrumented(
    testbed: &Testbed,
    site: SiteId,
    prepend_counts: &[u8],
) -> (ControlResult, CellPerf) {
    let wall_start = std::time::Instant::now();
    let cfg = &testbed.cfg;
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let plan = &cfg.plan;
    let site_node = cdn.node(site);

    let mut sim = Standalone::with_queue_capacity(
        topo,
        cfg.timing.clone(),
        &testbed.rng,
        testbed.queue_capacity_hint(),
    );
    // Measurement prefixes: unicast RTT probe from the site, anycast probe
    // from every site.
    sim.announce(site_node, plan.rtt_probe, OriginConfig::plain());
    for s in cdn.sites() {
        sim.announce(cdn.node(s), plan.anycast_probe, OriginConfig::plain());
    }
    sim.run_to_idle(cfg.max_events);

    // Near clients and their anycast catchment.
    let max_rtt = SimDuration::from_secs_f64(cfg.proximity_ms / 1000.0);
    let (near, not_anycast): (Vec<NodeId>, Vec<NodeId>) = {
        let env = ForwardEnv {
            topo,
            bgp: sim.sim(),
            down: &[],
        };
        let near: Vec<NodeId> = topo
            .client_nodes()
            .filter(|c| matches!(rtt_to_site(&env, *c, plan.rtt_addr()), Some(r) if r <= max_rtt))
            .collect();
        let not_anycast = near
            .iter()
            .copied()
            .filter(|c| catchment(&env, cdn, *c, plan.anycast_addr()) != Some(site))
            .collect();
        (near, not_anycast)
    };

    let frac_not_anycast_routed = if near.is_empty() {
        0.0
    } else {
        not_anycast.len() as f64 / near.len() as f64
    };

    // For each prepend count: announce the specific prefix plain at the
    // site, prepended elsewhere, converge, and count steered targets.
    let mut steered = Vec::with_capacity(prepend_counts.len());
    for &k in prepend_counts {
        let t = Technique::ProactivePrepending {
            prepends: k,
            selective: false,
        };
        for a in t.before(plan, topo, cdn, site) {
            sim.announce(a.node, a.prefix, a.cfg);
        }
        sim.run_to_idle(cfg.max_events);
        let frac = {
            let env = ForwardEnv {
                topo,
                bgp: sim.sim(),
                down: &[],
            };
            if not_anycast.is_empty() {
                0.0
            } else {
                not_anycast
                    .iter()
                    .filter(|c| catchment(&env, cdn, **c, plan.probe_addr()) == Some(site))
                    .count() as f64
                    / not_anycast.len() as f64
            }
        };
        steered.push((k, frac));
    }

    let result = ControlResult {
        site_name: cdn.name(site).to_string(),
        site,
        num_near: near.len(),
        frac_not_anycast_routed,
        steered,
    };
    testbed.note_peak_queue_depth(sim.peak_queue_depth());
    let perf = CellPerf {
        events_processed: sim.events_processed(),
        peak_queue_depth: sim.peak_queue_depth(),
        queue_capacity: sim.queue_capacity(),
        wall_micros: wall_start.elapsed().as_micros() as u64,
    };
    (result, perf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;

    #[test]
    fn table1_shape_for_key_sites() {
        let tb = Testbed::new(ExperimentConfig::quick(7));
        let ams = measure_control(&tb, tb.site("ams"), &[3, 5]);
        let atl = measure_control(&tb, tb.site("atl"), &[3, 5]);
        assert!(ams.num_near > 0 && atl.num_near > 0);
        // ams (well connected: providers + many peers) attracts more of its
        // nearby clients via anycast than atl (one transit + one R&E), the
        // paper's low/high extremes of Table 1's second row (15% vs 95%).
        assert!(ams.frac_not_anycast_routed < atl.frac_not_anycast_routed);
        for r in [&ams, &atl] {
            for (_, f) in &r.steered {
                assert!((0.0..=1.0).contains(f));
            }
        }
    }
}
