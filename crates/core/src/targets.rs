//! Target selection (§5.1).
//!
//! For each site the paper selects clients that are (a) within 50 ms RTT of
//! the site — measured via a unicast announcement from the site — and
//! (b) *not* routed to the site by anycast, because those are the clients
//! on which a technique can demonstrate control *beyond* anycast. Targets
//! are spread across ASes; in the simulator each eligible client AS
//! contributes one target, and a deterministic shuffle caps the count.

use bobw_bgp::BgpSim;
use bobw_dataplane::{catchment, rtt_to_site, ForwardEnv};
use bobw_event::{RngFactory, SimDuration};
use bobw_net::NodeId;
use bobw_topology::{CdnDeployment, SiteId, Topology};
use rand::seq::SliceRandom;

use crate::plan::AddressPlan;

/// Selects up to `limit` targets for `site` from a converged simulation in
/// which `plan.rtt_probe` is announced unicast from the site and
/// `plan.anycast_probe` is announced from every site.
///
/// `require_not_anycast` applies criterion (b); the harness disables it for
/// the pure-anycast technique, whose "controllable" clients are by
/// definition the ones anycast *does* route to the site (§5.2's
/// reachability test keeps targets that respond at the current site).
#[allow(clippy::too_many_arguments)]
pub fn select_targets(
    topo: &Topology,
    cdn: &CdnDeployment,
    bgp: &BgpSim,
    plan: &AddressPlan,
    site: SiteId,
    proximity_ms: f64,
    require_not_anycast: bool,
    limit: usize,
    rng: &RngFactory,
) -> Vec<NodeId> {
    select_targets_counted(
        topo,
        cdn,
        bgp,
        plan,
        site,
        proximity_ms,
        require_not_anycast,
        limit,
        rng,
    )
    .0
}

/// [`select_targets`] plus the total eligible-candidate count before the
/// cap. Candidate filtering walks the data plane twice per client node, so
/// a harness wanting both the capped selection and the candidate count
/// should make one call here rather than two `select_targets` calls.
#[allow(clippy::too_many_arguments)]
pub fn select_targets_counted(
    topo: &Topology,
    cdn: &CdnDeployment,
    bgp: &BgpSim,
    plan: &AddressPlan,
    site: SiteId,
    proximity_ms: f64,
    require_not_anycast: bool,
    limit: usize,
    rng: &RngFactory,
) -> (Vec<NodeId>, usize) {
    let env = ForwardEnv {
        topo,
        bgp,
        down: &[],
    };
    let max_rtt = SimDuration::from_secs_f64(proximity_ms / 1000.0);
    let mut eligible: Vec<NodeId> = topo
        .client_nodes()
        .filter(|client| {
            match rtt_to_site(&env, *client, plan.rtt_addr()) {
                Some(rtt) if rtt <= max_rtt => {}
                _ => return false,
            }
            if require_not_anycast {
                catchment(&env, cdn, *client, plan.anycast_addr()) != Some(site)
            } else {
                true
            }
        })
        .collect();
    let num_candidates = eligible.len();
    // Deterministic spread: shuffle with a site-keyed stream, then cap.
    let mut r = rng.stream("target-shuffle", site.0 as u64);
    eligible.shuffle(&mut r);
    eligible.truncate(limit);
    // Sorted output keeps downstream processing order-stable.
    eligible.sort();
    (eligible, num_candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
    use bobw_topology::{generate, GenConfig};

    fn converged_testbed() -> (Topology, CdnDeployment, Standalone, AddressPlan, SiteId) {
        let rng = RngFactory::new(11);
        let (topo, cdn) = generate(&GenConfig::small(), &rng);
        let plan = AddressPlan::default();
        let site = cdn.by_name("ams").unwrap();
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.announce(cdn.node(site), plan.rtt_probe, OriginConfig::plain());
        for other in cdn.sites() {
            s.announce(cdn.node(other), plan.anycast_probe, OriginConfig::plain());
        }
        s.run_to_idle(50_000_000);
        (topo, cdn, s, plan, site)
    }

    #[test]
    fn criteria_are_enforced() {
        let (topo, cdn, s, plan, site) = converged_testbed();
        let rng = RngFactory::new(11);
        let targets = select_targets(&topo, &cdn, s.sim(), &plan, site, 50.0, true, 1000, &rng);
        assert!(!targets.is_empty(), "no targets selected");
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        for t in &targets {
            let rtt = rtt_to_site(&env, *t, plan.rtt_addr()).expect("reachable");
            assert!(rtt <= SimDuration::from_secs_f64(0.050), "{t}: {rtt}");
            assert_ne!(
                catchment(&env, &cdn, *t, plan.anycast_addr()),
                Some(site),
                "{t} is anycast-routed to the site"
            );
            assert!(topo.node(*t).kind.hosts_clients());
        }
    }

    #[test]
    fn limit_and_determinism() {
        let (topo, cdn, s, plan, site) = converged_testbed();
        let rng = RngFactory::new(11);
        let a = select_targets(&topo, &cdn, s.sim(), &plan, site, 50.0, true, 5, &rng);
        let b = select_targets(&topo, &cdn, s.sim(), &plan, site, 50.0, true, 5, &rng);
        assert_eq!(a, b);
        assert!(a.len() <= 5);
        // Output is sorted.
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted);
    }

    #[test]
    fn without_anycast_criterion_more_targets_qualify() {
        let (topo, cdn, s, plan, site) = converged_testbed();
        let rng = RngFactory::new(11);
        let strict = select_targets(&topo, &cdn, s.sim(), &plan, site, 50.0, true, 10_000, &rng);
        let loose = select_targets(&topo, &cdn, s.sim(), &plan, site, 50.0, false, 10_000, &rng);
        assert!(loose.len() >= strict.len());
        // ams is well connected, so anycast captures some nearby clients:
        // the strict set must actually be smaller.
        assert!(
            loose.len() > strict.len(),
            "expected ams to capture some nearby clients via anycast (strict={}, loose={})",
            strict.len(),
            loose.len()
        );
    }

    #[test]
    fn tighter_proximity_selects_fewer() {
        let (topo, cdn, s, plan, site) = converged_testbed();
        let rng = RngFactory::new(11);
        let wide = select_targets(&topo, &cdn, s.sim(), &plan, site, 50.0, true, 10_000, &rng);
        let tight = select_targets(&topo, &cdn, s.sim(), &plan, site, 10.0, true, 10_000, &rng);
        assert!(tight.len() <= wide.len());
    }
}
