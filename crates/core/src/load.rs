//! Load modeling — migrated to [`bobw_traffic`] (the `assign` module),
//! where the static snapshot now underpins the time-varying demand model.
//! Re-exported here so existing `bobw_core::load::...` paths keep working.

pub use bobw_traffic::assign::{
    anycast_load, apply_to_dns, assign_load_aware, Assignment, LoadModel,
};
