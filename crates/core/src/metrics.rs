//! Per-target reconnection and failover metrics (§5.4.1).
//!
//! * **Reconnection time** — "the delay from our prefix withdrawal until we
//!   first receive a ping response from the target at any site": the lower
//!   bound on service restoration.
//! * **Failover time** — "the delay from our prefix withdrawal until the
//!   first ping response after which the target does not switch sites or
//!   experience disconnection again": the conservative upper bound.

use bobw_dataplane::{ProbeOutcome, ProbeRecord};
use bobw_event::{SimDuration, SimTime};
use bobw_topology::SiteId;
use serde::{Deserialize, Serialize};

/// The per-target analysis of one failover experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetOutcome {
    /// Delay until the first reply at any site. `None` = never reconnected
    /// within the probing window.
    pub reconnection: Option<SimDuration>,
    /// Delay until the first reply of the final stable run (no further
    /// site switches or losses). `None` = never stabilized.
    pub failover: Option<SimDuration>,
    /// Site serving the target at the end of the window.
    pub final_site: Option<SiteId>,
    /// Site switches observed after the first reconnection.
    pub bounces: u32,
    /// Lost probes observed after the first reconnection.
    pub losses_after_reconnect: u32,
}

impl TargetOutcome {
    /// Gap between failover and reconnection (the §5.4.1 bouncing window).
    pub fn gap(&self) -> Option<SimDuration> {
        match (self.reconnection, self.failover) {
            (Some(r), Some(f)) if f >= r => Some(f - r),
            _ => None,
        }
    }
}

/// Analyzes one target's probe records (in send order) against the failure
/// instant `t_fail`.
pub fn analyze_target(records: &[ProbeRecord], t_fail: SimTime) -> TargetOutcome {
    // Reconnection: earliest reply arrival.
    let mut reconnection: Option<SimDuration> = None;
    let mut first_recv_idx: Option<usize> = None;
    for (i, r) in records.iter().enumerate() {
        if let ProbeOutcome::Received { at, .. } = r.outcome {
            let d = at.checked_since(t_fail).unwrap_or(SimDuration::ZERO);
            if reconnection.is_none_or(|cur| d < cur) {
                reconnection = Some(d);
            }
            if first_recv_idx.is_none() {
                first_recv_idx = Some(i);
            }
        }
    }

    // Failover: the first index i such that records[i..] are all received at
    // one constant site. Scan backwards to find where the stable suffix
    // begins.
    let mut failover: Option<SimDuration> = None;
    let mut final_site: Option<SiteId> = None;
    if let Some(ProbeOutcome::Received {
        site: last_site, ..
    }) = records.last().map(|r| r.outcome)
    {
        final_site = Some(last_site);
        let mut start = records.len() - 1;
        for i in (0..records.len()).rev() {
            match records[i].outcome {
                ProbeOutcome::Received { site, .. } if site == last_site => start = i,
                _ => break,
            }
        }
        if let ProbeOutcome::Received { at, .. } = records[start].outcome {
            failover = Some(at.checked_since(t_fail).unwrap_or(SimDuration::ZERO));
        }
    }

    // Bounces and losses after the first reconnection.
    let mut bounces = 0u32;
    let mut losses = 0u32;
    if let Some(first) = first_recv_idx {
        let mut prev_site: Option<SiteId> = None;
        for r in &records[first..] {
            match r.outcome {
                ProbeOutcome::Received { site, .. } => {
                    if let Some(p) = prev_site {
                        if p != site {
                            bounces += 1;
                        }
                    }
                    prev_site = Some(site);
                }
                ProbeOutcome::Lost => losses += 1,
            }
        }
    }

    TargetOutcome {
        reconnection,
        failover,
        final_site,
        bounces,
        losses_after_reconnect: losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv(seq: u32, sent_s: u64, site: u8) -> ProbeRecord {
        ProbeRecord {
            seq,
            sent: SimTime::from_secs(sent_s),
            outcome: ProbeOutcome::Received {
                site: SiteId(site),
                // Replies arrive 1 s after sending in these fixtures.
                at: SimTime::from_secs(sent_s + 1),
            },
        }
    }

    fn lost(seq: u32, sent_s: u64) -> ProbeRecord {
        ProbeRecord {
            seq,
            sent: SimTime::from_secs(sent_s),
            outcome: ProbeOutcome::Lost,
        }
    }

    const T_FAIL: SimTime = SimTime::from_secs(100);

    #[test]
    fn clean_failover_single_site() {
        // Lost, lost, then stable at site 2.
        let records = vec![lost(0, 100), lost(1, 102), recv(2, 104, 2), recv(3, 106, 2)];
        let o = analyze_target(&records, T_FAIL);
        assert_eq!(o.reconnection, Some(SimDuration::from_secs(5)));
        assert_eq!(o.failover, Some(SimDuration::from_secs(5)));
        assert_eq!(o.final_site, Some(SiteId(2)));
        assert_eq!(o.bounces, 0);
        assert_eq!(o.losses_after_reconnect, 0);
        assert_eq!(o.gap(), Some(SimDuration::ZERO));
    }

    #[test]
    fn bounce_delays_failover_not_reconnection() {
        // Reconnect at site 1, bounce to site 2, settle at 2.
        let records = vec![
            lost(0, 100),
            recv(1, 102, 1),
            recv(2, 104, 2),
            recv(3, 106, 2),
        ];
        let o = analyze_target(&records, T_FAIL);
        assert_eq!(o.reconnection, Some(SimDuration::from_secs(3)));
        assert_eq!(o.failover, Some(SimDuration::from_secs(5)));
        assert_eq!(o.bounces, 1);
        assert_eq!(o.gap(), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn disconnection_after_reconnect_delays_failover() {
        let records = vec![
            recv(0, 100, 1),
            lost(1, 102),
            recv(2, 104, 1),
            recv(3, 106, 1),
        ];
        let o = analyze_target(&records, T_FAIL);
        assert_eq!(o.reconnection, Some(SimDuration::from_secs(1)));
        // The loss at seq 1 breaks the stable run; failover starts at seq 2.
        assert_eq!(o.failover, Some(SimDuration::from_secs(5)));
        assert_eq!(o.losses_after_reconnect, 1);
        assert_eq!(o.bounces, 0);
    }

    #[test]
    fn never_reconnected() {
        let records = vec![lost(0, 100), lost(1, 102)];
        let o = analyze_target(&records, T_FAIL);
        assert_eq!(o.reconnection, None);
        assert_eq!(o.failover, None);
        assert_eq!(o.final_site, None);
        assert_eq!(o.gap(), None);
    }

    #[test]
    fn ends_lost_means_no_failover() {
        // Reconnects but the window ends in losses: not stabilized.
        let records = vec![recv(0, 100, 1), lost(1, 102)];
        let o = analyze_target(&records, T_FAIL);
        assert_eq!(o.reconnection, Some(SimDuration::from_secs(1)));
        assert_eq!(o.failover, None);
        assert_eq!(o.final_site, None);
    }

    #[test]
    fn empty_records() {
        let o = analyze_target(&[], T_FAIL);
        assert_eq!(o.reconnection, None);
        assert_eq!(o.failover, None);
        assert_eq!(o.bounces, 0);
    }

    #[test]
    fn stable_from_the_start() {
        // Never disconnected at all (e.g. target was anycast-routed
        // elsewhere already): failover == reconnection == first reply.
        let records = vec![recv(0, 100, 3), recv(1, 102, 3)];
        let o = analyze_target(&records, T_FAIL);
        assert_eq!(o.reconnection, Some(SimDuration::from_secs(1)));
        assert_eq!(o.failover, Some(SimDuration::from_secs(1)));
        assert_eq!(o.bounces, 0);
    }
}
