//! The address plan: which prefixes the experiment announces.
//!
//! The paper is allocated `184.164.244.0/23` on PEERING and may announce
//! the /23 and its two /24s (§5). The failover experiments use the first
//! /24 as the failed site's *specific* prefix and the /23 as the covering
//! prefix for `proactive-superprefix`. Two additional measurement prefixes
//! (disjoint from the /23) support target selection: a unicast prefix from
//! the site under test for RTT measurement, and an anycast prefix from all
//! sites for catchment measurement — mirroring how the paper measures site
//! proximity "using a unicast announcement from the site" and the anycast
//! routing criterion (§5.1).

use bobw_net::Prefix;
use serde::{Deserialize, Serialize};

/// The experiment's prefix allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressPlan {
    /// The covering prefix (paper: `184.164.244.0/23`).
    pub covering: Prefix,
    /// The specific per-site prefix DNS steers clients into
    /// (paper: `184.164.244.0/24`).
    pub specific: Prefix,
    /// Unicast measurement prefix announced by the site under test, used to
    /// measure client→site RTT for the ≤50 ms criterion.
    pub rtt_probe: Prefix,
    /// Anycast measurement prefix announced by all sites, used to compute
    /// the anycast catchment for the "not routed to the site" criterion.
    pub anycast_probe: Prefix,
    /// Host offset of the probe source address inside `specific`
    /// (paper: `.10`, i.e. `184.164.244.10`).
    pub source_offset: u32,
    /// Address block carved into per-site unicast prefixes for the
    /// DNS-redirection (pure unicast) experiments; site `i` serves from the
    /// `i`-th /24 inside it.
    pub site_block: Prefix,
}

impl Default for AddressPlan {
    fn default() -> Self {
        AddressPlan {
            covering: "184.164.244.0/23".parse().expect("static"),
            specific: "184.164.244.0/24".parse().expect("static"),
            rtt_probe: "184.164.246.0/24".parse().expect("static"),
            anycast_probe: "184.164.247.0/24".parse().expect("static"),
            source_offset: 10,
            site_block: "184.164.232.0/21".parse().expect("static"),
        }
    }
}

impl AddressPlan {
    /// The probe source/destination address (`184.164.244.10`).
    pub fn probe_addr(&self) -> u32 {
        self.specific.addr_at(self.source_offset)
    }

    /// Address inside the RTT-measurement prefix.
    pub fn rtt_addr(&self) -> u32 {
        self.rtt_probe.addr_at(1)
    }

    /// Address inside the anycast-measurement prefix.
    pub fn anycast_addr(&self) -> u32 {
        self.anycast_probe.addr_at(1)
    }

    /// The unicast /24 of site `i` inside the site block (pure-unicast
    /// deployments). Panics if the block is too small for the site count.
    pub fn site_prefix(&self, site_index: usize) -> Prefix {
        let sub_len = 24u8;
        let capacity = 1usize << (sub_len - self.site_block.len());
        assert!(
            site_index < capacity,
            "site {site_index} does not fit in {}",
            self.site_block
        );
        let offset = (site_index as u32) << (32 - sub_len);
        Prefix::new(self.site_block.bits() + offset, sub_len)
    }

    /// Validates internal consistency; called by the experiment setup.
    pub fn validate(&self) {
        assert!(
            self.covering.covers(&self.specific),
            "covering prefix must cover the specific prefix"
        );
        assert!(
            self.covering.len() < self.specific.len(),
            "covering prefix must be less specific"
        );
        for (name, p) in [
            ("rtt_probe", self.rtt_probe),
            ("anycast_probe", self.anycast_probe),
            ("site_block", self.site_block),
        ] {
            assert!(
                !self.covering.covers(&p) && !p.covers(&self.covering),
                "{name} must be disjoint from the experiment block"
            );
        }
        assert!(
            !self.rtt_probe.covers(&self.anycast_probe)
                && !self.anycast_probe.covers(&self.rtt_probe),
            "measurement prefixes must be disjoint"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_matches_paper_allocation() {
        let p = AddressPlan::default();
        p.validate();
        assert_eq!(p.covering.to_string(), "184.164.244.0/23");
        assert_eq!(p.specific.to_string(), "184.164.244.0/24");
        // 184.164.244.10 as in §5.2.
        assert_eq!(p.probe_addr(), p.specific.first_addr() + 10);
        assert!(p.specific.contains(p.probe_addr()));
        assert!(p.rtt_probe.contains(p.rtt_addr()));
        assert!(p.anycast_probe.contains(p.anycast_addr()));
    }

    #[test]
    fn site_prefixes_are_disjoint_24s_in_block() {
        let p = AddressPlan::default();
        let prefixes: Vec<Prefix> = (0..8).map(|i| p.site_prefix(i)).collect();
        for (i, a) in prefixes.iter().enumerate() {
            assert_eq!(a.len(), 24);
            assert!(p.site_block.covers(a));
            for b in &prefixes[i + 1..] {
                assert!(!a.covers(b) && !b.covers(a), "{a} overlaps {b}");
            }
        }
        assert_eq!(prefixes[0].to_string(), "184.164.232.0/24");
        assert_eq!(prefixes[7].to_string(), "184.164.239.0/24");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn site_prefix_capacity_enforced() {
        AddressPlan::default().site_prefix(8);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn validate_rejects_non_covering() {
        let p = AddressPlan {
            covering: "10.0.0.0/23".parse().unwrap(),
            ..AddressPlan::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn validate_rejects_overlapping_measurement_prefix() {
        let p = AddressPlan {
            rtt_probe: "184.164.244.0/25".parse().unwrap(),
            ..AddressPlan::default()
        };
        p.validate();
    }
}
