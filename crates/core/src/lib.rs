//! # bobw-core
//!
//! The primary contribution of *"The Best of Both Worlds: High Availability
//! CDN Routing Without Compromising Control"* (IMC '22), as a library:
//!
//! * [`technique`] — the five CDN redirection techniques of the paper's
//!   Figure 1 (plus the briefly-evaluated *combined* variant), expressed as
//!   "announcements before failure" + "reactions after failure". The two
//!   novel techniques are:
//!   - **reactive-anycast** (§4): unicast per-site prefixes in normal
//!     operation (full DNS control); on failure, *every other site
//!     immediately announces the failed site's prefix*, injecting valid
//!     routes that displace the invalid ones much faster than a bare
//!     withdrawal converges.
//!   - **proactive-prepending** (§4): backup sites announce the prefix
//!     *ahead of* failure with AS-path prepending, so alternative routes
//!     are pre-positioned and failover needs no global reconfiguration —
//!     at the price of some control wherever relationship preferences
//!     trump path length.
//! * [`experiment`] — the paper's §5 failover experiment: converge, select
//!   targets (≤50 ms, not anycast-routed to the site), measure control,
//!   fail the site, probe every 1.5 s for 600 s, extract per-target
//!   reconnection and failover times (Figures 2 and 5).
//! * [`control`] — the Table 1 traffic-control measurement.
//! * [`divergence`] — the Appendix C.1 "why did control fail" path
//!   analysis.
//! * [`tradeoffs`] — Table 2, derived from measured quantities instead of
//!   asserted.

pub mod control;
pub mod divergence;
pub mod dns_experiment;
pub mod experiment;
pub mod load;
pub mod metrics;
pub mod plan;
pub mod targets;
pub mod technique;
pub mod tradeoffs;

pub use bobw_traffic::{RegionCapacity, Steering, TrafficConfig, TrafficSim, TrafficSummary};
pub use control::{measure_control, measure_control_instrumented, ControlResult};
pub use divergence::{analyze_divergence, DivergenceReport};
pub use dns_experiment::{run_unicast_dns_failover, DnsClientConfig};
pub use experiment::{
    run_failover, run_failover_instrumented, try_run_failover_instrumented, CellPerf,
    ExperimentConfig, FailoverResult, FailureMode, ReactionFault, SessionModel, Testbed,
};
pub use load::{anycast_load, apply_to_dns, assign_load_aware, Assignment, LoadModel};
pub use metrics::{analyze_target, TargetOutcome};
pub use plan::AddressPlan;
pub use targets::select_targets;
pub use technique::{Action, Technique};
pub use tradeoffs::{derive_tradeoffs, MeasuredTechnique, Rating, TechniqueTradeoff};
