//! The pure-unicast (DNS-redirection) failover experiment, run *in
//! simulation* rather than analytically.
//!
//! The paper does not measure unicast failover ("we have no straightforward
//! way to measure the impact of DNS caching … worldwide", §5) and instead
//! argues from published TTL and TTL-violation numbers. This module closes
//! the loop: it runs a pure-unicast CDN (one /24 per site, DNS steering) in
//! the same composite simulation as Figure 2 — BGP, data plane, and this
//! time also the DNS layer, with per-client resolver caches and violating
//! clients — and measures reconnection/failover with the §5.4.1 metric
//! definitions, producing a Figure-2-comparable "unicast" series.
//!
//! The dynamics are exactly the §2 story: the failed site's prefix is
//! withdrawn and its address dies, but clients keep *connecting to the old
//! address* until their resolver cache turns over (plus a violation grace
//! for the Allman-'20 fraction), because the surviving sites' prefixes are
//! unaffected by the failure and the data plane recovers instantly once a
//! client holds a fresh record.

use bobw_bgp::{BgpEvent, BgpSim, OriginConfig};
use bobw_dataplane::{walk, ForwardEnv, ProbeLog, ProbeOutcome, ProbeRecord};
use bobw_dns::{Authoritative, RecursiveResolver};
use bobw_event::rng::lognormal;
use bobw_event::{Engine, Handler, Scheduler, SimDuration, SimTime};
use bobw_net::NodeId;
use bobw_topology::{CdnDeployment, SiteId, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::experiment::{FailoverResult, Testbed};
use crate::metrics::analyze_target;
use crate::targets::select_targets;

/// Client-population parameters for the in-sim DNS experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DnsClientConfig {
    /// Record TTL handed out by the CDN's authoritative server.
    pub ttl: SimDuration,
    /// Fraction of clients whose resolvers/applications keep using records
    /// past expiry.
    pub violator_fraction: f64,
    /// Median / lognormal-sigma of the violators' overshoot (Allman '20:
    /// median 890 s).
    pub overshoot_median_s: f64,
    pub overshoot_sigma: f64,
    /// How often each client retries its connection (mirrors the Figure 2
    /// probing cadence).
    pub attempt_interval: SimDuration,
    /// Length of the observation window after the failure.
    pub window: SimDuration,
}

impl Default for DnsClientConfig {
    fn default() -> Self {
        DnsClientConfig {
            ttl: SimDuration::from_secs(600),
            violator_fraction: 0.25,
            overshoot_median_s: 890.0,
            overshoot_sigma: 1.0,
            attempt_interval: SimDuration::from_millis(1500),
            window: SimDuration::from_secs(1800),
        }
    }
}

impl DnsClientConfig {
    /// Akamai-style 20 s TTL.
    pub fn low_ttl() -> DnsClientConfig {
        DnsClientConfig {
            ttl: SimDuration::from_secs(20),
            ..Default::default()
        }
    }
}

enum SimEvent {
    Bgp(BgpEvent),
    FailSite,
    DnsUpdate,
    AttemptRound(u32),
}

/// One memoized connection walk: (BGP state version, down-set epoch,
/// resolved address, reached site).
type WalkMemo = (u64, u64, u32, Option<SiteId>);

struct DnsRun<'a> {
    topo: &'a Topology,
    cdn: &'a CdnDeployment,
    bgp: BgpSim,
    auth: Authoritative,
    resolvers: Vec<RecursiveResolver>,
    targets: Vec<NodeId>,
    down: Vec<NodeId>,
    failed: SiteId,
    failed_node: NodeId,
    log: ProbeLog,
    scratch: Vec<(SimDuration, BgpEvent)>,
    /// Per-target memo of the last connection walk, keyed by (BGP state
    /// version, down-set epoch, resolved address); see the probe memo in
    /// `experiment.rs`. DNS answers change rarely (TTL scale) and routing
    /// is static between events, so most attempt rounds reuse the walk.
    walk_memo: Vec<Option<WalkMemo>>,
    down_epoch: u64,
}

impl Handler<SimEvent> for DnsRun<'_> {
    fn handle(&mut self, now: SimTime, event: SimEvent, sched: &mut Scheduler<'_, SimEvent>) {
        match event {
            SimEvent::Bgp(e) => {
                self.bgp.handle(now, e, &mut self.scratch);
                for (d, e) in self.scratch.drain(..) {
                    sched.after(d, SimEvent::Bgp(e));
                }
            }
            SimEvent::FailSite => {
                self.down.push(self.failed_node);
                self.down_epoch += 1;
                for prefix in self.bgp.node(self.failed_node).originated_prefixes() {
                    self.bgp
                        .withdraw(now, self.failed_node, prefix, &mut self.scratch);
                }
                for (d, e) in self.scratch.drain(..) {
                    sched.after(d, SimEvent::Bgp(e));
                }
            }
            SimEvent::DnsUpdate => {
                // The CDN's monitoring marks the site failed; fresh answers
                // now steer to each client's fallback site.
                self.auth.mark_failed(self.failed);
            }
            SimEvent::AttemptRound(seq) => {
                let mut outcomes = Vec::with_capacity(self.targets.len());
                if self.walk_memo.len() < self.targets.len() {
                    self.walk_memo.resize(self.targets.len(), None);
                }
                let version = self.bgp.state_version();
                {
                    let env = ForwardEnv {
                        topo: self.topo,
                        bgp: &self.bgp,
                        down: &self.down,
                    };
                    for (i, &target) in self.targets.iter().enumerate() {
                        let outcome = match self.resolvers[i].query(&self.auth, now) {
                            Some((answer, _)) => {
                                let key = (version, self.down_epoch, answer.addr);
                                let site = match self.walk_memo[i] {
                                    Some((v, e, d, cached)) if (v, e, d) == key => cached,
                                    _ => {
                                        let s = walk(&env, target, answer.addr)
                                            .delivered_to()
                                            .and_then(|node| self.cdn.site_at(node));
                                        self.walk_memo[i] = Some((key.0, key.1, key.2, s));
                                        s
                                    }
                                };
                                match site {
                                    Some(site) => ProbeOutcome::Received {
                                        site,
                                        // Connection success observed a
                                        // round trip later; negligible
                                        // against DNS time scales.
                                        at: now,
                                    },
                                    None => ProbeOutcome::Lost,
                                }
                            }
                            None => ProbeOutcome::Lost,
                        };
                        outcomes.push(outcome);
                    }
                }
                for (i, outcome) in outcomes.into_iter().enumerate() {
                    self.log.push(
                        i,
                        ProbeRecord {
                            seq,
                            sent: now,
                            outcome,
                        },
                    );
                }
            }
        }
    }
}

/// Runs the pure-unicast failover experiment for `failed`, returning a
/// [`FailoverResult`] comparable with [`crate::experiment::run_failover`]'s
/// output (technique name `"unicast-dns"`).
pub fn run_unicast_dns_failover(
    testbed: &Testbed,
    failed: SiteId,
    dns: &DnsClientConfig,
) -> FailoverResult {
    let cfg = &testbed.cfg;
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let plan = &cfg.plan;
    let failed_node = cdn.node(failed);

    // Same high-water-mark feedback as the failover loop: a comparable
    // cell's peak queue depth preallocates the hot lane (allocation only,
    // behavior identical).
    let mut engine: Engine<SimEvent> = Engine::with_capacity(testbed.queue_capacity_hint());
    let site_prefixes: Vec<_> = (0..cdn.num_sites()).map(|i| plan.site_prefix(i)).collect();
    let mut run = DnsRun {
        topo,
        cdn,
        bgp: BgpSim::from_seed(topo, cfg.timing.clone(), &testbed.bgp_seed),
        auth: Authoritative::new(site_prefixes.clone(), dns.ttl),
        resolvers: Vec::new(),
        targets: Vec::new(),
        down: Vec::new(),
        failed,
        failed_node,
        log: ProbeLog::new(0),
        scratch: Vec::with_capacity(64),
        walk_memo: Vec::new(),
        down_epoch: 0,
    };

    // Phase 1: every site announces its own unicast /24 (plus the
    // measurement prefixes used for target selection); converge.
    for (i, site) in cdn.sites().enumerate() {
        run.bgp.announce(
            engine.now(),
            cdn.node(site),
            site_prefixes[i],
            OriginConfig::plain(),
            &mut run.scratch,
        );
        run.bgp.announce(
            engine.now(),
            cdn.node(site),
            plan.anycast_probe,
            OriginConfig::plain(),
            &mut run.scratch,
        );
    }
    run.bgp.announce(
        engine.now(),
        failed_node,
        plan.rtt_probe,
        OriginConfig::plain(),
        &mut run.scratch,
    );
    let pending: Vec<_> = run.scratch.drain(..).collect();
    for (d, e) in pending {
        engine.schedule_after(d, SimEvent::Bgp(e));
    }
    engine.run_to_idle(&mut run, cfg.max_events);

    // Phase 2: targets (≤50 ms of the failed site; the anycast criterion is
    // irrelevant to unicast control, so it is skipped) and their resolvers.
    let targets = select_targets(
        topo,
        cdn,
        &run.bgp,
        plan,
        failed,
        cfg.proximity_ms,
        false,
        cfg.targets_per_site,
        &testbed.rng,
    );
    let num_selected = targets.len();
    // Every target is steered to the failed site and pre-warms its cache at
    // a uniformly random phase within one TTL before the failure (steady
    // state). Violators get a lognormal stale grace.
    let t_fail = engine.now() + dns.ttl + SimDuration::from_secs(10);
    for (i, &t) in targets.iter().enumerate() {
        run.auth.assign(t, failed);
        let ranking: Vec<SiteId> = std::iter::once(failed)
            .chain(cdn.other_sites(failed))
            .collect();
        run.auth.set_fallback(t, ranking);
        let mut r = testbed.rng.stream("dns-client-sim", i as u64);
        let grace = if r.gen_bool(dns.violator_fraction.clamp(0.0, 1.0)) {
            SimDuration::from_secs_f64(lognormal(
                &mut r,
                dns.overshoot_median_s,
                dns.overshoot_sigma,
            ))
        } else {
            SimDuration::ZERO
        };
        let mut resolver = RecursiveResolver::new(t, grace);
        let phase = SimDuration::from_secs_f64(
            r.gen_range(0.0..dns.ttl.as_secs_f64().max(f64::MIN_POSITIVE)),
        );
        let warm_at = t_fail
            .checked_since(SimTime::ZERO)
            .map(|_| SimTime::ZERO + (t_fail.since(SimTime::ZERO) - phase))
            .expect("t_fail after zero");
        resolver.query(&run.auth, warm_at);
        run.resolvers.push(resolver);
    }
    run.targets = targets;
    run.log = ProbeLog::new(run.targets.len());

    // Phase 3: failure, DNS reaction, connection attempts.
    engine.schedule_at(t_fail, SimEvent::FailSite);
    engine.schedule_at(t_fail + cfg.detection_delay, SimEvent::DnsUpdate);
    let rounds = (dns.window.as_nanos() / dns.attempt_interval.as_nanos().max(1)) as u32;
    for k in 0..rounds {
        engine.schedule_at(
            t_fail + dns.attempt_interval.saturating_mul(k as u64),
            SimEvent::AttemptRound(k),
        );
    }
    engine.run_until(&mut run, t_fail + dns.window, cfg.max_events);

    let outcomes = (0..run.log.num_targets())
        .map(|i| analyze_target(run.log.for_target(i), t_fail))
        .collect::<Vec<_>>();
    testbed.note_peak_queue_depth(engine.peak_pending());
    FailoverResult {
        technique: "unicast-dns".to_string(),
        site_name: cdn.name(failed).to_string(),
        failed_site: failed,
        num_candidates: num_selected,
        num_selected,
        num_controllable: run.targets.len(),
        outcomes,
        t_fail,
        traffic: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use bobw_measure::Cdf;

    fn testbed() -> Testbed {
        let mut cfg = ExperimentConfig::quick(21);
        cfg.targets_per_site = 60;
        Testbed::new(cfg)
    }

    #[test]
    fn unicast_failover_is_dns_bound() {
        let tb = testbed();
        let dns = DnsClientConfig {
            ttl: SimDuration::from_secs(60),
            violator_fraction: 0.0,
            window: SimDuration::from_secs(120),
            ..Default::default()
        };
        let r = run_unicast_dns_failover(&tb, tb.site("bos"), &dns);
        assert!(r.num_controllable > 0);
        let recon = Cdf::new(r.reconnection_secs());
        // Compliant clients with TTL 60: reconnection spread across
        // (0, 60] s, median near TTL/2 — far slower than the BGP-layer
        // techniques, and bounded by the TTL.
        let med = recon.median().expect("targets reconnect");
        assert!(
            (5.0..=62.0).contains(&med),
            "median {med} outside DNS-bound range"
        );
        assert!(recon.max().unwrap() <= 62.0);
        // Everyone ends at a surviving site.
        for o in &r.outcomes {
            if let Some(site) = o.final_site {
                assert_ne!(site, r.failed_site);
            }
        }
    }

    #[test]
    fn violators_stretch_the_tail() {
        let tb = testbed();
        let strict = DnsClientConfig {
            ttl: SimDuration::from_secs(30),
            violator_fraction: 0.0,
            window: SimDuration::from_secs(300),
            ..Default::default()
        };
        let loose = DnsClientConfig {
            violator_fraction: 0.5,
            ..strict.clone()
        };
        let site = tb.site("slc");
        let a = run_unicast_dns_failover(&tb, site, &strict);
        let b = run_unicast_dns_failover(&tb, site, &loose);
        let pa = Cdf::new(a.reconnection_secs());
        let pb = Cdf::new(b.reconnection_secs());
        // With violators, the p90 extends beyond the TTL bound (or targets
        // fail to reconnect inside the window at all).
        let tail_a = pa.quantile(0.9).unwrap_or(0.0);
        let tail_b = pb.quantile(0.9).unwrap_or(f64::MAX);
        let never_b = b.never_reconnected_fraction();
        assert!(
            tail_b > tail_a || never_b > 0.0,
            "violators had no effect: {tail_a} vs {tail_b} (never {never_b})"
        );
    }

    #[test]
    fn deterministic() {
        let tb = testbed();
        let dns = DnsClientConfig {
            ttl: SimDuration::from_secs(45),
            window: SimDuration::from_secs(90),
            ..Default::default()
        };
        let a = run_unicast_dns_failover(&tb, tb.site("msn"), &dns);
        let b = run_unicast_dns_failover(&tb, tb.site("msn"), &dns);
        assert_eq!(a.outcomes, b.outcomes);
    }
}
