//! The CDN redirection techniques (paper Figure 1).
//!
//! A technique is fully described by the announcements it makes before a
//! site failure and the announcements it adds after one (the failing site
//! always withdraws everything it announces — §4: "On site failure, we
//! assume that the site withdraws its prefix announcements"). Everything
//! else (probing, metrics) is shared by the experiment harness.

use bobw_bgp::OriginConfig;
use bobw_net::{NodeId, Prefix};
use bobw_topology::{CdnDeployment, SiteId, Topology};
use serde::{Deserialize, Serialize};

use crate::plan::AddressPlan;

/// One announcement action: `node` originates `prefix` under `cfg`.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    pub node: NodeId,
    pub prefix: Prefix,
    pub cfg: OriginConfig,
}

impl Action {
    fn plain(node: NodeId, prefix: Prefix) -> Action {
        Action {
            node,
            prefix,
            cfg: OriginConfig::plain(),
        }
    }
}

/// A CDN redirection technique.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// DNS-only steering; per-site unicast prefixes (§2).
    Unicast,
    /// One shared prefix from every site; BGP picks the site (§2).
    Anycast,
    /// Unicast plus a covering prefix from all sites (§3's hybrid
    /// non-solution).
    ProactiveSuperprefix,
    /// §4: unicast normally; on failure all other sites announce the failed
    /// site's prefix.
    ReactiveAnycast,
    /// §4: the specific site announces plain; all other sites announce the
    /// same prefix prepended `prepends` times. With `selective`, backup
    /// sites announce only to neighbors that also connect to the specific
    /// site (§4's recommendation; the paper's evaluation prepends to all
    /// neighbors because PEERING providers differ per site, §5.2).
    ProactivePrepending { prepends: u8, selective: bool },
    /// §4's briefly-evaluated combination: reactive-anycast plus the
    /// proactive covering prefix.
    Combined,
    /// Extension: backup sites pre-position prepended routes tagged with
    /// the well-known NO_EXPORT community, so the exact-prefix backups
    /// exist *only* in the RIBs of the backups' direct neighbors — the
    /// practical realization of §4's "announce the prepended route only to
    /// neighbors that also connect to the site", with zero control loss
    /// anywhere else. During convergence, ghost routes funnel packets into
    /// those neighborhoods, where the scoped routes catch them; the
    /// covering prefix (announced from every site, as in
    /// proactive-superprefix) provides the steady state once the ghosts
    /// die — without it, remote ASes end up with *no* route at all, a
    /// pitfall the ablation bench demonstrates.
    ProactiveNoExport { prepends: u8 },
    /// Extension of §4's aside — "BGP MED could also be used for neighbors
    /// that support it": backup sites announce the prefix *unprepended* but
    /// with a high MED, so neighbors connected to both a backup and the
    /// specific site prefer the specific site (lower MED) without any
    /// path-length penalty during failover. Neighbors connected only to a
    /// backup still route there (MED is non-transitive), so control is
    /// below prepending's — the tradeoff the ablation bench quantifies.
    ProactiveMed { med: u32 },
}

impl Technique {
    /// Display name matching the paper's typography.
    pub fn name(&self) -> String {
        match self {
            Technique::Unicast => "unicast".into(),
            Technique::Anycast => "anycast".into(),
            Technique::ProactiveSuperprefix => "proactive-superprefix".into(),
            Technique::ReactiveAnycast => "reactive-anycast".into(),
            Technique::ProactivePrepending {
                prepends,
                selective,
            } => {
                if *selective {
                    format!("proactive-prepending-{prepends}-selective")
                } else {
                    format!("proactive-prepending-{prepends}")
                }
            }
            Technique::Combined => "combined".into(),
            Technique::ProactiveMed { med } => format!("proactive-med-{med}"),
            Technique::ProactiveNoExport { prepends } => {
                format!("proactive-noexport-{prepends}")
            }
        }
    }

    /// Parses a technique from its [`Technique::name`] rendering (the
    /// paper-table spelling the CLI and the distributed wire protocol
    /// use). `parse(t.name())` round-trips for every technique.
    pub fn parse(name: &str) -> Result<Technique, String> {
        match name {
            "unicast" => Ok(Technique::Unicast),
            "anycast" => Ok(Technique::Anycast),
            "proactive-superprefix" | "superprefix" => Ok(Technique::ProactiveSuperprefix),
            "reactive-anycast" | "reactive" => Ok(Technique::ReactiveAnycast),
            "combined" => Ok(Technique::Combined),
            other => {
                if let Some(rest) = other.strip_prefix("proactive-prepending-") {
                    let (n, selective) = match rest.strip_suffix("-selective") {
                        Some(n) => (n, true),
                        None => (rest, false),
                    };
                    let prepends: u8 = n.parse().map_err(|_| format!("bad prepend count {n:?}"))?;
                    return Ok(Technique::ProactivePrepending {
                        prepends,
                        selective,
                    });
                }
                if let Some(n) = other.strip_prefix("proactive-med-") {
                    let med: u32 = n.parse().map_err(|_| format!("bad MED {n:?}"))?;
                    return Ok(Technique::ProactiveMed { med });
                }
                if let Some(n) = other.strip_prefix("proactive-noexport-") {
                    let prepends: u8 = n.parse().map_err(|_| format!("bad prepend count {n:?}"))?;
                    return Ok(Technique::ProactiveNoExport { prepends });
                }
                Err(format!(
                    "unknown technique {other:?}; try unicast, anycast, proactive-superprefix, \
                     reactive-anycast, proactive-prepending-3[-selective], proactive-med-100, \
                     combined"
                ))
            }
        }
    }

    /// The four techniques of Figure 2, with the paper's default prepend
    /// count (3, §5.2).
    pub fn figure2_set() -> Vec<Technique> {
        vec![
            Technique::ProactiveSuperprefix,
            Technique::ReactiveAnycast,
            Technique::ProactivePrepending {
                prepends: 3,
                selective: false,
            },
            Technique::Anycast,
        ]
    }

    /// Does failover require changing announcements at surviving sites
    /// (the paper's "risk" column: global routing reconfiguration under
    /// pressure, §7)?
    pub fn requires_global_reconfiguration(&self) -> bool {
        matches!(self, Technique::ReactiveAnycast | Technique::Combined)
    }

    /// Announcements in normal operation, with `specific` as the site the
    /// CDN steers the measured clients to (Figure 1's left column).
    pub fn before(
        &self,
        plan: &AddressPlan,
        topo: &Topology,
        cdn: &CdnDeployment,
        specific: SiteId,
    ) -> Vec<Action> {
        let s_node = cdn.node(specific);
        let mut acts = Vec::new();
        match self {
            Technique::Unicast | Technique::ReactiveAnycast => {
                acts.push(Action::plain(s_node, plan.specific));
            }
            Technique::Anycast => {
                for site in cdn.sites() {
                    acts.push(Action::plain(cdn.node(site), plan.specific));
                }
            }
            Technique::ProactiveSuperprefix | Technique::Combined => {
                acts.push(Action::plain(s_node, plan.specific));
                for site in cdn.sites() {
                    acts.push(Action::plain(cdn.node(site), plan.covering));
                }
            }
            Technique::ProactivePrepending {
                prepends,
                selective,
            } => {
                acts.push(Action::plain(s_node, plan.specific));
                for site in cdn.other_sites(specific) {
                    let node = cdn.node(site);
                    let mut cfg = OriginConfig::prepended(*prepends);
                    if *selective {
                        cfg = cfg.only_to(shared_neighbors(topo, node, s_node));
                    }
                    acts.push(Action {
                        node,
                        prefix: plan.specific,
                        cfg,
                    });
                }
            }
            Technique::ProactiveMed { med } => {
                acts.push(Action::plain(s_node, plan.specific));
                for site in cdn.other_sites(specific) {
                    let mut cfg = OriginConfig::plain();
                    cfg.med = *med;
                    acts.push(Action {
                        node: cdn.node(site),
                        prefix: plan.specific,
                        cfg,
                    });
                }
            }
            Technique::ProactiveNoExport { prepends } => {
                acts.push(Action::plain(s_node, plan.specific));
                for site in cdn.sites() {
                    acts.push(Action::plain(cdn.node(site), plan.covering));
                }
                for site in cdn.other_sites(specific) {
                    acts.push(Action {
                        node: cdn.node(site),
                        prefix: plan.specific,
                        cfg: OriginConfig::prepended(*prepends).with_no_export(),
                    });
                }
            }
        }
        acts
    }

    /// New announcements made in reaction to the failure of `failed`
    /// (Figure 1's right column). The failed site's withdrawals are handled
    /// by the harness, not here.
    pub fn after(
        &self,
        plan: &AddressPlan,
        _topo: &Topology,
        cdn: &CdnDeployment,
        failed: SiteId,
    ) -> Vec<Action> {
        match self {
            Technique::ReactiveAnycast | Technique::Combined => cdn
                .other_sites(failed)
                .map(|site| Action::plain(cdn.node(site), plan.specific))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Neighbors of `backup` that are also neighbors of `specific` — the §4
/// recommendation's export set for selective prepending ("only announce the
/// prepended route for a site's prefix to neighbors that also connect to
/// the site and hence receive the non-prepended route").
pub fn shared_neighbors(topo: &Topology, backup: NodeId, specific: NodeId) -> Vec<NodeId> {
    topo.neighbors(backup)
        .iter()
        .map(|a| a.peer)
        .filter(|peer| topo.are_linked(*peer, specific))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_event::RngFactory;
    use bobw_topology::{generate, GenConfig};

    fn setup() -> (AddressPlan, Topology, CdnDeployment, SiteId) {
        let (topo, cdn) = generate(&GenConfig::tiny(), &RngFactory::new(1));
        let site = cdn.by_name("bos").unwrap();
        (AddressPlan::default(), topo, cdn, site)
    }

    #[test]
    fn unicast_announces_specific_only() {
        let (plan, topo, cdn, site) = setup();
        let acts = Technique::Unicast.before(&plan, &topo, &cdn, site);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].node, cdn.node(site));
        assert_eq!(acts[0].prefix, plan.specific);
        assert_eq!(acts[0].cfg, OriginConfig::plain());
        assert!(Technique::Unicast
            .after(&plan, &topo, &cdn, site)
            .is_empty());
    }

    #[test]
    fn anycast_announces_from_all_sites() {
        let (plan, topo, cdn, site) = setup();
        let acts = Technique::Anycast.before(&plan, &topo, &cdn, site);
        assert_eq!(acts.len(), cdn.num_sites());
        assert!(acts.iter().all(|a| a.prefix == plan.specific));
        assert!(Technique::Anycast
            .after(&plan, &topo, &cdn, site)
            .is_empty());
    }

    #[test]
    fn superprefix_matches_figure1() {
        let (plan, topo, cdn, site) = setup();
        let acts = Technique::ProactiveSuperprefix.before(&plan, &topo, &cdn, site);
        // specific /24 at the site + /23 from all 8 sites.
        assert_eq!(acts.len(), 1 + cdn.num_sites());
        let specifics: Vec<&Action> = acts.iter().filter(|a| a.prefix == plan.specific).collect();
        assert_eq!(specifics.len(), 1);
        assert_eq!(specifics[0].node, cdn.node(site));
        let coverings = acts.iter().filter(|a| a.prefix == plan.covering).count();
        assert_eq!(coverings, cdn.num_sites());
        assert!(Technique::ProactiveSuperprefix
            .after(&plan, &topo, &cdn, site)
            .is_empty());
    }

    #[test]
    fn reactive_anycast_reacts_from_all_other_sites() {
        let (plan, topo, cdn, site) = setup();
        let before = Technique::ReactiveAnycast.before(&plan, &topo, &cdn, site);
        assert_eq!(before.len(), 1);
        let after = Technique::ReactiveAnycast.after(&plan, &topo, &cdn, site);
        assert_eq!(after.len(), cdn.num_sites() - 1);
        assert!(after.iter().all(|a| a.prefix == plan.specific));
        assert!(after.iter().all(|a| a.node != cdn.node(site)));
    }

    #[test]
    fn prepending_prepends_only_backups() {
        let (plan, topo, cdn, site) = setup();
        let t = Technique::ProactivePrepending {
            prepends: 3,
            selective: false,
        };
        let acts = t.before(&plan, &topo, &cdn, site);
        assert_eq!(acts.len(), cdn.num_sites());
        for a in &acts {
            if a.node == cdn.node(site) {
                assert_eq!(a.cfg.prepend, 0);
            } else {
                assert_eq!(a.cfg.prepend, 3);
                assert!(a.cfg.export_to.is_none());
            }
        }
        assert!(t.after(&plan, &topo, &cdn, site).is_empty());
    }

    #[test]
    fn selective_prepending_restricts_to_shared_neighbors() {
        let (plan, topo, cdn, site) = setup();
        let t = Technique::ProactivePrepending {
            prepends: 3,
            selective: true,
        };
        let acts = t.before(&plan, &topo, &cdn, site);
        for a in &acts {
            if a.node == cdn.node(site) {
                continue;
            }
            let set = a.cfg.export_to.as_ref().expect("selective export set");
            for n in set {
                assert!(topo.are_linked(*n, cdn.node(site)));
                assert!(topo.are_linked(*n, a.node));
            }
        }
    }

    #[test]
    fn combined_is_superprefix_plus_reactive() {
        let (plan, topo, cdn, site) = setup();
        let before = Technique::Combined.before(&plan, &topo, &cdn, site);
        assert_eq!(before.len(), 1 + cdn.num_sites());
        let after = Technique::Combined.after(&plan, &topo, &cdn, site);
        assert_eq!(after.len(), cdn.num_sites() - 1);
    }

    #[test]
    fn risk_classification_matches_table2() {
        assert!(Technique::ReactiveAnycast.requires_global_reconfiguration());
        assert!(Technique::Combined.requires_global_reconfiguration());
        assert!(!Technique::Anycast.requires_global_reconfiguration());
        assert!(!Technique::Unicast.requires_global_reconfiguration());
        assert!(!Technique::ProactiveSuperprefix.requires_global_reconfiguration());
        assert!(!Technique::ProactivePrepending {
            prepends: 3,
            selective: false
        }
        .requires_global_reconfiguration());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Technique::Anycast.name(), "anycast");
        assert_eq!(
            Technique::ProactivePrepending {
                prepends: 5,
                selective: false
            }
            .name(),
            "proactive-prepending-5"
        );
        assert_eq!(
            Technique::ProactiveMed { med: 50 }.name(),
            "proactive-med-50"
        );
        assert_eq!(
            Technique::ProactiveNoExport { prepends: 3 }.name(),
            "proactive-noexport-3"
        );
        assert_eq!(Technique::figure2_set().len(), 4);
    }

    #[test]
    fn noexport_variant_tags_backups_only() {
        let (plan, topo, cdn, site) = setup();
        let t = Technique::ProactiveNoExport { prepends: 3 };
        let acts = t.before(&plan, &topo, &cdn, site);
        // specific at the site + covering everywhere + scoped backups.
        assert_eq!(acts.len(), 2 * cdn.num_sites());
        for a in &acts {
            if a.prefix == plan.covering {
                assert!(!a.cfg.no_export, "covering prefix must propagate");
                continue;
            }
            if a.node == cdn.node(site) {
                assert!(!a.cfg.no_export);
                assert_eq!(a.cfg.prepend, 0);
            } else {
                assert!(a.cfg.no_export);
                assert_eq!(a.cfg.prepend, 3);
            }
        }
        assert!(t.after(&plan, &topo, &cdn, site).is_empty());
        assert!(!t.requires_global_reconfiguration());
    }

    #[test]
    fn med_variant_sets_med_on_backups_only() {
        let (plan, topo, cdn, site) = setup();
        let t = Technique::ProactiveMed { med: 100 };
        let acts = t.before(&plan, &topo, &cdn, site);
        assert_eq!(acts.len(), cdn.num_sites());
        for a in &acts {
            assert_eq!(a.cfg.prepend, 0, "MED variant must not prepend");
            if a.node == cdn.node(site) {
                assert_eq!(a.cfg.med, 0);
            } else {
                assert_eq!(a.cfg.med, 100);
            }
        }
        assert!(t.after(&plan, &topo, &cdn, site).is_empty());
        assert!(!t.requires_global_reconfiguration());
    }
}
