//! The failover experiment harness (§5.2) — the machinery behind Figures 2
//! and 5.
//!
//! For one ⟨technique, failed site⟩ pair:
//!
//! 1. advertise the technique's before-failure announcements plus the two
//!    measurement prefixes, and run BGP to convergence (the paper waits an
//!    hour; in a discrete-event world, "run to idle");
//! 2. select targets (§5.1) and run the reachability test, keeping the
//!    targets the technique routes to the failed site (its *controllable*
//!    set);
//! 3. fail the site: mark it down on the data plane and withdraw all its
//!    announcements; after the CDN's detection delay, apply the
//!    technique's reactions (reactive-anycast's new announcements);
//! 4. probe every controllable target every ~1.5 s for ~600 s via
//!    Verfploeter-style pings sourced at a surviving site;
//! 5. extract per-target reconnection and failover times.

use bobw_bgp::{BgpEvent, BgpSim, BgpTimingConfig};
use bobw_dataplane::walk;
use bobw_dataplane::{
    probe_once, ForwardEnv, ProbeConfig, ProbeLog, ProbeOutcome, ProbeRecord, SiteCapture,
};
use bobw_event::{Engine, Handler, RngFactory, Scheduler, SimDuration, SimTime};
use bobw_net::NodeId;
use bobw_topology::{generate, CdnDeployment, GenConfig, SiteId, Topology};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::metrics::{analyze_target, TargetOutcome};
use crate::plan::AddressPlan;
use crate::targets::select_targets;
use crate::technique::{Action, Technique};

/// A botched reactive reconfiguration (see `ExperimentConfig::reaction_fault`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReactionFault {
    /// The first `n` backup sites never get the new configuration (partial
    /// rollout / automation failure).
    SkipSites(usize),
    /// Every backup site announces the *covering* prefix instead of the
    /// failed site's specific one — a one-line config typo. Longest-prefix
    /// match makes the mistake silent at the announcing sites and fatal
    /// for the clients (the Amazon-typo class of outage the paper cites).
    WrongPrefix,
}

/// How the site fails (§4 assumes graceful withdrawal; the silent-crash
/// mode probes what happens when the router dies without saying goodbye
/// and neighbors must discover it via the BGP hold timer — the case that
/// makes the paper's "real-time monitoring system" requirement bite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureMode {
    /// The failing site withdraws all its announcements (paper default).
    GracefulWithdrawal,
    /// The site crashes silently: all its links drop, no withdrawals are
    /// sent, and each neighbor purges its routes only when its hold timer
    /// expires (`BgpTimingConfig::hold_time_s`).
    SilentCrash,
}

/// Experiment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    pub gen: GenConfig,
    pub timing: BgpTimingConfig,
    pub probe: ProbeConfig,
    pub plan: AddressPlan,
    /// Target-count cap per site (paper: 50k; scaled to the topology).
    pub targets_per_site: usize,
    /// Site-proximity criterion in milliseconds RTT (paper: 50 ms).
    pub proximity_ms: f64,
    /// Delay between the failure and the CDN's reactive reconfiguration
    /// (outage detection + control-system actuation).
    pub detection_delay: SimDuration,
    /// How the site fails.
    pub failure_mode: FailureMode,
    /// Fault injected into the post-failure reaction — the §4/§7 "risk"
    /// of reactive-anycast made measurable ("simultaneous global
    /// configuration changes are operationally treacherous"). `None` = the
    /// reaction executes cleanly.
    pub reaction_fault: Option<ReactionFault>,
    /// Number of withdraw/re-announce cycles the site goes through before
    /// the final failure (maintenance churn / partial outages). With
    /// route-flap damping enabled, these pre-failure flaps push the
    /// prefix's penalty toward suppression — the damping ablation's
    /// scenario.
    pub pre_failure_flaps: u32,
    pub seed: u64,
    /// Event budget per engine phase (runaway protection).
    pub max_events: u64,
}

impl ExperimentConfig {
    /// Small topology, shortened probing window — integration tests and
    /// quick benches.
    pub fn quick(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            gen: GenConfig::small(),
            timing: BgpTimingConfig::default(),
            probe: ProbeConfig::quick(),
            plan: AddressPlan::default(),
            targets_per_site: 150,
            proximity_ms: 50.0,
            detection_delay: SimDuration::from_secs(2),
            failure_mode: FailureMode::GracefulWithdrawal,
            reaction_fault: None,
            pre_failure_flaps: 0,
            seed,
            max_events: 50_000_000,
        }
    }

    /// The full reproduction scale.
    pub fn eval(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            gen: GenConfig::eval(),
            timing: BgpTimingConfig::default(),
            probe: ProbeConfig::default(),
            plan: AddressPlan::default(),
            targets_per_site: 400,
            proximity_ms: 50.0,
            detection_delay: SimDuration::from_secs(2),
            failure_mode: FailureMode::GracefulWithdrawal,
            reaction_fault: None,
            pre_failure_flaps: 0,
            seed,
            max_events: 200_000_000,
        }
    }
}

/// A generated topology + CDN deployment shared by all runs of a config
/// (the paper reuses the same PEERING deployment across techniques).
pub struct Testbed {
    pub cfg: ExperimentConfig,
    pub topo: Topology,
    pub cdn: CdnDeployment,
    pub rng: RngFactory,
    /// High-water mark of event-queue depth over every cell run on this
    /// testbed so far; later cells preallocate their queues to this depth.
    /// Purely an allocation hint — results never depend on it (cells on the
    /// same testbed are statistically alike, so one cell's peak is a good
    /// starting capacity for the next).
    queue_hint: AtomicUsize,
}

impl Testbed {
    pub fn new(cfg: ExperimentConfig) -> Testbed {
        let rng = RngFactory::new(cfg.seed);
        let (topo, cdn) = generate(&cfg.gen, &rng);
        Testbed {
            cfg,
            topo,
            cdn,
            rng,
            queue_hint: AtomicUsize::new(0),
        }
    }

    /// Starting capacity for the next cell's event queue (0 until a cell
    /// has completed).
    pub fn queue_capacity_hint(&self) -> usize {
        self.queue_hint.load(Ordering::Relaxed)
    }

    /// Folds a finished cell's [`Engine::peak_pending`] into the hint.
    /// Relaxed atomics: the hint is monotone and approximate by design —
    /// racing cells at worst preallocate a little less.
    ///
    /// [`Engine::peak_pending`]: bobw_event::Engine::peak_pending
    pub(crate) fn note_peak_queue_depth(&self, depth: usize) {
        self.queue_hint.fetch_max(depth, Ordering::Relaxed);
    }

    /// Site id by paper name (`"sea1"`), panicking on typos.
    pub fn site(&self, name: &str) -> SiteId {
        self.cdn
            .by_name(name)
            .unwrap_or_else(|| panic!("unknown site {name}"))
    }
}

/// The result of one ⟨technique, failed site⟩ failover run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverResult {
    pub technique: String,
    pub site_name: String,
    pub failed_site: SiteId,
    /// Targets meeting the §5.1 criteria (before the per-site cap).
    pub num_candidates: usize,
    /// Targets probed for control (after the cap).
    pub num_selected: usize,
    /// Targets the technique routed to the site before failure — the set
    /// that is then probed through the failure.
    pub num_controllable: usize,
    /// Per-controllable-target outcomes (same order as `controllable`).
    pub outcomes: Vec<TargetOutcome>,
    pub t_fail: SimTime,
}

impl FailoverResult {
    /// Fraction of selected targets the technique could steer to the site.
    pub fn control_fraction(&self) -> f64 {
        if self.num_selected == 0 {
            0.0
        } else {
            self.num_controllable as f64 / self.num_selected as f64
        }
    }

    /// Reconnection times in seconds (reconnected targets only).
    pub fn reconnection_secs(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.reconnection)
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Failover times in seconds (stabilized targets only).
    pub fn failover_secs(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.failover)
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Fraction of controllable targets that never reconnected.
    pub fn never_reconnected_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.reconnection.is_none())
            .count() as f64
            / self.outcomes.len() as f64
    }
}

/// Composite simulation events: BGP plus the experiment's own actions.
enum SimEvent {
    Bgp(BgpEvent),
    /// Pre-failure churn: the site withdraws everything it announces...
    FlapDown,
    /// ...and re-announces it shortly after.
    FlapUp,
    FailSite,
    React,
    ProbeRound(u32),
}

struct Run<'a> {
    topo: &'a Topology,
    cdn: &'a CdnDeployment,
    plan: &'a AddressPlan,
    bgp: BgpSim,
    down: Vec<NodeId>,
    targets: Vec<NodeId>,
    prober: NodeId,
    failed_node: NodeId,
    failure_mode: FailureMode,
    reactions: Vec<Action>,
    /// The failed site's own before-failure announcements, re-played by
    /// `FlapUp` events.
    site_announcements: Vec<Action>,
    log: ProbeLog,
    capture: SiteCapture,
    scratch: Vec<(SimDuration, BgpEvent)>,
}

impl Run<'_> {
    fn drain_bgp(&mut self, sched: &mut Scheduler<'_, SimEvent>) {
        for (d, e) in self.scratch.drain(..) {
            sched.after(d, SimEvent::Bgp(e));
        }
    }
}

impl Handler<SimEvent> for Run<'_> {
    fn handle(&mut self, now: SimTime, event: SimEvent, sched: &mut Scheduler<'_, SimEvent>) {
        match event {
            SimEvent::Bgp(e) => {
                self.bgp.handle(now, e, &mut self.scratch);
                self.drain_bgp(sched);
            }
            SimEvent::FlapDown => {
                for prefix in self.bgp.node(self.failed_node).originated_prefixes() {
                    self.bgp
                        .withdraw(now, self.failed_node, prefix, &mut self.scratch);
                }
                self.drain_bgp(sched);
            }
            SimEvent::FlapUp => {
                for a in &self.site_announcements.clone() {
                    self.bgp
                        .announce(now, a.node, a.prefix, a.cfg.clone(), &mut self.scratch);
                }
                self.drain_bgp(sched);
            }
            SimEvent::FailSite => {
                // The site dies: data plane drops everything arriving there.
                self.down.push(self.failed_node);
                match self.failure_mode {
                    FailureMode::GracefulWithdrawal => {
                        // Its router withdraws all announcements (§4).
                        for prefix in self.bgp.node(self.failed_node).originated_prefixes() {
                            self.bgp
                                .withdraw(now, self.failed_node, prefix, &mut self.scratch);
                        }
                    }
                    FailureMode::SilentCrash => {
                        // Every link drops with no goodbye; the neighbors'
                        // hold timers do the discovering.
                        let peers: Vec<NodeId> = self
                            .topo
                            .neighbors(self.failed_node)
                            .iter()
                            .map(|a| a.peer)
                            .collect();
                        self.bgp
                            .fail_node_links(now, self.failed_node, &peers, &mut self.scratch);
                    }
                }
                self.drain_bgp(sched);
            }
            SimEvent::React => {
                let reactions = std::mem::take(&mut self.reactions);
                for a in &reactions {
                    self.bgp
                        .announce(now, a.node, a.prefix, a.cfg.clone(), &mut self.scratch);
                }
                self.drain_bgp(sched);
            }
            SimEvent::ProbeRound(seq) => {
                let mut outcomes = Vec::with_capacity(self.targets.len());
                {
                    let env = ForwardEnv {
                        topo: self.topo,
                        bgp: &self.bgp,
                        down: &self.down,
                    };
                    for &target in &self.targets {
                        outcomes.push(probe_once(
                            &env,
                            self.cdn,
                            self.topo,
                            self.prober,
                            target,
                            self.plan.probe_addr(),
                            now,
                        ));
                    }
                }
                for (i, outcome) in outcomes.into_iter().enumerate() {
                    if let ProbeOutcome::Received { site, at } = outcome {
                        self.capture.record(site, at, i as u32, seq);
                    }
                    self.log.push(
                        i,
                        ProbeRecord {
                            seq,
                            sent: now,
                            outcome,
                        },
                    );
                }
            }
        }
    }
}

/// Applies a configured [`ReactionFault`] to the technique's reaction set.
fn apply_reaction_fault(
    mut reactions: Vec<Action>,
    fault: Option<ReactionFault>,
    plan: &AddressPlan,
) -> Vec<Action> {
    match fault {
        None => reactions,
        Some(ReactionFault::SkipSites(n)) => {
            // The first n sites' automation never fires.
            reactions.drain(..n.min(reactions.len()));
            reactions
        }
        Some(ReactionFault::WrongPrefix) => {
            for a in &mut reactions {
                a.prefix = plan.covering;
            }
            reactions
        }
    }
}

/// Per-cell performance counters captured alongside a failover experiment.
///
/// Kept OUT of [`FailoverResult`] on purpose: wall-clock time is
/// host-dependent, and `results/*.json` must stay byte-identical across
/// `--jobs` settings and machines. Perf data flows to `results/SUMMARY.md`
/// and `BENCH_*.json` artifacts instead.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CellPerf {
    /// Simulator events processed by the cell's engine.
    pub events_processed: u64,
    /// High-water mark of the cell's event queue.
    pub peak_queue_depth: usize,
    /// Host wall-clock time for the whole cell, in microseconds.
    pub wall_micros: u64,
}

impl CellPerf {
    pub const ZERO: CellPerf = CellPerf {
        events_processed: 0,
        peak_queue_depth: 0,
        wall_micros: 0,
    };

    /// Fold another cell's counters into an aggregate: events add up, queue
    /// depth takes the max, wall time adds up (total CPU-side work).
    pub fn absorb(&mut self, other: &CellPerf) {
        self.events_processed += other.events_processed;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.wall_micros += other.wall_micros;
    }
}

/// Runs one failover experiment. See the module docs for the protocol.
pub fn run_failover(testbed: &Testbed, technique: &Technique, failed: SiteId) -> FailoverResult {
    run_failover_instrumented(testbed, technique, failed).0
}

/// [`run_failover`] plus the cell's perf counters (event count, peak queue
/// depth, wall time). The experiment result itself is unaffected.
pub fn run_failover_instrumented(
    testbed: &Testbed,
    technique: &Technique,
    failed: SiteId,
) -> (FailoverResult, CellPerf) {
    let wall_start = std::time::Instant::now();
    let cfg = &testbed.cfg;
    cfg.plan.validate();
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let plan = &cfg.plan;
    let failed_node = cdn.node(failed);

    let mut engine: Engine<SimEvent> = Engine::with_capacity(testbed.queue_capacity_hint());
    let mut run = Run {
        topo,
        cdn,
        plan,
        bgp: BgpSim::new(topo, cfg.timing.clone(), &testbed.rng),
        down: Vec::new(),
        targets: Vec::new(),
        prober: NodeId(0), // set after target selection
        failed_node,
        failure_mode: cfg.failure_mode,
        reactions: apply_reaction_fault(
            technique.after(plan, topo, cdn, failed),
            cfg.reaction_fault,
            plan,
        ),
        site_announcements: Vec::new(),
        log: ProbeLog::new(0),
        capture: SiteCapture::new(cdn.num_sites()),
        scratch: Vec::with_capacity(64),
    };

    // --- Phase 1: announce and converge. ---
    let mut initial: Vec<Action> = technique.before(plan, topo, cdn, failed);
    // Measurement prefixes: RTT probe unicast from the site under test,
    // anycast probe from every site.
    initial.push(Action {
        node: failed_node,
        prefix: plan.rtt_probe,
        cfg: bobw_bgp::OriginConfig::plain(),
    });
    for site in cdn.sites() {
        initial.push(Action {
            node: cdn.node(site),
            prefix: plan.anycast_probe,
            cfg: bobw_bgp::OriginConfig::plain(),
        });
    }
    for a in &initial {
        run.bgp.announce(
            engine.now(),
            a.node,
            a.prefix,
            a.cfg.clone(),
            &mut run.scratch,
        );
    }
    let pending: Vec<(SimDuration, BgpEvent)> = run.scratch.drain(..).collect();
    for (d, e) in pending {
        engine.schedule_after(d, SimEvent::Bgp(e));
    }
    engine.run_to_idle(&mut run, cfg.max_events);

    // --- Phase 2: target selection + reachability (control) test. ---
    let require_not_anycast = !matches!(technique, Technique::Anycast);
    let candidates = select_targets(
        topo,
        cdn,
        &run.bgp,
        plan,
        failed,
        cfg.proximity_ms,
        require_not_anycast,
        usize::MAX,
        &testbed.rng,
    );
    let num_candidates = candidates.len();
    let selected = select_targets(
        topo,
        cdn,
        &run.bgp,
        plan,
        failed,
        cfg.proximity_ms,
        require_not_anycast,
        cfg.targets_per_site,
        &testbed.rng,
    );
    let num_selected = selected.len();
    let controllable: Vec<NodeId> = {
        let env = ForwardEnv {
            topo,
            bgp: &run.bgp,
            down: &run.down,
        };
        selected
            .into_iter()
            .filter(|t| {
                walk(&env, *t, plan.probe_addr())
                    .delivered_to()
                    .and_then(|n| cdn.site_at(n))
                    == Some(failed)
            })
            .collect()
    };
    run.targets = controllable;
    run.log = ProbeLog::new(run.targets.len());
    // Probe from the first surviving site (the paper probes "from a
    // Peering site other than the failed one").
    run.prober = cdn
        .other_sites(failed)
        .map(|s| cdn.node(s))
        .next()
        .expect("at least two sites");

    // The failed site's own announcements (replayed by pre-failure flaps).
    run.site_announcements = initial
        .iter()
        .filter(|a| a.node == failed_node)
        .cloned()
        .collect();

    // --- Phase 3: (optional churn,) fail the site, react, probe. ---
    let mut t_fail = engine.now() + SimDuration::from_secs(10);
    for k in 0..cfg.pre_failure_flaps {
        let down = engine.now() + SimDuration::from_secs(10 + 30 * k as u64);
        engine.schedule_at(down, SimEvent::FlapDown);
        engine.schedule_at(down + SimDuration::from_secs(10), SimEvent::FlapUp);
    }
    if cfg.pre_failure_flaps > 0 {
        t_fail = engine.now() + SimDuration::from_secs(10 + 30 * cfg.pre_failure_flaps as u64);
    }
    engine.schedule_at(t_fail, SimEvent::FailSite);
    if !run.reactions.is_empty() {
        engine.schedule_at(t_fail + cfg.detection_delay, SimEvent::React);
    }
    let rounds = cfg.probe.probes_per_target();
    for k in 0..rounds {
        engine.schedule_at(
            t_fail + cfg.probe.interval.saturating_mul(k as u64),
            SimEvent::ProbeRound(k),
        );
    }
    engine.run_until(&mut run, t_fail + cfg.probe.duration, cfg.max_events);

    // --- Phase 4: metrics. ---
    let outcomes: Vec<TargetOutcome> = (0..run.log.num_targets())
        .map(|i| analyze_target(run.log.for_target(i), t_fail))
        .collect();

    let result = FailoverResult {
        technique: technique.name(),
        site_name: cdn.name(failed).to_string(),
        failed_site: failed,
        num_candidates,
        num_selected,
        num_controllable: run.targets.len(),
        outcomes,
        t_fail,
    };
    testbed.note_peak_queue_depth(engine.peak_pending());
    let perf = CellPerf {
        events_processed: engine.processed(),
        peak_queue_depth: engine.peak_pending(),
        wall_micros: wall_start.elapsed().as_micros() as u64,
    };
    (result, perf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_testbed() -> Testbed {
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 40;
        Testbed::new(cfg)
    }

    #[test]
    fn reactive_anycast_full_control_and_recovery() {
        let tb = quick_testbed();
        let site = tb.site("bos");
        let r = run_failover(&tb, &Technique::ReactiveAnycast, site);
        assert!(r.num_selected > 0, "no targets selected");
        // Unicast-prefix techniques control every target.
        assert!(
            r.control_fraction() > 0.99,
            "reactive-anycast should control all targets: {}",
            r.control_fraction()
        );
        // The vast majority of targets reconnect within the window.
        assert!(
            r.never_reconnected_fraction() < 0.1,
            "too many targets never reconnected: {}",
            r.never_reconnected_fraction()
        );
        // Reconnection times are positive and bounded by the window.
        for s in r.reconnection_secs() {
            assert!((0.0..=130.0).contains(&s), "{s}");
        }
        // Final sites are never the failed one.
        for o in &r.outcomes {
            assert_ne!(o.final_site, Some(site));
        }
    }

    #[test]
    fn anycast_controllable_set_is_its_catchment() {
        let tb = quick_testbed();
        let site = tb.site("ams");
        let r = run_failover(&tb, &Technique::Anycast, site);
        // ams is well connected: its anycast catchment includes nearby
        // clients, so some targets must be controllable...
        assert!(r.num_controllable > 0);
        // ...but anycast cannot steer everyone (that is the whole point).
        assert!(
            r.control_fraction() < 1.0,
            "anycast controlling everything is wrong: {}",
            r.control_fraction()
        );
    }

    #[test]
    fn prepending_loses_some_control() {
        let tb = quick_testbed();
        let site = tb.site("sea1");
        let t = Technique::ProactivePrepending {
            prepends: 3,
            selective: false,
        };
        let r = run_failover(&tb, &t, site);
        assert!(r.num_selected > 0);
        // sea1's profile (mostly peers at a commercial IX, with R&E-backed
        // sea2 nearby) must lose a meaningful share of targets.
        assert!(
            r.control_fraction() < 0.9,
            "sea1 prepending control suspiciously high: {}",
            r.control_fraction()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let tb = quick_testbed();
        let site = tb.site("bos");
        let a = run_failover(&tb, &Technique::Anycast, site);
        let b = run_failover(&tb, &Technique::Anycast, site);
        assert_eq!(a.num_controllable, b.num_controllable);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn queue_preallocation_hint_does_not_change_results() {
        // A cold testbed (hint 0) and a warm one (hint fed by a previous
        // cell) must produce byte-identical results — the hint is a pure
        // allocation optimization.
        let cold = quick_testbed();
        let warm = quick_testbed();
        let site = warm.site("bos");
        assert_eq!(warm.queue_capacity_hint(), 0);
        let (first, perf) = run_failover_instrumented(&warm, &Technique::Anycast, site);
        assert_eq!(
            warm.queue_capacity_hint(),
            perf.peak_queue_depth,
            "the finished cell's peak must become the hint"
        );
        // Second run on the warm testbed starts with a preallocated queue.
        let (second, _) = run_failover_instrumented(&warm, &Technique::Anycast, site);
        let (reference, _) = run_failover_instrumented(&cold, &Technique::Anycast, site);
        let dump = |r: &FailoverResult| format!("{r:?}");
        assert_eq!(dump(&second), dump(&first));
        assert_eq!(dump(&second), dump(&reference));
    }
}
