//! The failover experiment harness (§5.2) — the machinery behind Figures 2
//! and 5.
//!
//! For one ⟨technique, failed site⟩ pair:
//!
//! 1. advertise the technique's before-failure announcements plus the two
//!    measurement prefixes, and run BGP to convergence (the paper waits an
//!    hour; in a discrete-event world, "run to idle");
//! 2. select targets (§5.1) and run the reachability test, keeping the
//!    targets the technique routes to the failed site (its *controllable*
//!    set);
//! 3. fail the site: mark it down on the data plane and withdraw all its
//!    announcements; after the CDN's detection delay, apply the
//!    technique's reactions (reactive-anycast's new announcements);
//! 4. probe every controllable target every ~1.5 s for ~600 s via
//!    Verfploeter-style pings sourced at a surviving site;
//! 5. extract per-target reconnection and failover times.

use bobw_bgp::{BgpEvent, BgpSim, BgpTimingConfig};
use bobw_dataplane::walk;
use bobw_dataplane::{
    probe_path, ForwardEnv, ProbeConfig, ProbeLog, ProbeOutcome, ProbeRecord, SiteCapture,
};
use bobw_dns::Authoritative;
use bobw_event::{Engine, Handler, RngFactory, Scheduler, SimDuration, SimTime};
use bobw_net::NodeId;
use bobw_scenario::{compile as compile_scenario, FaultOp, Scenario};
use bobw_topology::{generate, CdnDeployment, GenConfig, SiteId, Topology};
use bobw_traffic::{Steering, Surge, TrafficConfig, TrafficSim, TrafficSummary};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::metrics::{analyze_target, TargetOutcome};
use crate::plan::AddressPlan;
use crate::targets::select_targets_counted;
use crate::technique::{Action, Technique};

/// A botched reactive reconfiguration (see `ExperimentConfig::reaction_fault`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReactionFault {
    /// The first `n` backup sites never get the new configuration (partial
    /// rollout / automation failure).
    SkipSites(usize),
    /// Every backup site announces the *covering* prefix instead of the
    /// failed site's specific one — a one-line config typo. Longest-prefix
    /// match makes the mistake silent at the announcing sites and fatal
    /// for the clients (the Amazon-typo class of outage the paper cites).
    WrongPrefix,
}

/// How the site fails (§4 assumes graceful withdrawal; the silent-crash
/// mode probes what happens when the router dies without saying goodbye
/// and neighbors must discover it via the BGP hold timer — the case that
/// makes the paper's "real-time monitoring system" requirement bite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureMode {
    /// The failing site withdraws all its announcements (paper default).
    GracefulWithdrawal,
    /// The site crashes silently: all its links drop, no withdrawals are
    /// sent, and each neighbor purges its routes only when its hold timer
    /// expires (`BgpTimingConfig::hold_time_s`).
    SilentCrash,
}

/// Which BGP session model the simulator runs.
///
/// `Abstract` is the legacy adjacency model: sessions are booleans, faults
/// flip them, and no session-management traffic exists. It is the default
/// everywhere and reproduces every checked-in `results/*.json`
/// byte-identically — selecting it draws no extra RNG values and schedules
/// no extra events. `MessageLevel` runs the `bobw-session` subsystem: every
/// adjacency is a pair of RFC 4271 finite-state machines exchanging
/// OPEN/KEEPALIVE/NOTIFICATION messages through the wire codec, link faults
/// become TCP failures discovered by hold timers, and the session-fault
/// scenario actions (`HalfOpen`, `GracefulRestart`, `NotifyReset`,
/// `HijackAnnounce`) gain their full FSM semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionModel {
    /// Boolean adjacencies (legacy, byte-identical to pre-session results).
    #[default]
    Abstract,
    /// Per-peer FSMs + wire codec (`bobw-session`).
    MessageLevel,
}

/// Experiment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    pub gen: GenConfig,
    pub timing: BgpTimingConfig,
    pub probe: ProbeConfig,
    pub plan: AddressPlan,
    /// Target-count cap per site (paper: 50k; scaled to the topology).
    pub targets_per_site: usize,
    /// Site-proximity criterion in milliseconds RTT (paper: 50 ms).
    pub proximity_ms: f64,
    /// Delay between the failure and the CDN's reactive reconfiguration
    /// (outage detection + control-system actuation).
    pub detection_delay: SimDuration,
    /// How the site fails.
    pub failure_mode: FailureMode,
    /// Fault injected into the post-failure reaction — the §4/§7 "risk"
    /// of reactive-anycast made measurable ("simultaneous global
    /// configuration changes are operationally treacherous"). `None` = the
    /// reaction executes cleanly.
    pub reaction_fault: Option<ReactionFault>,
    /// Number of withdraw/re-announce cycles the site goes through before
    /// the final failure (maintenance churn / partial outages). With
    /// route-flap damping enabled, these pre-failure flaps push the
    /// prefix's penalty toward suppression — the damping ablation's
    /// scenario.
    pub pre_failure_flaps: u32,
    /// The fault script to run. `None` runs the paper's baseline — the
    /// measured site fails at t=10 s (after `pre_failure_flaps`
    /// withdraw/re-announce cycles) and the technique reacts
    /// `detection_delay` later — which is exactly
    /// [`Scenario::site_failure`]. Any other scenario injects its scripted
    /// events instead; the measured site, target selection, and probing
    /// protocol stay the same.
    pub scenario: Option<Scenario>,
    /// The demand-driven data plane (site capacity, overload, load-aware
    /// DNS shedding). `None` — the default everywhere — runs the
    /// experiment exactly as before the traffic layer existed: the layer
    /// is strictly observational, so enabling it changes no probe
    /// outcome, but `None` skips even the observation so legacy results
    /// stay byte-identical.
    pub traffic: Option<TrafficConfig>,
    /// Which session model runs (see [`SessionModel`]). `Abstract` — the
    /// default — is byte-identical to the pre-session simulator.
    pub session_model: SessionModel,
    pub seed: u64,
    /// Event budget per engine phase (runaway protection).
    pub max_events: u64,
}

impl ExperimentConfig {
    /// Small topology, shortened probing window — integration tests and
    /// quick benches.
    pub fn quick(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            gen: GenConfig::small(),
            timing: BgpTimingConfig::default(),
            probe: ProbeConfig::quick(),
            plan: AddressPlan::default(),
            targets_per_site: 150,
            proximity_ms: 50.0,
            detection_delay: SimDuration::from_secs(2),
            failure_mode: FailureMode::GracefulWithdrawal,
            reaction_fault: None,
            pre_failure_flaps: 0,
            scenario: None,
            traffic: None,
            session_model: SessionModel::Abstract,
            seed,
            max_events: 50_000_000,
        }
    }

    /// The full reproduction scale.
    pub fn eval(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            gen: GenConfig::eval(),
            timing: BgpTimingConfig::default(),
            probe: ProbeConfig::default(),
            plan: AddressPlan::default(),
            targets_per_site: 400,
            proximity_ms: 50.0,
            detection_delay: SimDuration::from_secs(2),
            failure_mode: FailureMode::GracefulWithdrawal,
            reaction_fault: None,
            pre_failure_flaps: 0,
            scenario: None,
            traffic: None,
            session_model: SessionModel::Abstract,
            seed,
            max_events: 200_000_000,
        }
    }
}

/// A generated topology + CDN deployment shared by all runs of a config
/// (the paper reuses the same PEERING deployment across techniques).
pub struct Testbed {
    pub cfg: ExperimentConfig,
    pub topo: Topology,
    pub cdn: CdnDeployment,
    pub rng: RngFactory,
    /// High-water mark of event-queue depth over every cell run on this
    /// testbed so far; later cells preallocate their queues to this depth.
    /// Purely an allocation hint — results never depend on it (cells on the
    /// same testbed are statistically alike, so one cell's peak is a good
    /// starting capacity for the next).
    queue_hint: AtomicUsize,
    /// Per-technique queue-depth peaks persisted by a *previous* run
    /// (`BENCH_baseline.json`), so even the first cell preallocates.
    /// Same contract as `queue_hint`: allocation only, never results.
    primed_hints: std::collections::BTreeMap<String, usize>,
    /// Per-session MRAI values and per-node RNG streams, sampled once; each
    /// cell stamps its simulator out of this instead of re-deriving ~two
    /// RNG streams per session (`BgpSim::from_seed` is byte-identical to
    /// `BgpSim::new` over the same factory).
    pub(crate) bgp_seed: bobw_bgp::SimSeed,
}

impl Testbed {
    pub fn new(cfg: ExperimentConfig) -> Testbed {
        let rng = RngFactory::new(cfg.seed);
        let (topo, cdn) = generate(&cfg.gen, &rng);
        let bgp_seed = bobw_bgp::SimSeed::new(&topo, &cfg.timing, &rng);
        Testbed {
            cfg,
            topo,
            cdn,
            rng,
            queue_hint: AtomicUsize::new(0),
            primed_hints: std::collections::BTreeMap::new(),
            bgp_seed,
        }
    }

    /// Seeds per-technique queue hints from a persisted baseline (peak
    /// queue depth by technique name). Call before the first cell runs.
    pub fn prime_queue_hints(&mut self, hints: impl IntoIterator<Item = (String, usize)>) {
        self.primed_hints.extend(hints);
    }

    /// Starting capacity for the next cell's event queue (0 until a cell
    /// has completed).
    pub fn queue_capacity_hint(&self) -> usize {
        self.queue_hint.load(Ordering::Relaxed)
    }

    /// Starting capacity for a cell running `technique`: whatever this
    /// run has observed so far, or the primed baseline peak for that
    /// technique — whichever is larger.
    pub fn queue_capacity_hint_for(&self, technique: &str) -> usize {
        self.queue_capacity_hint()
            .max(self.primed_hints.get(technique).copied().unwrap_or(0))
    }

    /// Folds a finished cell's [`Engine::peak_pending`] into the hint.
    /// Relaxed atomics: the hint is monotone and approximate by design —
    /// racing cells at worst preallocate a little less.
    ///
    /// [`Engine::peak_pending`]: bobw_event::Engine::peak_pending
    pub(crate) fn note_peak_queue_depth(&self, depth: usize) {
        self.queue_hint.fetch_max(depth, Ordering::Relaxed);
    }

    /// Site id by paper name (`"sea1"`), panicking on typos.
    pub fn site(&self, name: &str) -> SiteId {
        self.cdn
            .by_name(name)
            .unwrap_or_else(|| panic!("unknown site {name}"))
    }
}

/// The result of one ⟨technique, failed site⟩ failover run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverResult {
    pub technique: String,
    pub site_name: String,
    pub failed_site: SiteId,
    /// Targets meeting the §5.1 criteria (before the per-site cap).
    pub num_candidates: usize,
    /// Targets probed for control (after the cap).
    pub num_selected: usize,
    /// Targets the technique routed to the site before failure — the set
    /// that is then probed through the failure.
    pub num_controllable: usize,
    /// Per-controllable-target outcomes (same order as `controllable`).
    pub outcomes: Vec<TargetOutcome>,
    pub t_fail: SimTime,
    /// The traffic layer's observation of the run (peak utilization, shed
    /// volume, demand weights). `None` when the experiment ran without
    /// the traffic layer.
    pub traffic: Option<TrafficSummary>,
}

impl FailoverResult {
    /// Fraction of selected targets the technique could steer to the site.
    pub fn control_fraction(&self) -> f64 {
        if self.num_selected == 0 {
            0.0
        } else {
            self.num_controllable as f64 / self.num_selected as f64
        }
    }

    /// Reconnection times in seconds (reconnected targets only).
    pub fn reconnection_secs(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.reconnection)
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Failover times in seconds (stabilized targets only).
    pub fn failover_secs(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.failover)
            .map(|d| d.as_secs_f64())
            .collect()
    }

    /// Fraction of controllable targets that never reconnected.
    pub fn never_reconnected_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.reconnection.is_none())
            .count() as f64
            / self.outcomes.len() as f64
    }
}

/// Composite simulation events: BGP plus the scenario's injected faults
/// and the measurement schedule.
enum SimEvent {
    Bgp(BgpEvent),
    /// One compiled scenario op (withdrawal, crash, link cut, drain, …).
    Fault(FaultOp),
    ProbeRound(u32),
    /// One traffic-layer demand tick (only scheduled when the config
    /// enables the traffic layer).
    TrafficTick,
}

/// DNS de-steering state for maintenance-drain scenarios: the CDN's
/// authoritative resolver plus, per target, the instant its cached record
/// expires and it re-resolves (drawn uniformly within the drain TTL).
/// Until then the target keeps connecting to the technique's probe
/// address; after, it connects to whatever the authoritative answers.
struct DrainState {
    auth: Authoritative,
    resolve_at: Vec<Option<SimTime>>,
}

struct Run<'a> {
    topo: &'a Topology,
    cdn: &'a CdnDeployment,
    plan: &'a AddressPlan,
    bgp: BgpSim,
    down: Vec<NodeId>,
    targets: Vec<NodeId>,
    prober: NodeId,
    reactions: Vec<Action>,
    /// Every phase-1 advertisement; `Announce`/`SiteRestore` ops replay a
    /// node's subset of these.
    initial_actions: Vec<Action>,
    /// Present only when the scenario contains a `Drain` op.
    drain: Option<DrainState>,
    /// Present only when the config enables the traffic layer.
    traffic: Option<TrafficSim>,
    /// The measurement anchor (traffic splits peak utilization around it).
    t_fail: SimTime,
    rng: &'a RngFactory,
    log: ProbeLog,
    capture: SiteCapture,
    scratch: Vec<(SimDuration, BgpEvent)>,
    /// Fault ops an op application wants scheduled later (staged React
    /// rollouts); drained onto the event queue by the handler.
    pending_faults: Vec<(SimDuration, FaultOp)>,
    /// Per-target memo of the last probe walk, keyed by (BGP state version,
    /// down-set epoch, destination). The walk is a pure function of that
    /// key, and routing is static between events, so consecutive probe
    /// rounds over a converged network skip the hop-by-hop FIB walk.
    probe_memo: Vec<Option<ProbeMemo>>,
    /// Bumped whenever `down` changes; part of the memo key.
    down_epoch: u64,
}

/// One memoized probe walk: key (version, epoch, dst) and the cached
/// outcome — the answering site and total delay, or `None` for lost.
type ProbeMemo = (u64, u64, u32, Option<(SiteId, SimDuration)>);

impl Run<'_> {
    fn drain_bgp(&mut self, sched: &mut Scheduler<'_, SimEvent>) {
        for (d, e) in self.scratch.drain(..) {
            sched.after(d, SimEvent::Bgp(e));
        }
    }

    fn withdraw_all(&mut self, now: SimTime, node: NodeId) {
        for prefix in self.bgp.node(node).originated_prefixes() {
            self.bgp.withdraw(now, node, prefix, &mut self.scratch);
        }
    }

    fn replay_initial(&mut self, now: SimTime, node: NodeId) {
        let actions: Vec<Action> = self
            .initial_actions
            .iter()
            .filter(|a| a.node == node)
            .cloned()
            .collect();
        for a in &actions {
            self.bgp
                .announce(now, a.node, a.prefix, a.cfg.clone(), &mut self.scratch);
        }
    }

    /// Tells the drain authoritative and the traffic layer (when present)
    /// that a site's status changed.
    fn mark_site(&mut self, node: NodeId, failed: bool) {
        let Some(site) = self.cdn.site_at(node) else {
            return;
        };
        if let Some(d) = &mut self.drain {
            if failed {
                d.auth.mark_failed(site);
            } else {
                d.auth.mark_recovered(site);
            }
        }
        if let Some(tr) = &mut self.traffic {
            if failed {
                tr.site_down(site);
            } else {
                tr.site_up(site);
            }
        }
    }

    /// Applies one compiled scenario op. BGP fallout lands in `scratch`;
    /// the caller drains it onto the event queue.
    fn apply(&mut self, now: SimTime, op: FaultOp) {
        match op {
            FaultOp::Withdraw { node } => self.withdraw_all(now, node),
            FaultOp::Announce { node } => self.replay_initial(now, node),
            FaultOp::SiteFail { node, graceful } => {
                // The site dies: data plane drops everything arriving there.
                if !self.down.contains(&node) {
                    self.down.push(node);
                    self.down_epoch += 1;
                }
                if graceful {
                    // Its router withdraws all announcements (§4).
                    self.withdraw_all(now, node);
                } else {
                    // Every link drops with no goodbye; the neighbors'
                    // hold timers do the discovering.
                    let peers: Vec<NodeId> =
                        self.topo.neighbors(node).iter().map(|a| a.peer).collect();
                    self.bgp
                        .fail_node_links(now, node, &peers, &mut self.scratch);
                }
                self.mark_site(node, true);
            }
            FaultOp::SiteRestore { node } => {
                self.down.retain(|&n| n != node);
                self.down_epoch += 1;
                let peers: Vec<NodeId> = self.topo.neighbors(node).iter().map(|a| a.peer).collect();
                for peer in peers {
                    self.bgp.restore_link(now, node, peer, &mut self.scratch);
                }
                self.replay_initial(now, node);
                self.mark_site(node, false);
            }
            FaultOp::CutLinks { pairs } => {
                for (a, b) in pairs {
                    self.bgp.fail_link(now, a, b, &mut self.scratch);
                }
            }
            FaultOp::RestoreLinks { pairs } => {
                for (a, b) in pairs {
                    self.bgp.restore_link(now, a, b, &mut self.scratch);
                }
            }
            FaultOp::SessionReset { node, peer } => {
                self.bgp.reset_link(now, node, peer, &mut self.scratch);
            }
            FaultOp::HalfOpen { node, peer } => {
                self.bgp.half_open(now, node, peer, &mut self.scratch);
            }
            FaultOp::GracefulRestart { node, restart } => {
                self.bgp
                    .graceful_restart(now, node, restart, &mut self.scratch);
            }
            FaultOp::NotifyReset { node, peer, code } => {
                self.bgp
                    .notify_reset(now, node, peer, code, &mut self.scratch);
            }
            FaultOp::Hijack { node, victim } => {
                // The hijacker originates the victim's prefixes as its own
                // (a plain origin hijack — same route-level semantics under
                // both session models).
                for prefix in self.bgp.node(victim).originated_prefixes() {
                    self.bgp.announce(
                        now,
                        node,
                        prefix,
                        bobw_bgp::OriginConfig::plain(),
                        &mut self.scratch,
                    );
                }
            }
            FaultOp::Drain { node, site, ttl } => {
                // Withdraw the routes, de-steer the clients. Each target's
                // cached record expires at an independent uniform point in
                // the TTL window (the paper's §2 DNS-failover model).
                self.withdraw_all(now, node);
                // The traffic controller steers demand off the draining
                // site the same way DNS steers the probed targets.
                if let Some(tr) = &mut self.traffic {
                    tr.site_down(site);
                }
                if let Some(d) = &mut self.drain {
                    d.auth.mark_failed(site);
                    let ttl_s = ttl.as_secs_f64();
                    for i in 0..d.resolve_at.len() {
                        if d.resolve_at[i].is_none() {
                            let wait = if ttl_s > 0.0 {
                                self.rng
                                    .stream("scenario-desteer", i as u64)
                                    .gen_range(0.0..ttl_s)
                            } else {
                                0.0
                            };
                            d.resolve_at[i] = Some(now + SimDuration::from_secs_f64(wait));
                        }
                    }
                }
            }
            FaultOp::SiteDark { node } => {
                // Machines power off at the end of a drain: data plane
                // down, nothing left to withdraw.
                if !self.down.contains(&node) {
                    self.down.push(node);
                    self.down_epoch += 1;
                }
                self.mark_site(node, true);
            }
            FaultOp::React { skip, stagger } => {
                let mut reactions = std::mem::take(&mut self.reactions);
                reactions.drain(..skip.min(reactions.len()));
                match stagger {
                    None => {
                        // Legacy path: the whole reconfiguration lands at
                        // once.
                        for a in &reactions {
                            self.bgp.announce(
                                now,
                                a.node,
                                a.prefix,
                                a.cfg.clone(),
                                &mut self.scratch,
                            );
                        }
                    }
                    Some(stagger) => {
                        // Staged rollout: one site's action fires now, the
                        // rest keep rolling out one per `stagger`.
                        if reactions.is_empty() {
                            return;
                        }
                        let a = reactions.remove(0);
                        self.bgp
                            .announce(now, a.node, a.prefix, a.cfg.clone(), &mut self.scratch);
                        if !reactions.is_empty() {
                            self.reactions = reactions;
                            self.pending_faults.push((
                                stagger,
                                FaultOp::React {
                                    skip: 0,
                                    stagger: Some(stagger),
                                },
                            ));
                        }
                    }
                }
            }
            FaultOp::Surge {
                region,
                factor,
                ramp,
                duration,
            } => {
                if let Some(tr) = &mut self.traffic {
                    tr.add_surge(Surge {
                        region,
                        factor,
                        start_s: now.as_secs_f64(),
                        ramp_s: ramp.as_secs_f64(),
                        duration_s: duration.as_secs_f64(),
                    });
                }
            }
            FaultOp::DemandShift { region, factor } => {
                if let Some(tr) = &mut self.traffic {
                    tr.shift_region(region, factor);
                }
            }
            FaultOp::CapacityChange { site, factor } => {
                if let Some(tr) = &mut self.traffic {
                    tr.change_capacity(site, factor);
                }
            }
            FaultOp::Scrub {
                capacity_factor,
                duration,
            } => {
                if let Some(tr) = &mut self.traffic {
                    tr.activate_scrub(capacity_factor, now + duration);
                }
            }
        }
    }
}

impl Handler<SimEvent> for Run<'_> {
    fn handle(&mut self, now: SimTime, event: SimEvent, sched: &mut Scheduler<'_, SimEvent>) {
        match event {
            SimEvent::Bgp(e) => {
                self.bgp.handle(now, e, &mut self.scratch);
                self.drain_bgp(sched);
            }
            SimEvent::Fault(op) => {
                self.apply(now, op);
                self.drain_bgp(sched);
                for (after, op) in self.pending_faults.drain(..) {
                    sched.after(after, SimEvent::Fault(op));
                }
            }
            SimEvent::ProbeRound(seq) => {
                let mut outcomes = Vec::with_capacity(self.targets.len());
                if self.probe_memo.len() < self.targets.len() {
                    self.probe_memo.resize(self.targets.len(), None);
                }
                let version = self.bgp.state_version();
                {
                    let env = ForwardEnv {
                        topo: self.topo,
                        bgp: &self.bgp,
                        down: &self.down,
                    };
                    for (i, &target) in self.targets.iter().enumerate() {
                        // A de-steered target connects to the address its
                        // fresh DNS answer names; everyone else to the
                        // technique's probe address.
                        let dst = match &self.drain {
                            Some(d) if d.resolve_at[i].is_some_and(|t| now >= t) => {
                                d.auth.resolve(target, now).map(|answer| answer.addr)
                            }
                            _ => Some(self.plan.probe_addr()),
                        };
                        outcomes.push(match dst {
                            Some(dst) => {
                                let key = (version, self.down_epoch, dst);
                                let path = match self.probe_memo[i] {
                                    Some((v, e, d, p)) if (v, e, d) == key => p,
                                    _ => {
                                        let p = probe_path(
                                            &env,
                                            self.cdn,
                                            self.topo,
                                            self.prober,
                                            target,
                                            dst,
                                        );
                                        self.probe_memo[i] = Some((key.0, key.1, key.2, p));
                                        p
                                    }
                                };
                                match path {
                                    Some((site, delay)) => ProbeOutcome::Received {
                                        site,
                                        at: now + delay,
                                    },
                                    None => ProbeOutcome::Lost,
                                }
                            }
                            // Every candidate site is failed: no answer,
                            // nowhere to connect.
                            None => ProbeOutcome::Lost,
                        });
                    }
                }
                for (i, outcome) in outcomes.into_iter().enumerate() {
                    if let ProbeOutcome::Received { site, at } = outcome {
                        self.capture.record(site, at, i as u32, seq);
                    }
                    self.log.push(
                        i,
                        ProbeRecord {
                            seq,
                            sent: now,
                            outcome,
                        },
                    );
                }
            }
            SimEvent::TrafficTick => {
                // Strictly observational: reads the FIBs through the same
                // ForwardEnv the prober uses, mutates only traffic state.
                let Run {
                    traffic,
                    topo,
                    bgp,
                    down,
                    cdn,
                    plan,
                    rng,
                    t_fail,
                    ..
                } = self;
                if let Some(tr) = traffic {
                    let env = ForwardEnv { topo, bgp, down };
                    tr.on_tick(now, *t_fail, rng, |client| {
                        walk(&env, client, plan.probe_addr())
                            .delivered_to()
                            .and_then(|n| cdn.site_at(n))
                    });
                }
            }
        }
    }
}

/// Applies a configured [`ReactionFault`] to the technique's reaction set.
fn apply_reaction_fault(
    mut reactions: Vec<Action>,
    fault: Option<ReactionFault>,
    plan: &AddressPlan,
) -> Vec<Action> {
    match fault {
        None => reactions,
        Some(ReactionFault::SkipSites(n)) => {
            // The first n sites' automation never fires.
            reactions.drain(..n.min(reactions.len()));
            reactions
        }
        Some(ReactionFault::WrongPrefix) => {
            for a in &mut reactions {
                a.prefix = plan.covering;
            }
            reactions
        }
    }
}

/// Per-cell performance counters captured alongside a failover experiment.
///
/// Kept OUT of [`FailoverResult`] on purpose: wall-clock time is
/// host-dependent, and `results/*.json` must stay byte-identical across
/// `--jobs` settings and machines. Perf data flows to `results/SUMMARY.md`
/// and `BENCH_*.json` artifacts instead.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CellPerf {
    /// Simulator events processed by the cell's engine.
    pub events_processed: u64,
    /// High-water mark of the cell's event queue.
    pub peak_queue_depth: usize,
    /// Final capacity of the queue's hot lane — shows whether the
    /// high-water-mark preallocation actually avoided regrowth (capacity
    /// at or near the primed hint means no reallocation happened).
    pub queue_capacity: usize,
    /// Host wall-clock time for the whole cell, in microseconds.
    pub wall_micros: u64,
}

impl CellPerf {
    pub const ZERO: CellPerf = CellPerf {
        events_processed: 0,
        peak_queue_depth: 0,
        queue_capacity: 0,
        wall_micros: 0,
    };

    /// Fold another cell's counters into an aggregate: events add up, queue
    /// depth and capacity take the max, wall time adds up (total CPU-side
    /// work).
    pub fn absorb(&mut self, other: &CellPerf) {
        self.events_processed += other.events_processed;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.queue_capacity = self.queue_capacity.max(other.queue_capacity);
        self.wall_micros += other.wall_micros;
    }
}

/// Runs one failover experiment. See the module docs for the protocol.
pub fn run_failover(testbed: &Testbed, technique: &Technique, failed: SiteId) -> FailoverResult {
    run_failover_instrumented(testbed, technique, failed).0
}

/// [`run_failover`] plus the cell's perf counters (event count, peak queue
/// depth, wall time). The experiment result itself is unaffected.
///
/// Panics on an invalid scenario; [`try_run_failover_instrumented`] is the
/// fallible variant remote workers use.
pub fn run_failover_instrumented(
    testbed: &Testbed,
    technique: &Technique,
    failed: SiteId,
) -> (FailoverResult, CellPerf) {
    try_run_failover_instrumented(testbed, technique, failed).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_failover_instrumented`] that reports scenario compilation errors
/// instead of panicking.
pub fn try_run_failover_instrumented(
    testbed: &Testbed,
    technique: &Technique,
    failed: SiteId,
) -> Result<(FailoverResult, CellPerf), String> {
    let wall_start = std::time::Instant::now();
    let cfg = &testbed.cfg;
    cfg.plan.validate();
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let plan = &cfg.plan;
    let failed_node = cdn.node(failed);

    // The fault script: the config's scenario, or the built-in baseline
    // (which compiles to exactly the schedule the loop used to hard-code).
    let default_scenario;
    let scenario: &Scenario = match &cfg.scenario {
        Some(s) => s,
        None => {
            default_scenario =
                Scenario::site_failure(cfg.detection_delay.as_secs_f64(), cfg.pre_failure_flaps);
            &default_scenario
        }
    };
    let compiled = compile_scenario(
        scenario,
        topo,
        cdn,
        &testbed.rng,
        failed,
        matches!(cfg.failure_mode, FailureMode::GracefulWithdrawal),
    )
    .map_err(|e| format!("scenario {:?}: {e}", scenario.name))?;

    let mut engine: Engine<SimEvent> =
        Engine::with_capacity(testbed.queue_capacity_hint_for(&technique.name()));
    let mut run = Run {
        topo,
        cdn,
        plan,
        bgp: BgpSim::from_seed(topo, cfg.timing.clone(), &testbed.bgp_seed),
        down: Vec::new(),
        targets: Vec::new(),
        prober: NodeId(0), // set after target selection
        reactions: apply_reaction_fault(
            technique.after(plan, topo, cdn, failed),
            cfg.reaction_fault,
            plan,
        ),
        initial_actions: Vec::new(),
        drain: None,
        traffic: None,
        t_fail: SimTime::ZERO,
        rng: &testbed.rng,
        log: ProbeLog::new(0),
        capture: SiteCapture::new(cdn.num_sites()),
        probe_memo: Vec::new(),
        down_epoch: 0,
        scratch: Vec::with_capacity(64),
        pending_faults: Vec::new(),
    };

    // --- Phase 1: announce and converge. ---
    // Message-level model: every adjacency handshakes (OPEN/KEEPALIVE
    // through the wire codec) before — and interleaved with, FIFO ties —
    // the initial announcements, exactly like routers booting up.
    if matches!(cfg.session_model, SessionModel::MessageLevel) {
        run.bgp
            .enable_message_level(bobw_bgp::SessionKnobs::default());
        run.bgp.start_sessions(engine.now(), &mut run.scratch);
    }
    let mut initial: Vec<Action> = technique.before(plan, topo, cdn, failed);
    // Measurement prefixes: RTT probe unicast from the site under test,
    // anycast probe from every site.
    initial.push(Action {
        node: failed_node,
        prefix: plan.rtt_probe,
        cfg: bobw_bgp::OriginConfig::plain(),
    });
    for site in cdn.sites() {
        initial.push(Action {
            node: cdn.node(site),
            prefix: plan.anycast_probe,
            cfg: bobw_bgp::OriginConfig::plain(),
        });
    }
    // Drain scenarios steer clients onto per-site unicast service
    // prefixes; those must be routable before the drain begins.
    if compiled.has_drain() {
        for (i, site) in cdn.sites().enumerate() {
            initial.push(Action {
                node: cdn.node(site),
                prefix: plan.site_prefix(i),
                cfg: bobw_bgp::OriginConfig::plain(),
            });
        }
    }
    for a in &initial {
        run.bgp.announce(
            engine.now(),
            a.node,
            a.prefix,
            a.cfg.clone(),
            &mut run.scratch,
        );
    }
    let pending: Vec<(SimDuration, BgpEvent)> = run.scratch.drain(..).collect();
    for (d, e) in pending {
        engine.schedule_after(d, SimEvent::Bgp(e));
    }
    engine.run_to_idle(&mut run, cfg.max_events);

    // --- Phase 2: target selection + reachability (control) test. ---
    let require_not_anycast = !matches!(technique, Technique::Anycast);
    let (selected, num_candidates) = select_targets_counted(
        topo,
        cdn,
        &run.bgp,
        plan,
        failed,
        cfg.proximity_ms,
        require_not_anycast,
        cfg.targets_per_site,
        &testbed.rng,
    );
    let num_selected = selected.len();
    let controllable: Vec<NodeId> = {
        let env = ForwardEnv {
            topo,
            bgp: &run.bgp,
            down: &run.down,
        };
        selected
            .into_iter()
            .filter(|t| {
                walk(&env, *t, plan.probe_addr())
                    .delivered_to()
                    .and_then(|n| cdn.site_at(n))
                    == Some(failed)
            })
            .collect()
    };
    run.targets = controllable;
    run.log = ProbeLog::new(run.targets.len());
    // Probe from the first surviving site (the paper probes "from a
    // Peering site other than the failed one").
    run.prober = cdn
        .other_sites(failed)
        .map(|s| cdn.node(s))
        .next()
        .expect("at least two sites");

    // The original advertisements (replayed by Announce/SiteRestore ops).
    run.initial_actions = initial;

    // DNS de-steering state, only when the scenario drains a site.
    run.drain = if compiled.has_drain() {
        let ttl = compiled
            .events
            .iter()
            .find_map(|e| match &e.op {
                FaultOp::Drain { ttl, .. } => Some(*ttl),
                _ => None,
            })
            .expect("has_drain");
        let mut auth = Authoritative::new(
            (0..cdn.num_sites()).map(|i| plan.site_prefix(i)).collect(),
            ttl,
        );
        // Every target is mapped to the measured site; on failure the
        // authoritative walks the remaining sites in deployment order.
        let ranking: Vec<SiteId> = cdn.sites().collect();
        for &t in &run.targets {
            auth.assign(t, failed);
            auth.set_fallback(t, ranking.clone());
        }
        Some(DrainState {
            auth,
            resolve_at: vec![None; run.targets.len()],
        })
    } else {
        None
    };

    // --- Phase 3: run the fault script, probing through it. ---
    // Ops are scheduled in compiled order; the engine breaks timestamp
    // ties FIFO, so the script author controls same-instant ordering.
    let t0 = engine.now();
    let t_fail = t0 + compiled.t_fail_offset;
    run.t_fail = t_fail;
    // The traffic layer (when enabled): pure anycast follows the
    // catchment — nothing can shed its load — while every DNS-controlled
    // technique gets the load-aware controller.
    run.traffic = cfg.traffic.as_ref().map(|tc| {
        let steering = if matches!(technique, Technique::Anycast) {
            Steering::Catchment
        } else {
            Steering::Dns
        };
        TrafficSim::new(tc, topo, cdn, &testbed.rng, steering)
    });
    for ev in &compiled.events {
        // A technique with no reaction has nothing for React to fire.
        if matches!(ev.op, FaultOp::React { .. }) && run.reactions.is_empty() {
            continue;
        }
        engine.schedule_at(t0 + ev.at, SimEvent::Fault(ev.op.clone()));
    }
    let rounds = cfg.probe.probes_per_target();
    for k in 0..rounds {
        engine.schedule_at(
            t_fail + cfg.probe.interval.saturating_mul(k as u64),
            SimEvent::ProbeRound(k),
        );
    }
    // Demand ticks span the whole run — pre-failure baseline included —
    // and are scheduled after the fault ops so same-instant faults apply
    // first (FIFO ties): a tick always observes the post-fault world.
    if let Some(tr) = &run.traffic {
        let interval = tr.tick_interval();
        let end = t_fail + cfg.probe.duration;
        let mut k = 0u32;
        loop {
            let at = t0 + interval.saturating_mul(k as u64);
            if at > end {
                break;
            }
            engine.schedule_at(at, SimEvent::TrafficTick);
            k += 1;
        }
    }
    engine.run_until(&mut run, t_fail + cfg.probe.duration, cfg.max_events);

    // --- Phase 4: metrics. ---
    let outcomes: Vec<TargetOutcome> = (0..run.log.num_targets())
        .map(|i| analyze_target(run.log.for_target(i), t_fail))
        .collect();

    let result = FailoverResult {
        technique: technique.name(),
        site_name: cdn.name(failed).to_string(),
        failed_site: failed,
        num_candidates,
        num_selected,
        num_controllable: run.targets.len(),
        outcomes,
        t_fail,
        traffic: run.traffic.as_ref().map(|t| t.summary(&run.targets)),
    };
    testbed.note_peak_queue_depth(engine.peak_pending());
    let perf = CellPerf {
        events_processed: engine.processed(),
        peak_queue_depth: engine.peak_pending(),
        queue_capacity: engine.queue_capacity(),
        wall_micros: wall_start.elapsed().as_micros() as u64,
    };
    Ok((result, perf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_testbed() -> Testbed {
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 40;
        Testbed::new(cfg)
    }

    #[test]
    fn reactive_anycast_full_control_and_recovery() {
        let tb = quick_testbed();
        let site = tb.site("bos");
        let r = run_failover(&tb, &Technique::ReactiveAnycast, site);
        assert!(r.num_selected > 0, "no targets selected");
        // Unicast-prefix techniques control every target.
        assert!(
            r.control_fraction() > 0.99,
            "reactive-anycast should control all targets: {}",
            r.control_fraction()
        );
        // The vast majority of targets reconnect within the window.
        assert!(
            r.never_reconnected_fraction() < 0.1,
            "too many targets never reconnected: {}",
            r.never_reconnected_fraction()
        );
        // Reconnection times are positive and bounded by the window.
        for s in r.reconnection_secs() {
            assert!((0.0..=130.0).contains(&s), "{s}");
        }
        // Final sites are never the failed one.
        for o in &r.outcomes {
            assert_ne!(o.final_site, Some(site));
        }
    }

    #[test]
    fn anycast_controllable_set_is_its_catchment() {
        let tb = quick_testbed();
        let site = tb.site("ams");
        let r = run_failover(&tb, &Technique::Anycast, site);
        // ams is well connected: its anycast catchment includes nearby
        // clients, so some targets must be controllable...
        assert!(r.num_controllable > 0);
        // ...but anycast cannot steer everyone (that is the whole point).
        assert!(
            r.control_fraction() < 1.0,
            "anycast controlling everything is wrong: {}",
            r.control_fraction()
        );
    }

    #[test]
    fn prepending_loses_some_control() {
        let tb = quick_testbed();
        let site = tb.site("sea1");
        let t = Technique::ProactivePrepending {
            prepends: 3,
            selective: false,
        };
        let r = run_failover(&tb, &t, site);
        assert!(r.num_selected > 0);
        // sea1's profile (mostly peers at a commercial IX, with R&E-backed
        // sea2 nearby) must lose a meaningful share of targets.
        assert!(
            r.control_fraction() < 0.9,
            "sea1 prepending control suspiciously high: {}",
            r.control_fraction()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let tb = quick_testbed();
        let site = tb.site("bos");
        let a = run_failover(&tb, &Technique::Anycast, site);
        let b = run_failover(&tb, &Technique::Anycast, site);
        assert_eq!(a.num_controllable, b.num_controllable);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn explicit_baseline_scenario_reproduces_the_legacy_default() {
        // `scenario: None` and an explicit `Scenario::site_failure` must be
        // the same experiment down to the event count — the scenario path
        // IS the legacy path, not an approximation of it.
        let legacy = quick_testbed();
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 40;
        cfg.pre_failure_flaps = 1;
        cfg.scenario = None;
        let mut scripted_cfg = cfg.clone();
        scripted_cfg.scenario = Some(Scenario::site_failure(
            cfg.detection_delay.as_secs_f64(),
            cfg.pre_failure_flaps,
        ));
        let mut legacy_cfg = legacy.cfg.clone();
        legacy_cfg.pre_failure_flaps = 1;
        let legacy = Testbed::new(legacy_cfg);
        let scripted = Testbed::new(scripted_cfg);
        let site = legacy.site("bos");
        for t in [&Technique::ReactiveAnycast, &Technique::Anycast] {
            let (a, pa) = run_failover_instrumented(&legacy, t, site);
            let (b, pb) = run_failover_instrumented(&scripted, t, site);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_eq!(pa.events_processed, pb.events_processed);
        }
    }

    /// Eval-scale variant of the parity check above, driven by the actual
    /// checked-in catalog file: `scenarios/site-failure.json` must
    /// reproduce the hard-coded failure path byte-for-byte (it is the
    /// acceptance gate for replacing the hard-coded failure with the
    /// scenario engine). Several minutes; run explicitly:
    /// `cargo test --release -p bobw-core -- --ignored eval_scale`.
    #[test]
    #[ignore = "eval scale; run explicitly with -- --ignored"]
    fn eval_scale_catalog_baseline_matches_legacy() {
        let file = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../scenarios/site-failure.json");
        let scenario = bobw_scenario::load_file(&file).expect("catalog file loads");
        let cfg = ExperimentConfig::eval(42);
        let mut scripted_cfg = cfg.clone();
        scripted_cfg.scenario = Some(scenario);
        let legacy = Testbed::new(cfg);
        let scripted = Testbed::new(scripted_cfg);
        let site = legacy.site("bos");
        let t = Technique::ReactiveAnycast;
        let (a, pa) = run_failover_instrumented(&legacy, &t, site);
        let (b, pb) = run_failover_instrumented(&scripted, &t, site);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "results/*.json rendering differs between catalog file and legacy path"
        );
        assert_eq!(pa.events_processed, pb.events_processed);
    }

    #[test]
    fn maintenance_drain_resteers_clients_via_dns() {
        use bobw_scenario::{ScenarioAction, ScenarioEvent};
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 40;
        cfg.scenario = Some(Scenario {
            name: "drain".into(),
            description: String::new(),
            site: "$site".into(),
            measure_from_s: None,
            events: vec![ScenarioEvent {
                at_s: 10.0,
                action: ScenarioAction::Drain {
                    site: "$site".into(),
                    ttl_s: 30.0,
                    shutdown_after_s: 60.0,
                },
            }],
        });
        let tb = Testbed::new(cfg);
        let site = tb.site("bos");
        // ReactiveAnycast with no React event: after the drain withdraws
        // the site's unicast prefix, DNS re-resolution is the only way
        // back — every reconnection observed is the drain machinery.
        let r = run_failover(&tb, &Technique::ReactiveAnycast, site);
        assert!(r.num_controllable > 0);
        assert_eq!(
            r.never_reconnected_fraction(),
            0.0,
            "drained clients must all re-steer within the TTL"
        );
        for s in r.reconnection_secs() {
            // TTL 30 s plus probe quantization and path RTT.
            assert!((0.0..=35.0).contains(&s), "reconnection took {s}s");
        }
        for o in &r.outcomes {
            assert_ne!(o.final_site, Some(site), "still on the drained site");
        }
    }

    #[test]
    fn traffic_layer_is_strictly_observational() {
        // Enabling traffic must change NOTHING the probing experiment
        // measures: same outcomes, same t_fail, same control counts. The
        // only difference is the attached summary.
        let mut with_cfg = ExperimentConfig::quick(7);
        with_cfg.targets_per_site = 40;
        with_cfg.traffic = Some(TrafficConfig::default());
        let without = quick_testbed();
        let with = Testbed::new(with_cfg);
        let site = without.site("bos");
        for t in [&Technique::Anycast, &Technique::ReactiveAnycast] {
            let a = run_failover(&without, t, site);
            let b = run_failover(&with, t, site);
            assert!(a.traffic.is_none());
            let summary = b.traffic.as_ref().expect("traffic enabled");
            assert!(summary.ticks > 0);
            assert_eq!(summary.target_weights.len(), b.outcomes.len());
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.t_fail, b.t_fail);
            assert_eq!(a.num_candidates, b.num_candidates);
            assert_eq!(a.num_selected, b.num_selected);
            assert_eq!(a.num_controllable, b.num_controllable);
        }
    }

    #[test]
    fn overload_cascade_anycast_overloads_weighted_dns_stabilizes() {
        // The Sinha et al. qualitative result. Calibration pass: measure
        // the pre-failure anycast catchment's peak load (as a multiple of
        // the fair share) with absurd headroom, so `peak × headroom` gives
        // the raw load ratio.
        let calibration_headroom = 1000.0;
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 40;
        let mut tc = TrafficConfig {
            diurnal_amplitude: 0.0,
            capacity_headroom: calibration_headroom,
            ..Default::default()
        };
        cfg.traffic = Some(tc.clone());
        // atl's catchment lands almost wholly on ams when it dies, and ams
        // already carries the second-heaviest catchment — the absorber.
        let site = Testbed::new(cfg.clone()).site("atl");
        let calib = run_failover(&Testbed::new(cfg.clone()), &Technique::Anycast, site)
            .traffic
            .unwrap();
        let ratio_before = calib.peak_before() * calibration_headroom;
        let ratio_after = calib.peak_after() * calibration_headroom;
        assert!(
            ratio_after > ratio_before,
            "failing atl must push the absorber past the old peak: {ratio_before} -> {ratio_after}"
        );

        // Provision every site just above the pre-failure anycast peak
        // (utilization ≈ 0.95 at the hottest site) — Sinha's setting.
        tc.capacity_headroom = ratio_before * 1.05;
        cfg.traffic = Some(tc.clone());

        // Pure anycast: BGP dumps the dead site's catchment onto
        // neighbors and nothing can shed it — somewhere goes over 1.0.
        let anycast = run_failover(&Testbed::new(cfg.clone()), &Technique::Anycast, site)
            .traffic
            .unwrap();
        assert!(
            anycast.peak_before() < 1.0,
            "mis-calibrated: overloaded before the failure ({})",
            anycast.peak_before()
        );
        assert!(
            anycast.peak_after() > 1.0,
            "anycast failover must overload a surviving site, peak {}",
            anycast.peak_after()
        );
        assert!(anycast.shed > 0.0, "overload must shed demand");

        // The DNS-weight controller re-packs the displaced demand within
        // every site's ceiling instead.
        let dns = run_failover(&Testbed::new(cfg), &Technique::ReactiveAnycast, site)
            .traffic
            .unwrap();
        assert!(
            dns.peak_after() <= tc.utilization_ceiling + 1e-9,
            "weighted DNS must keep every site under its ceiling, peak {}",
            dns.peak_after()
        );
        assert_eq!(dns.shed, 0.0, "nothing sheds under the ceiling");
        assert!(dns.resteers > 0, "the controller must have re-steered");
    }

    #[test]
    fn scrub_mitigation_diverts_surge_overload_from_shedding() {
        use bobw_scenario::{ScenarioAction, ScenarioEvent};
        // A global 6× surge against default 1.6× headroom overloads every
        // anycast catchment. Running the same attack with and without
        // scrubbing online: the scrubbers turn shed demand into scrubbed
        // demand, and the traffic ledger stays conserved.
        let attack = |scrub: bool| {
            let mut events = vec![ScenarioEvent {
                at_s: 10.0,
                action: ScenarioAction::Surge {
                    region: None,
                    factor: 6.0,
                    ramp_s: 5.0,
                    duration_s: 400.0,
                },
            }];
            if scrub {
                events.push(ScenarioEvent {
                    at_s: 20.0,
                    action: ScenarioAction::Scrub {
                        capacity_factor: 100.0,
                        duration_s: 400.0,
                    },
                });
            }
            let mut cfg = ExperimentConfig::quick(7);
            cfg.targets_per_site = 40;
            cfg.traffic = Some(TrafficConfig {
                diurnal_amplitude: 0.0,
                ..Default::default()
            });
            cfg.scenario = Some(Scenario {
                name: "ddos".into(),
                description: String::new(),
                site: "$site".into(),
                measure_from_s: Some(10.0),
                events,
            });
            let tb = Testbed::new(cfg);
            let site = tb.site("bos");
            run_failover(&tb, &Technique::Anycast, site)
                .traffic
                .unwrap()
        };
        let raw = attack(false);
        assert!(raw.shed > 0.0, "6x surge must overload and shed");
        assert_eq!(raw.scrubbed, 0.0, "no scrubbers online");
        let mitigated = attack(true);
        assert!(mitigated.scrubbed > 0.0, "scrubbers must divert overload");
        assert!(
            mitigated.shed < raw.shed,
            "scrubbing must reduce shedding: {} !< {}",
            mitigated.shed,
            raw.shed
        );
        assert!(mitigated.scrubbed_fraction() > 0.0);
        for s in [&raw, &mitigated] {
            let total = s.served + s.shed + s.scrubbed + s.unserved;
            assert!(
                (s.offered - total).abs() < 1e-6 * s.offered.max(1.0),
                "ledger must conserve: offered {} vs accounted {total}",
                s.offered
            );
        }
        // The mitigation is observational: probe outcomes are untouched.
        // (Covered structurally — scrub only touches the traffic sim.)
    }

    #[test]
    fn staged_react_rolls_out_and_still_recovers() {
        use bobw_scenario::{ScenarioAction, ScenarioEvent};
        let scripted = |stagger_s: Option<f64>| {
            let mut cfg = ExperimentConfig::quick(7);
            cfg.targets_per_site = 40;
            cfg.scenario = Some(Scenario {
                name: "staged".into(),
                description: String::new(),
                site: "$site".into(),
                measure_from_s: Some(10.0),
                events: vec![
                    ScenarioEvent {
                        at_s: 10.0,
                        action: ScenarioAction::SiteFail {
                            site: "$site".into(),
                            graceful: None,
                        },
                    },
                    ScenarioEvent {
                        at_s: 12.0,
                        action: ScenarioAction::React { skip: 0, stagger_s },
                    },
                ],
            });
            let tb = Testbed::new(cfg);
            let site = tb.site("bos");
            run_failover_instrumented(&tb, &Technique::ReactiveAnycast, site)
        };
        let (all_at_once, pa) = scripted(None);
        let (staged, pb) = scripted(Some(5.0));
        // The staged rollout schedules one React event per remaining
        // site, so it strictly processes more events...
        assert!(pb.events_processed > pa.events_processed);
        // ...recovery still completes within the window...
        assert!(
            staged.never_reconnected_fraction() < 0.1,
            "staged rollout must still recover: {}",
            staged.never_reconnected_fraction()
        );
        // ...but no faster than the instantaneous reconfiguration.
        let max_rec = |r: &FailoverResult| {
            r.reconnection_secs()
                .into_iter()
                .fold(0.0f64, |a, b| a.max(b))
        };
        assert!(max_rec(&staged) >= max_rec(&all_at_once));
    }

    #[test]
    fn queue_preallocation_hint_does_not_change_results() {
        // A cold testbed (hint 0) and a warm one (hint fed by a previous
        // cell) must produce byte-identical results — the hint is a pure
        // allocation optimization.
        let cold = quick_testbed();
        let warm = quick_testbed();
        let site = warm.site("bos");
        assert_eq!(warm.queue_capacity_hint(), 0);
        let (first, perf) = run_failover_instrumented(&warm, &Technique::Anycast, site);
        assert_eq!(
            warm.queue_capacity_hint(),
            perf.peak_queue_depth,
            "the finished cell's peak must become the hint"
        );
        // Second run on the warm testbed starts with a preallocated queue.
        let (second, _) = run_failover_instrumented(&warm, &Technique::Anycast, site);
        let (reference, _) = run_failover_instrumented(&cold, &Technique::Anycast, site);
        let dump = |r: &FailoverResult| format!("{r:?}");
        assert_eq!(dump(&second), dump(&first));
        assert_eq!(dump(&second), dump(&reference));
    }

    #[test]
    fn primed_queue_hints_do_not_change_results() {
        // A testbed primed from a persisted baseline (so its FIRST cell
        // preallocates) must match a cold testbed byte for byte.
        let cold = quick_testbed();
        let mut primed = quick_testbed();
        primed.prime_queue_hints([("anycast".to_string(), 4096)]);
        assert_eq!(primed.queue_capacity_hint_for("anycast"), 4096);
        assert_eq!(primed.queue_capacity_hint_for("unicast"), 0);
        let site = cold.site("bos");
        let (a, _) = run_failover_instrumented(&cold, &Technique::Anycast, site);
        let (b, _) = run_failover_instrumented(&primed, &Technique::Anycast, site);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // The in-run high-water mark still wins once it exceeds the prime.
        primed.prime_queue_hints([("anycast".to_string(), 1)]);
        assert!(primed.queue_capacity_hint_for("anycast") >= primed.queue_capacity_hint());
    }

    #[test]
    fn abstract_session_model_is_byte_identical_to_legacy() {
        // `session_model: Abstract` IS the legacy simulator — selecting it
        // explicitly must change nothing, down to the engine event count
        // (the session layer stays `None`, so no extra events, no extra
        // RNG draws, no code-path divergence).
        let legacy = quick_testbed();
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 40;
        cfg.session_model = SessionModel::Abstract;
        let explicit = Testbed::new(cfg);
        let site = legacy.site("bos");
        for technique in [Technique::Anycast, Technique::ReactiveAnycast] {
            let (a, pa) = run_failover_instrumented(&legacy, &technique, site);
            let (b, pb) = run_failover_instrumented(&explicit, &technique, site);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_eq!(pa.events_processed, pb.events_processed);
        }
    }

    #[test]
    fn message_level_baseline_runs_all_techniques() {
        // The paper baseline completes under the message-level session
        // model for every figure-2 technique: phase 1 handshakes every
        // adjacency through the wire codec and still converges, the site
        // failure and reaction play out through the FSMs, and the headline
        // result survives — reactive-anycast keeps full control and
        // recovers nearly everyone.
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 40;
        cfg.session_model = SessionModel::MessageLevel;
        let tb = Testbed::new(cfg);
        let site = tb.site("bos");
        let mut techniques = Technique::figure2_set();
        techniques.push(Technique::Combined);
        for technique in &techniques {
            let r = run_failover(&tb, technique, site);
            assert!(
                r.num_selected > 0,
                "{}: no targets selected under message-level",
                r.technique
            );
        }
        let r = run_failover(&tb, &Technique::ReactiveAnycast, site);
        assert!(
            r.control_fraction() > 0.99,
            "reactive-anycast control under message-level: {}",
            r.control_fraction()
        );
        assert!(
            r.never_reconnected_fraction() < 0.1,
            "message-level reconnection regressed: {}",
            r.never_reconnected_fraction()
        );
    }

    #[test]
    fn message_level_results_are_deterministic() {
        let mk = || {
            let mut cfg = ExperimentConfig::quick(11);
            cfg.targets_per_site = 40;
            cfg.session_model = SessionModel::MessageLevel;
            Testbed::new(cfg)
        };
        let (ta, tb) = (mk(), mk());
        let site = ta.site("ams");
        let (a, pa) = run_failover_instrumented(&ta, &Technique::ReactiveAnycast, site);
        let (b, pb) = run_failover_instrumented(&tb, &Technique::ReactiveAnycast, site);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(pa.events_processed, pb.events_processed);
    }

    #[test]
    fn session_fault_scenario_differs_between_models() {
        // The graceful-restart scenario is where the models genuinely
        // diverge: message-level retains the restarting site's routes as
        // stale (clients never see a withdrawal), while the abstract
        // approximation bounces every session. Both must complete; the
        // message-level run must lose no more targets than the abstract.
        let scenario = Scenario {
            name: "gr".into(),
            description: String::new(),
            site: "$site".into(),
            measure_from_s: Some(10.0),
            events: vec![bobw_scenario::ScenarioEvent {
                at_s: 10.0,
                action: bobw_scenario::ScenarioAction::GracefulRestart {
                    site: "$site".into(),
                    restart_s: 120.0,
                },
            }],
        };
        assert!(scenario.uses_session_actions());
        let run_with = |model: SessionModel| {
            let mut cfg = ExperimentConfig::quick(7);
            cfg.targets_per_site = 40;
            cfg.scenario = Some(scenario.clone());
            cfg.session_model = model;
            let tb = Testbed::new(cfg);
            let site = tb.site("bos");
            run_failover(&tb, &Technique::Unicast, site)
        };
        let ml = run_with(SessionModel::MessageLevel);
        let ab = run_with(SessionModel::Abstract);
        assert!(ml.num_controllable > 0 && ab.num_controllable > 0);
        assert!(
            ml.never_reconnected_fraction() <= ab.never_reconnected_fraction(),
            "graceful-restart retention must not lose more targets than the bounce \
             approximation: ml {} vs abstract {}",
            ml.never_reconnected_fraction(),
            ab.never_reconnected_fraction()
        );
    }

    #[test]
    fn half_open_and_hijack_scenarios_complete_under_both_models() {
        let mk_scenario = |action: bobw_scenario::ScenarioAction| Scenario {
            name: "s".into(),
            description: String::new(),
            site: "$site".into(),
            measure_from_s: Some(10.0),
            events: vec![bobw_scenario::ScenarioEvent { at_s: 10.0, action }],
        };
        let actions = [
            bobw_scenario::ScenarioAction::HalfOpen {
                site: "$site".into(),
                link: 0,
            },
            bobw_scenario::ScenarioAction::NotifyReset {
                site: "$site".into(),
                link: 0,
                code: 6,
            },
            bobw_scenario::ScenarioAction::HijackAnnounce {
                site: "$site".into(),
                link: 0,
            },
        ];
        for action in actions {
            let scenario = mk_scenario(action.clone());
            for model in [SessionModel::Abstract, SessionModel::MessageLevel] {
                let mut cfg = ExperimentConfig::quick(7);
                cfg.targets_per_site = 40;
                cfg.scenario = Some(scenario.clone());
                cfg.session_model = model;
                let tb = Testbed::new(cfg);
                let site = tb.site("bos");
                let r = run_failover(&tb, &Technique::Unicast, site);
                assert!(
                    r.num_selected > 0,
                    "{action:?} under {model:?}: no targets selected"
                );
            }
        }
    }
}
