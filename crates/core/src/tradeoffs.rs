//! Table 2: the control / availability / risk tradeoff matrix — derived
//! from measured quantities rather than asserted.
//!
//! The paper's rubric (§7): control is *high* if equal to unicast, *low*
//! if equal to anycast, *medium* in between. Availability is *high* if the
//! failover time is close to anycast's, *low* if it depends on new DNS
//! record distribution, *medium* if it improves on unicast but is slower
//! than anycast. Risk is *high* iff failover requires global routing
//! reconfiguration.

use serde::{Deserialize, Serialize};

use crate::technique::Technique;

/// A qualitative rating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rating {
    Low,
    Medium,
    High,
}

impl std::fmt::Display for Rating {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rating::Low => write!(f, "low"),
            Rating::Medium => write!(f, "medium"),
            Rating::High => write!(f, "high"),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TechniqueTradeoff {
    pub technique: String,
    pub control: Rating,
    pub availability: Rating,
    pub risk: Rating,
}

/// Inputs for one technique's row.
#[derive(Debug, Clone)]
pub struct MeasuredTechnique {
    pub technique: Technique,
    /// Fraction of (not-anycast-routed) targets the technique steers to
    /// the intended site. 1.0 for unicast-prefix techniques by
    /// construction; anycast's value is 0 on that population.
    pub control_fraction: f64,
    /// Median failover in seconds; `None` for DNS-bound techniques whose
    /// failover depends on record distribution (unicast).
    pub failover_median_s: Option<f64>,
}

/// Derives Table 2. `anycast_failover_median_s` anchors the availability
/// scale (availability is judged *relative to anycast*, §7).
pub fn derive_tradeoffs(
    measured: &[MeasuredTechnique],
    anycast_failover_median_s: f64,
) -> Vec<TechniqueTradeoff> {
    measured
        .iter()
        .map(|m| {
            let control = if m.control_fraction >= 0.99 {
                Rating::High
            } else if m.control_fraction <= 0.05 {
                Rating::Low
            } else {
                Rating::Medium
            };
            let availability = match m.failover_median_s {
                // DNS-bound: availability depends on record distribution
                // (caches, TTL violations) — the paper's "low".
                None => Rating::Low,
                // BGP-bound failover always improves on unicast; the split
                // is whether it is close to anycast ("high") or measurably
                // slower ("medium", e.g. proactive-superprefix).
                Some(f) if f <= anycast_failover_median_s * 2.0 => Rating::High,
                Some(_) => Rating::Medium,
            };
            let risk = if m.technique.requires_global_reconfiguration() {
                Rating::High
            } else {
                Rating::Low
            };
            TechniqueTradeoff {
                technique: m.technique.name(),
                control,
                availability,
                risk,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds the rubric with numbers shaped like the paper's measurements
    /// and checks that Table 2 comes out exactly as printed in §7.
    #[test]
    fn paper_shaped_inputs_reproduce_table2() {
        let anycast_median = 11.0;
        let measured = vec![
            MeasuredTechnique {
                technique: Technique::ProactivePrepending {
                    prepends: 3,
                    selective: false,
                },
                control_fraction: 0.6,
                failover_median_s: Some(16.0),
            },
            MeasuredTechnique {
                technique: Technique::ReactiveAnycast,
                control_fraction: 1.0,
                failover_median_s: Some(12.0),
            },
            MeasuredTechnique {
                technique: Technique::ProactiveSuperprefix,
                control_fraction: 1.0,
                failover_median_s: Some(100.0),
            },
            MeasuredTechnique {
                technique: Technique::Anycast,
                control_fraction: 0.0,
                failover_median_s: Some(anycast_median),
            },
            MeasuredTechnique {
                technique: Technique::Unicast,
                control_fraction: 1.0,
                failover_median_s: None,
            },
        ];
        let rows = derive_tradeoffs(&measured, anycast_median);
        let find = |name: &str| rows.iter().find(|r| r.technique == name).unwrap();

        let pp = find("proactive-prepending-3");
        assert_eq!(
            (pp.control, pp.availability, pp.risk),
            (Rating::Medium, Rating::High, Rating::Low)
        );

        let ra = find("reactive-anycast");
        assert_eq!(
            (ra.control, ra.availability, ra.risk),
            (Rating::High, Rating::High, Rating::High)
        );

        let ps = find("proactive-superprefix");
        assert_eq!(
            (ps.control, ps.availability, ps.risk),
            (Rating::High, Rating::Medium, Rating::Low)
        );

        let ac = find("anycast");
        assert_eq!(
            (ac.control, ac.availability, ac.risk),
            (Rating::Low, Rating::High, Rating::Low)
        );

        let un = find("unicast");
        assert_eq!(
            (un.control, un.availability, un.risk),
            (Rating::High, Rating::Low, Rating::Low)
        );
    }

    #[test]
    fn rating_display() {
        assert_eq!(Rating::Low.to_string(), "low");
        assert_eq!(Rating::Medium.to_string(), "medium");
        assert_eq!(Rating::High.to_string(), "high");
    }
}
