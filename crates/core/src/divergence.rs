//! Appendix C.1: why does `proactive-prepending` lose control at some
//! sites?
//!
//! The paper announces a unicast prefix `u` from the intended site and an
//! anycast prefix `a5` from every site with the backups prepending five
//! times, measures both reverse paths per target, finds the *diverging AS*
//! (the last AS the two paths share), and classifies the divergence: 82% of
//! sea1's lost targets diverge at an AS whose route toward `a5` is
//! preferred by standard business policy (customer over peer over
//! provider), and for 54% the next hop toward `a5` is an R&E network. The
//! simulator gets the paths from ground-truth FIB walks instead of reverse
//! traceroute.

use bobw_bgp::{OriginConfig, Standalone};
use bobw_dataplane::{walk_with_path, ForwardEnv};
use bobw_net::NodeId;
use bobw_topology::{Rel, SiteId};
use serde::{Deserialize, Serialize};

use crate::experiment::Testbed;
use crate::targets::select_targets;
use crate::technique::Technique;

/// The Appendix C.1 classification for one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DivergenceReport {
    pub site_name: String,
    /// Targets with measurable paths to both prefixes.
    pub measured_pairs: usize,
    /// Targets whose `a5` path reaches the intended site.
    pub to_intended: usize,
    /// Targets routed to a different site.
    pub diverged: usize,
    /// Diverged targets whose next hop toward `a5` (after the diverging AS)
    /// is an R&E network while the `u` path goes commercial.
    pub via_rne: usize,
    /// Diverged targets where the diverging AS prefers the `a5` link by
    /// relationship class (customer > peer > provider).
    pub business_pref: usize,
}

impl DivergenceReport {
    pub fn frac_to_intended(&self) -> f64 {
        frac(self.to_intended, self.measured_pairs)
    }

    pub fn frac_business_pref(&self) -> f64 {
        frac(self.business_pref, self.diverged)
    }

    pub fn frac_via_rne(&self) -> f64 {
        frac(self.via_rne, self.diverged)
    }
}

fn frac(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

fn rel_rank(rel: Rel) -> u8 {
    match rel {
        Rel::Customer => 3,
        Rel::MutualTransit => 2,
        Rel::Peer => 1,
        Rel::Provider => 0,
    }
}

/// Runs the C.1 experiment for `site`: `rtt_probe` doubles as the unicast
/// prefix `u`; `specific` plays `a5` with the backups prepending
/// `prepends` (paper: 5) times.
pub fn analyze_divergence(testbed: &Testbed, site: SiteId, prepends: u8) -> DivergenceReport {
    let cfg = &testbed.cfg;
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let plan = &cfg.plan;

    let mut sim = Standalone::new(topo, cfg.timing.clone(), &testbed.rng);
    // u: unicast from the intended site (the rtt_probe prefix, which the
    // target-selection machinery also needs).
    sim.announce(cdn.node(site), plan.rtt_probe, OriginConfig::plain());
    // Anycast measurement prefix for the selection criterion.
    for s in cdn.sites() {
        sim.announce(cdn.node(s), plan.anycast_probe, OriginConfig::plain());
    }
    // a5: the specific prefix, plain at the site, prepended elsewhere.
    let t = Technique::ProactivePrepending {
        prepends,
        selective: false,
    };
    for a in t.before(plan, topo, cdn, site) {
        sim.announce(a.node, a.prefix, a.cfg);
    }
    sim.run_to_idle(cfg.max_events);

    let targets = select_targets(
        topo,
        cdn,
        sim.sim(),
        plan,
        site,
        cfg.proximity_ms,
        true,
        cfg.targets_per_site,
        &testbed.rng,
    );

    let env = ForwardEnv {
        topo,
        bgp: sim.sim(),
        down: &[],
    };
    let mut report = DivergenceReport {
        site_name: cdn.name(site).to_string(),
        measured_pairs: 0,
        to_intended: 0,
        diverged: 0,
        via_rne: 0,
        business_pref: 0,
    };

    for target in targets {
        let (du, path_u) = walk_with_path(&env, target, plan.rtt_addr());
        let (da, path_a) = walk_with_path(&env, target, plan.probe_addr());
        let (Some(end_u), Some(end_a)) = (du.delivered_to(), da.delivered_to()) else {
            continue; // the paper also drops unmeasurable pairs
        };
        debug_assert_eq!(cdn.site_at(end_u), Some(site), "u is unicast from the site");
        report.measured_pairs += 1;
        if cdn.site_at(end_a) == Some(site) {
            report.to_intended += 1;
            continue;
        }
        report.diverged += 1;
        // Diverging AS: last common node of the shared path prefix.
        let mut i = 0;
        while i < path_u.len() && i < path_a.len() && path_u[i] == path_a[i] {
            i += 1;
        }
        if i == 0 || i >= path_u.len() || i >= path_a.len() {
            continue; // no divergence point with two next hops (e.g. one
                      // path is a prefix of the other)
        }
        let diverging: NodeId = path_u[i - 1];
        let next_u = path_u[i];
        let next_a = path_a[i];
        if topo.node(next_a).kind.is_rne() && !topo.node(next_u).kind.is_rne() {
            report.via_rne += 1;
        }
        if let (Some(rel_a), Some(rel_u)) =
            (topo.rel(diverging, next_a), topo.rel(diverging, next_u))
        {
            // `rel` is the neighbor's role: the diverging AS prefers
            // routing *via its customer*.
            if rel_rank(rel_a) > rel_rank(rel_u) {
                report.business_pref += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;

    #[test]
    fn sea1_divergence_dominated_by_policy() {
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 200;
        let tb = Testbed::new(cfg);
        let report = analyze_divergence(&tb, tb.site("sea1"), 5);
        assert!(report.measured_pairs > 0);
        assert_eq!(report.measured_pairs, report.to_intended + report.diverged);
        // sea1 must lose a substantial share of targets (Table 1: 6%
        // steered; ours need not match numerically but must diverge a lot).
        assert!(
            report.frac_to_intended() < 0.7,
            "sea1 keeping too much control: {}",
            report.frac_to_intended()
        );
        // Fractions are well-formed.
        assert!(report.via_rne <= report.diverged);
        assert!(report.business_pref <= report.diverged);
        // The dominant explanation is business preference (the C.1
        // finding): more than half the diverged targets.
        if report.diverged > 10 {
            assert!(
                report.frac_business_pref() > 0.3,
                "business preference should explain much of the loss: {}",
                report.frac_business_pref()
            );
        }
    }

    #[test]
    fn sea2_retains_more_control_than_sea1() {
        // The paper's Seattle pair: sea2 (university-hosted, behind the
        // R&E fabric) retains control; sea1 (commercial IX) loses it.
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 200;
        let tb = Testbed::new(cfg);
        let sea2 = analyze_divergence(&tb, tb.site("sea2"), 5);
        let sea1 = analyze_divergence(&tb, tb.site("sea1"), 5);
        assert!(
            sea2.measured_pairs > 10,
            "sea2 pairs {}",
            sea2.measured_pairs
        );
        // sea1's eligible population can be small at quick scale (its IX
        // presence leaves few non-anycast-routed nearby targets); only
        // compare when the sample is meaningful.
        if sea1.measured_pairs > 5 {
            assert!(
                sea2.frac_to_intended() > sea1.frac_to_intended(),
                "sea2 {} !> sea1 {}",
                sea2.frac_to_intended(),
                sea1.frac_to_intended()
            );
        }
    }
}
