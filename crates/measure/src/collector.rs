//! BGP route collectors (RIS / RouteViews stand-ins).
//!
//! A collector has BGP sessions with *peer* routers in many ASes; each peer
//! exports its best-route changes. The paper reads collector archives in
//! three places: §5.2 (convergence on PEERING vs other networks), Appendix
//! A (hypergiant withdrawal convergence) and Appendix B (anycast
//! announcement propagation). Here a collector is realized by filtering the
//! simulator's best-route-change history down to the chosen peer set and
//! adding a small deterministic export delay per peer.

use bobw_bgp::RouteChange;
use bobw_event::{RngFactory, SimDuration, SimTime};
use bobw_net::{AsPath, NodeId, Prefix};
use bobw_topology::{NodeKind, Topology};
use serde::{Deserialize, Serialize};

/// One update as recorded by the collector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorUpdate {
    /// Arrival time at the collector (peer change time + export delay).
    pub time: SimTime,
    pub peer: NodeId,
    pub prefix: Prefix,
    /// `None` = the peer withdrew the route; `Some(path)` = announcement.
    pub path: Option<AsPath>,
}

impl CollectorUpdate {
    pub fn is_withdrawal(&self) -> bool {
        self.path.is_none()
    }
}

/// A route collector: a peer set plus per-peer export delays.
#[derive(Debug, Clone)]
pub struct Collector {
    peers: Vec<NodeId>,
    export_delay: Vec<SimDuration>,
}

impl Collector {
    /// Builds a collector over the given peers. Export delays (session
    /// transfer + collector dump granularity) are sampled deterministically
    /// per peer in `[0.1 s, 2 s)`.
    pub fn new(peers: Vec<NodeId>, rng: &RngFactory) -> Collector {
        let export_delay = peers
            .iter()
            .map(|p| {
                SimDuration::from_secs_f64(rng.uniform_f64(
                    "collector-export",
                    p.index() as u64,
                    0.1,
                    2.0,
                ))
            })
            .collect();
        Collector {
            peers,
            export_delay,
        }
    }

    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    fn delay_of(&self, peer: NodeId) -> Option<SimDuration> {
        self.peers
            .iter()
            .position(|p| *p == peer)
            .map(|i| self.export_delay[i])
    }

    /// Converts a simulation route-change history into this collector's
    /// update feed for `prefix`, sorted by collector arrival time.
    pub fn feed(&self, history: &[RouteChange], prefix: Prefix) -> Vec<CollectorUpdate> {
        let mut out: Vec<CollectorUpdate> = history
            .iter()
            .filter(|rc| rc.prefix == prefix)
            .filter_map(|rc| {
                let delay = self.delay_of(rc.node)?;
                Some(CollectorUpdate {
                    time: rc.time + delay,
                    peer: rc.node,
                    prefix: rc.prefix,
                    path: rc.new.as_ref().map(|sel| sel.attrs.path),
                })
            })
            .collect();
        out.sort_by_key(|u| (u.time, u.peer));
        out
    }
}

/// Picks a realistic collector peer set from a topology: all tier-1s,
/// every `stride`-th transit AS, and every `3*stride`-th edge AS. Real
/// RIS/RouteViews full-table peers span the whole hierarchy — large
/// backbones down to mid-size ISPs — and the convergence-time distribution
/// over peers (Figure 3) depends on that mix: core routers settle early,
/// edge networks receive the MRAI-paced correction tail. Deterministic.
pub fn pick_collector_peers(topo: &Topology, stride: usize) -> Vec<NodeId> {
    let stride = stride.max(1);
    let mut peers: Vec<NodeId> = topo
        .nodes()
        .filter(|n| n.kind == NodeKind::Tier1)
        .map(|n| n.id)
        .collect();
    peers.extend(
        topo.nodes()
            .filter(|n| n.kind == NodeKind::Transit)
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, n)| n.id),
    );
    peers.extend(
        topo.nodes()
            .filter(|n| n.kind.hosts_clients())
            .enumerate()
            .filter(|(i, _)| i % (3 * stride) == 0)
            .map(|(_, n)| n.id),
    );
    peers
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_bgp::{RouteAttrs, Selected};
    use bobw_net::Asn;
    use bobw_topology::{generate, GenConfig};

    fn change(t: u64, node: u32, announced: bool) -> RouteChange {
        let prefix: Prefix = "10.0.0.0/24".parse().unwrap();
        RouteChange {
            time: SimTime::from_secs(t),
            node: NodeId(node),
            prefix,
            new: announced.then(|| Selected {
                from: Some(NodeId(99)),
                attrs: RouteAttrs {
                    path: AsPath::originate(Asn(1), 0),
                    local_pref: 100,
                    med: 0,
                    origin: NodeId(99),
                    no_export: false,
                },
            }),
        }
    }

    #[test]
    fn feed_filters_to_peers_and_sorts() {
        let rng = RngFactory::new(1);
        let col = Collector::new(vec![NodeId(1), NodeId(2)], &rng);
        let history = vec![
            change(10, 3, true), // not a peer: dropped
            change(10, 2, true),
            change(5, 1, true),
            change(20, 1, false),
        ];
        let feed = col.feed(&history, "10.0.0.0/24".parse().unwrap());
        assert_eq!(feed.len(), 3);
        // Sorted by arrival.
        for w in feed.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(feed.iter().any(|u| u.is_withdrawal()));
        // Export delay shifts arrival after the change time.
        let first = feed.iter().find(|u| u.peer == NodeId(1)).unwrap();
        assert!(first.time > SimTime::from_secs(5));
        assert!(first.time < SimTime::from_secs(8));
    }

    #[test]
    fn feed_filters_by_prefix() {
        let rng = RngFactory::new(1);
        let col = Collector::new(vec![NodeId(1)], &rng);
        let history = vec![change(5, 1, true)];
        let other: Prefix = "11.0.0.0/24".parse().unwrap();
        assert!(col.feed(&history, other).is_empty());
    }

    #[test]
    fn export_delays_deterministic_per_peer() {
        let rng = RngFactory::new(7);
        let a = Collector::new(vec![NodeId(1), NodeId(2)], &rng);
        let b = Collector::new(vec![NodeId(1), NodeId(2)], &rng);
        assert_eq!(a.delay_of(NodeId(1)), b.delay_of(NodeId(1)));
        assert_ne!(a.delay_of(NodeId(1)), a.delay_of(NodeId(2)));
    }

    #[test]
    fn picks_tier1s_and_strided_transits() {
        let (topo, _) = generate(&GenConfig::tiny(), &RngFactory::new(2));
        let peers = pick_collector_peers(&topo, 3);
        let tier1s = topo.nodes().filter(|n| n.kind == NodeKind::Tier1).count();
        let transits = topo.nodes().filter(|n| n.kind == NodeKind::Transit).count();
        let edges = topo.nodes().filter(|n| n.kind.hosts_clients()).count();
        assert_eq!(
            peers.len(),
            tier1s + transits.div_ceil(3) + edges.div_ceil(9)
        );
        // Deterministic.
        assert_eq!(peers, pick_collector_peers(&topo, 3));
    }
}
