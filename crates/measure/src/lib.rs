//! # bobw-measure
//!
//! Measurement infrastructure mirroring the paper's: BGP route collectors
//! (RIS / RouteViews stand-ins), the appendices' convergence and
//! propagation estimators, RIPEstat-style visibility aggregation, CDF
//! utilities, and paper-style report formatting.
//!
//! The collectors are deliberately faithful to how the paper consumes
//! them: a *collector peer* is an AS that exports its best-route changes to
//! the collector; the collector's "update feed" for a prefix is therefore
//! the time-stamped sequence of that peer's best-route changes
//! (`bobw-bgp`'s [`bobw_bgp::RouteChange`] history, filtered and delayed by
//! an export latency). The Appendix A/B estimators then run on that feed
//! exactly as described: a withdrawal (announcement) event is estimated as
//! the first instant with 5 withdrawals (announcements) within 20 seconds,
//! and per-peer convergence is the peer's last update inside a 1000-second
//! window.

pub mod cdf;
pub mod collector;
pub mod convergence;
pub mod report;
pub mod visibility;

pub use cdf::{Cdf, WeightedCdf};
pub use collector::{pick_collector_peers, Collector, CollectorUpdate};
pub use convergence::{
    estimate_event_time, per_peer_convergence, per_peer_propagation, ANNOUNCE_BURST, BURST_WINDOW,
    CONVERGENCE_WINDOW,
};
pub use report::{cdf_row, cdf_table, markdown_table, percent};
pub use visibility::{covered_fraction, daily_visibility, flag_potential_withdrawals, RibEntry};
