//! The appendices' estimators, verbatim from the paper:
//!
//! * Appendix A: "we estimate [the withdrawal time] as the first time when
//!   5 withdrawals are seen within 20 seconds"; per-peer convergence is
//!   "the time between the estimated withdrawal time and the last update
//!   from that peer (in a 1000 s window after the withdrawal time)".
//! * Appendix B: symmetric, with announcements ("5 announcements are made
//!   by route collector peers in 20 seconds"), and propagation per peer is
//!   the delay until the peer's route appears.

use std::collections::HashMap;

use bobw_event::{SimDuration, SimTime};
use bobw_net::NodeId;

use crate::collector::CollectorUpdate;

/// Burst size for event-time estimation (paper: 5).
pub const ANNOUNCE_BURST: usize = 5;
/// Burst window (paper: 20 s).
pub const BURST_WINDOW: SimDuration = SimDuration::from_secs(20);
/// Per-peer convergence window (paper: 1000 s).
pub const CONVERGENCE_WINDOW: SimDuration = SimDuration::from_secs(1000);

/// Estimates when a withdrawal (`withdrawals = true`) or announcement
/// (`false`) event happened, as the earliest time at which
/// [`ANNOUNCE_BURST`] matching updates have been seen within
/// [`BURST_WINDOW`]. Returns `None` if no such burst exists.
pub fn estimate_event_time(feed: &[CollectorUpdate], withdrawals: bool) -> Option<SimTime> {
    let times: Vec<SimTime> = feed
        .iter()
        .filter(|u| u.is_withdrawal() == withdrawals)
        .map(|u| u.time)
        .collect();
    if times.len() < ANNOUNCE_BURST {
        return None;
    }
    // times are sorted (feed is sorted); find the first window of
    // ANNOUNCE_BURST consecutive matching updates spanning ≤ BURST_WINDOW.
    for w in times.windows(ANNOUNCE_BURST) {
        if w[ANNOUNCE_BURST - 1].since(w[0]) <= BURST_WINDOW {
            // The estimate is the start of the burst — the paper validates
            // this against known PEERING withdrawal times (within 10 s at
            // median).
            return Some(w[0]);
        }
    }
    None
}

/// Per-peer convergence times (Appendix A): for each peer with at least one
/// update after `event_time`, the delay to its *last* update within the
/// 1000 s window.
pub fn per_peer_convergence(
    feed: &[CollectorUpdate],
    event_time: SimTime,
) -> Vec<(NodeId, SimDuration)> {
    let deadline = event_time + CONVERGENCE_WINDOW;
    let mut last: HashMap<NodeId, SimTime> = HashMap::new();
    for u in feed {
        if u.time >= event_time && u.time <= deadline {
            let e = last.entry(u.peer).or_insert(u.time);
            if u.time > *e {
                *e = u.time;
            }
        }
    }
    let mut out: Vec<(NodeId, SimDuration)> = last
        .into_iter()
        .map(|(peer, t)| (peer, t.since(event_time)))
        .collect();
    out.sort_by_key(|(p, d)| (*d, *p));
    out
}

/// Per-peer propagation times (Appendix B): for each peer, the delay from
/// `event_time` to its *first* announcement within the window.
pub fn per_peer_propagation(
    feed: &[CollectorUpdate],
    event_time: SimTime,
) -> Vec<(NodeId, SimDuration)> {
    let deadline = event_time + CONVERGENCE_WINDOW;
    let mut first: HashMap<NodeId, SimTime> = HashMap::new();
    for u in feed {
        if !u.is_withdrawal() && u.time >= event_time && u.time <= deadline {
            first.entry(u.peer).or_insert(u.time);
        }
    }
    let mut out: Vec<(NodeId, SimDuration)> = first
        .into_iter()
        .map(|(peer, t)| (peer, t.since(event_time)))
        .collect();
    out.sort_by_key(|(p, d)| (*d, *p));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_net::{AsPath, Asn, Prefix};

    fn upd(t_ms: u64, peer: u32, withdrawal: bool) -> CollectorUpdate {
        let prefix: Prefix = "10.0.0.0/24".parse().unwrap();
        CollectorUpdate {
            time: SimTime::from_nanos(t_ms * 1_000_000),
            peer: NodeId(peer),
            prefix,
            path: (!withdrawal).then(|| AsPath::originate(Asn(1), 0)),
        }
    }

    #[test]
    fn burst_estimation_finds_tight_cluster() {
        // 5 withdrawals at 100.0..100.8s, preceded by scattered noise.
        let mut feed = vec![upd(10_000, 9, true)];
        for i in 0..5 {
            feed.push(upd(100_000 + i * 200, i as u32, true));
        }
        feed.sort_by_key(|u| u.time);
        let est = estimate_event_time(&feed, true).unwrap();
        assert_eq!(est, SimTime::from_secs(100));
    }

    #[test]
    fn sparse_withdrawals_do_not_trigger() {
        // 5 withdrawals but spread 30 s apart: no burst.
        let feed: Vec<CollectorUpdate> = (0..5).map(|i| upd(i * 30_000, i as u32, true)).collect();
        assert_eq!(estimate_event_time(&feed, true), None);
        // Fewer than 5 events: no estimate.
        let feed: Vec<CollectorUpdate> = (0..4).map(|i| upd(i * 100, i as u32, true)).collect();
        assert_eq!(estimate_event_time(&feed, true), None);
    }

    #[test]
    fn announcement_estimation_ignores_withdrawals() {
        let mut feed = Vec::new();
        for i in 0..5 {
            feed.push(upd(50_000 + i * 100, i as u32, true)); // withdrawals
        }
        for i in 0..5 {
            feed.push(upd(80_000 + i * 100, i as u32, false)); // announcements
        }
        feed.sort_by_key(|u| u.time);
        assert_eq!(
            estimate_event_time(&feed, false).unwrap(),
            SimTime::from_secs(80)
        );
    }

    #[test]
    fn per_peer_convergence_takes_last_update_in_window() {
        let event = SimTime::from_secs(100);
        let feed = vec![
            upd(100_500, 1, false),  // exploration
            upd(130_000, 1, true),   // final withdrawal: convergence at 30 s
            upd(105_000, 2, true),   // peer 2 converges at 5 s
            upd(2_000_000, 3, true), // outside the 1000 s window: ignored
        ];
        let conv = per_peer_convergence(&feed, event);
        assert_eq!(conv.len(), 2);
        let map: HashMap<NodeId, SimDuration> = conv.into_iter().collect();
        assert_eq!(map[&NodeId(1)], SimDuration::from_secs(30));
        assert_eq!(map[&NodeId(2)], SimDuration::from_secs(5));
    }

    #[test]
    fn per_peer_propagation_takes_first_announcement() {
        let event = SimTime::from_secs(100);
        let feed = vec![
            upd(104_000, 1, false),
            upd(120_000, 1, false), // later update ignored for propagation
            upd(99_000, 2, false),  // before the event: ignored
            upd(108_000, 2, true),  // withdrawal: ignored
            upd(109_000, 2, false),
        ];
        let prop = per_peer_propagation(&feed, event);
        let map: HashMap<NodeId, SimDuration> = prop.into_iter().collect();
        assert_eq!(map[&NodeId(1)], SimDuration::from_secs(4));
        assert_eq!(map[&NodeId(2)], SimDuration::from_secs(9));
    }
}
