//! RIPEstat-Routing-History-style visibility aggregation and the §3
//! superprefix survey.
//!
//! Appendix A's pipeline starts from day-granularity *visibility* (the
//! fraction of full-table RIS peers with a route to a prefix) and flags a
//! potential withdrawal when visibility drops from >0.9 to <0.7. Section 3
//! separately surveys hypergiant RIB dumps: what fraction of the most
//! specific server-hosting prefixes are simultaneously covered by a less
//! specific prefix from the same origin (the paper found 39%).

use std::collections::HashMap;

use bobw_event::SimTime;
use bobw_net::{NodeId, Prefix};
use serde::{Deserialize, Serialize};

use crate::collector::CollectorUpdate;

/// One RIB-dump entry for the superprefix survey: a prefix and its origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    pub prefix: Prefix,
    pub origin: NodeId,
}

/// Day-granularity visibility of a prefix: for each day in
/// `[0, num_days)`, the fraction of `peers` that had a route to the prefix
/// at any point during that day (matching RIPEstat's day aggregation, which
/// the paper notes can show non-zero visibility on the withdrawal day).
pub fn daily_visibility(feed: &[CollectorUpdate], peers: &[NodeId], num_days: usize) -> Vec<f64> {
    const DAY_NS: u64 = 86_400 * 1_000_000_000;
    if peers.is_empty() {
        return vec![0.0; num_days];
    }
    // Track per-peer route state over time; a peer counts for a day if it
    // held a route at the day's start or received an announcement during it.
    let mut state: HashMap<NodeId, bool> = peers.iter().map(|p| (*p, false)).collect();
    let mut days = vec![0.0; num_days];
    let mut idx = 0usize;
    for (day, slot) in days.iter_mut().enumerate() {
        let day_end = SimTime::from_nanos((day as u64 + 1) * DAY_NS);
        let mut had_route: HashMap<NodeId, bool> = state.iter().map(|(p, s)| (*p, *s)).collect();
        while idx < feed.len() && feed[idx].time < day_end {
            let u = &feed[idx];
            if let Some(s) = state.get_mut(&u.peer) {
                *s = !u.is_withdrawal();
                if *s {
                    had_route.insert(u.peer, true);
                }
            }
            idx += 1;
        }
        *slot = had_route.values().filter(|v| **v).count() as f64 / peers.len() as f64;
    }
    days
}

/// Flags day indices where visibility drops from >0.9 to <0.7 — the
/// paper's "potentially withdrawn" criterion.
pub fn flag_potential_withdrawals(visibility: &[f64]) -> Vec<usize> {
    visibility
        .windows(2)
        .enumerate()
        .filter(|(_, w)| w[0] > 0.9 && w[1] < 0.7)
        .map(|(i, _)| i + 1)
        .collect()
}

/// §3 survey: of the most-specific prefixes per origin, the fraction that
/// are covered by a less-specific prefix announced by the *same* origin.
///
/// Returns `(covered, total, fraction)` over most-specific prefixes.
pub fn covered_fraction(rib: &[RibEntry]) -> (usize, usize, f64) {
    // Group by origin.
    let mut by_origin: HashMap<NodeId, Vec<Prefix>> = HashMap::new();
    for e in rib {
        by_origin.entry(e.origin).or_default().push(e.prefix);
    }
    let mut total = 0usize;
    let mut covered = 0usize;
    for prefixes in by_origin.values() {
        for p in prefixes {
            // Most specific: no other prefix of this origin is inside p.
            let is_most_specific = !prefixes.iter().any(|q| q != p && p.covers(q));
            if !is_most_specific {
                continue;
            }
            total += 1;
            if prefixes.iter().any(|q| q != p && q.covers(p)) {
                covered += 1;
            }
        }
    }
    let frac = if total == 0 {
        0.0
    } else {
        covered as f64 / total as f64
    };
    (covered, total, frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_net::{AsPath, Asn};

    fn upd(day: u64, hour: u64, peer: u32, withdrawal: bool) -> CollectorUpdate {
        CollectorUpdate {
            time: SimTime::from_secs(day * 86_400 + hour * 3600),
            peer: NodeId(peer),
            prefix: "10.0.0.0/24".parse().unwrap(),
            path: (!withdrawal).then(|| AsPath::originate(Asn(1), 0)),
        }
    }

    #[test]
    fn visibility_tracks_announce_then_withdraw() {
        let peers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut feed = Vec::new();
        // Day 0: all peers announce.
        for p in 0..4 {
            feed.push(upd(0, 1, p, false));
        }
        // Day 2: three peers withdraw mid-day.
        for p in 0..3 {
            feed.push(upd(2, 12, p, true));
        }
        feed.sort_by_key(|u| u.time);
        let vis = daily_visibility(&feed, &peers, 4);
        assert_eq!(vis[0], 1.0);
        assert_eq!(vis[1], 1.0);
        // Withdrawal day still shows visibility (day aggregation).
        assert_eq!(vis[2], 1.0);
        // Day after: only one peer retains the route.
        assert_eq!(vis[3], 0.25);
        assert_eq!(flag_potential_withdrawals(&vis), vec![3]);
    }

    #[test]
    fn no_flags_on_stable_visibility() {
        assert!(flag_potential_withdrawals(&[1.0, 0.95, 0.92, 1.0]).is_empty());
        // Drop not deep enough.
        assert!(flag_potential_withdrawals(&[1.0, 0.8]).is_empty());
        // Start not high enough.
        assert!(flag_potential_withdrawals(&[0.85, 0.5]).is_empty());
    }

    #[test]
    fn empty_peers_graceful() {
        assert_eq!(daily_visibility(&[], &[], 2), vec![0.0, 0.0]);
    }

    #[test]
    fn covered_fraction_counts_same_origin_covers() {
        let o1 = NodeId(1);
        let o2 = NodeId(2);
        let p = |s: &str| s.parse::<Prefix>().unwrap();
        let rib = vec![
            // o1: /24 covered by its own /23 -> covered most-specific.
            RibEntry {
                prefix: p("184.164.244.0/24"),
                origin: o1,
            },
            RibEntry {
                prefix: p("184.164.244.0/23"),
                origin: o1,
            },
            // o1: another /24 with no cover.
            RibEntry {
                prefix: p("10.0.0.0/24"),
                origin: o1,
            },
            // o2: /24 whose covering /23 belongs to o1 -> NOT covered
            // (different origin).
            RibEntry {
                prefix: p("184.164.245.0/24"),
                origin: o2,
            },
        ];
        let (covered, total, frac) = covered_fraction(&rib);
        // Most-specifics: o1's two /24s + o2's /24 = 3; covered = 1.
        assert_eq!((covered, total), (1, 3));
        assert!((frac - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn covered_fraction_empty() {
        assert_eq!(covered_fraction(&[]), (0, 0, 0.0));
    }
}
