//! Paper-style report formatting: quantile rows for CDF figures and
//! markdown tables for EXPERIMENTS.md.

use crate::cdf::Cdf;

/// Formats a fraction as a percentage string ("57%").
pub fn percent(frac: f64) -> String {
    format!("{:.0}%", frac * 100.0)
}

/// Renders one labeled CDF as a quantile row:
/// `label  p10  p25  p50  p75  p90  p99  max  (n)`.
pub fn cdf_row(label: &str, cdf: &Cdf) -> String {
    if cdf.is_empty() {
        return format!("{label:<28} (no samples)");
    }
    let q = |x: f64| cdf.quantile(x).expect("non-empty");
    format!(
        "{label:<28} p10={:>7.1}s p25={:>7.1}s p50={:>7.1}s p75={:>7.1}s p90={:>7.1}s p99={:>7.1}s max={:>7.1}s (n={})",
        q(0.10),
        q(0.25),
        q(0.50),
        q(0.75),
        q(0.90),
        q(0.99),
        cdf.max().expect("non-empty"),
        cdf.len()
    )
}

/// Renders a set of labeled CDFs as a figure-style block: a header plus
/// one quantile row per series.
pub fn cdf_table(title: &str, series: &[(String, &Cdf)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, cdf) in series {
        out.push_str(&cdf_row(label, cdf));
        out.push('\n');
    }
    out
}

/// Renders a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_rounds() {
        assert_eq!(percent(0.566), "57%");
        assert_eq!(percent(0.0), "0%");
        assert_eq!(percent(1.0), "100%");
    }

    #[test]
    fn cdf_row_contains_quantiles() {
        let c = Cdf::new((1..=100).map(|i| i as f64).collect());
        let row = cdf_row("anycast", &c);
        assert!(row.contains("anycast"));
        assert!(row.contains("p50="));
        assert!(row.contains("(n=100)"));
    }

    #[test]
    fn empty_cdf_row_is_graceful() {
        let row = cdf_row("x", &Cdf::new(vec![]));
        assert!(row.contains("no samples"));
    }

    #[test]
    fn cdf_table_has_all_series() {
        let a = Cdf::new(vec![1.0]);
        let b = Cdf::new(vec![2.0]);
        let t = cdf_table(
            "Figure 2",
            &[("one".to_string(), &a), ("two".to_string(), &b)],
        );
        assert!(t.starts_with("Figure 2\n"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[3], "| 3 | 4 |");
    }
}
