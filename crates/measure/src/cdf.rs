//! Empirical CDFs — the paper's figures 2–5 are all CDFs.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over `f64` samples.
///
/// ```
/// use bobw_measure::Cdf;
///
/// let failover = Cdf::new(vec![4.5, 6.1, 6.1, 9.0, 31.5]);
/// assert_eq!(failover.median(), Some(6.1));
/// assert_eq!(failover.fraction_leq(10.0), 0.8);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. Non-finite values are rejected loudly —
    /// they would silently corrupt every quantile.
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "non-finite sample in CDF input"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), nearest-rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median shorthand.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: first index with sample > x.
        let k = self.sorted.partition_point(|v| *v <= x);
        k as f64 / self.sorted.len() as f64
    }

    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// All samples, ascending.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Merges two CDFs (union of samples).
    pub fn merged(&self, other: &Cdf) -> Cdf {
        let mut v = self.sorted.clone();
        v.extend_from_slice(&other.sorted);
        Cdf::new(v)
    }

    /// `(x, F(x))` points at the given x-values — ready to print as a
    /// figure series.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| (*x, self.fraction_leq(*x))).collect()
    }
}

/// A demand-weighted empirical CDF: each sample carries a weight, and
/// quantiles/fractions are over total weight rather than sample count.
/// This is what makes reconnection CDFs answer "how fast did the *traffic*
/// come back" instead of "how fast did the median probe target" — a
/// heavy-tailed client population makes the two very different.
///
/// ```
/// use bobw_measure::WeightedCdf;
///
/// // One huge client reconnects slowly; many tiny ones are fast.
/// let c = WeightedCdf::new(vec![(2.0, 1.0), (3.0, 1.0), (30.0, 8.0)]);
/// assert_eq!(c.median(), Some(30.0));
/// assert_eq!(c.fraction_leq(5.0), 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WeightedCdf {
    /// (value, weight), sorted by value ascending.
    sorted: Vec<(f64, f64)>,
    total: f64,
}

impl WeightedCdf {
    /// Builds a weighted CDF from `(value, weight)` samples. Non-finite
    /// values/weights and negative weights are rejected loudly;
    /// zero-weight samples are kept (they influence nothing).
    pub fn new(mut samples: Vec<(f64, f64)>) -> WeightedCdf {
        assert!(
            samples.iter().all(|(v, w)| v.is_finite() && w.is_finite()),
            "non-finite sample in weighted CDF input"
        );
        assert!(
            samples.iter().all(|(_, w)| *w >= 0.0),
            "negative weight in weighted CDF input"
        );
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let total = samples.iter().map(|(_, w)| w).sum();
        WeightedCdf {
            sorted: samples,
            total,
        }
    }

    /// Uniform weights: equivalent to [`Cdf`] over the same values.
    pub fn uniform(samples: Vec<f64>) -> WeightedCdf {
        WeightedCdf::new(samples.into_iter().map(|v| (v, 1.0)).collect())
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Total weight across samples.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// The `q`-quantile by weight: the smallest value whose cumulative
    /// weight reaches `q × total`. `None` when empty or weightless.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || self.total <= 0.0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total;
        let mut acc = 0.0;
        for (v, w) in &self.sorted {
            acc += w;
            if acc >= target {
                return Some(*v);
            }
        }
        Some(self.sorted.last().expect("non-empty").0)
    }

    /// Median shorthand.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Weight fraction of samples ≤ `x`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (v, w) in &self.sorted {
            if *v > x {
                break;
            }
            acc += w;
        }
        acc / self.total
    }

    pub fn min(&self) -> Option<f64> {
        self.sorted.first().map(|(v, _)| *v)
    }

    pub fn max(&self) -> Option<f64> {
        self.sorted.last().map(|(v, _)| *v)
    }

    /// All `(value, weight)` samples, ascending by value.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.sorted
    }

    /// Merges two weighted CDFs (union of samples).
    pub fn merged(&self, other: &WeightedCdf) -> WeightedCdf {
        let mut v = self.sorted.clone();
        v.extend_from_slice(&other.sorted);
        WeightedCdf::new(v)
    }

    /// `(x, F(x))` points at the given x-values.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| (*x, self.fraction_leq(*x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let c = Cdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.median(), Some(3.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(5.0));
    }

    #[test]
    fn fraction_leq_step_behaviour() {
        let c = Cdf::new(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(c.fraction_leq(0.5), 0.0);
        assert_eq!(c.fraction_leq(1.0), 0.25);
        assert_eq!(c.fraction_leq(2.0), 0.75);
        assert_eq!(c.fraction_leq(3.9), 0.75);
        assert_eq!(c.fraction_leq(4.0), 1.0);
        assert_eq!(c.fraction_leq(100.0), 1.0);
    }

    #[test]
    fn empty_cdf_is_graceful() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.median(), None);
        assert_eq!(c.fraction_leq(1.0), 0.0);
        assert_eq!(c.min(), None);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn merged_combines_samples() {
        let a = Cdf::new(vec![1.0, 3.0]);
        let b = Cdf::new(vec![2.0]);
        let m = a.merged(&b);
        assert_eq!(m.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn series_is_monotone() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let xs: Vec<f64> = vec![0.0, 10.0, 50.0, 99.0, 200.0];
        let s = c.series(&xs);
        for w in s.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let c = Cdf::new(vec![1.0, 2.0]);
        assert_eq!(c.quantile(-0.3), Some(1.0));
        assert_eq!(c.quantile(7.0), Some(2.0));
    }

    #[test]
    fn weighted_uniform_matches_unweighted() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let plain = Cdf::new(values.clone());
        let weighted = WeightedCdf::uniform(values);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(weighted.quantile(q), plain.quantile(q), "q = {q}");
        }
        for x in [0.5, 1.0, 2.5, 5.0, 9.0] {
            assert_eq!(weighted.fraction_leq(x), plain.fraction_leq(x), "x = {x}");
        }
        assert_eq!(weighted.total_weight(), 5.0);
    }

    #[test]
    fn heavy_sample_dominates_the_weighted_median() {
        let c = WeightedCdf::new(vec![(2.0, 1.0), (3.0, 1.0), (30.0, 8.0)]);
        assert_eq!(c.median(), Some(30.0));
        assert_eq!(c.fraction_leq(5.0), 0.2);
        assert_eq!(c.fraction_leq(30.0), 1.0);
        assert_eq!(c.min(), Some(2.0));
        assert_eq!(c.max(), Some(30.0));
    }

    #[test]
    fn weighted_empty_and_weightless_are_graceful() {
        let c = WeightedCdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.median(), None);
        assert_eq!(c.fraction_leq(1.0), 0.0);
        let z = WeightedCdf::new(vec![(1.0, 0.0)]);
        assert_eq!(z.median(), None, "zero total weight has no quantiles");
        assert_eq!(z.fraction_leq(2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn weighted_rejects_negative_weight() {
        WeightedCdf::new(vec![(1.0, -2.0)]);
    }

    #[test]
    fn weighted_merge_accumulates_weight() {
        let a = WeightedCdf::new(vec![(1.0, 2.0)]);
        let b = WeightedCdf::new(vec![(3.0, 6.0)]);
        let m = a.merged(&b);
        assert_eq!(m.total_weight(), 8.0);
        assert_eq!(m.quantile(0.24), Some(1.0));
        assert_eq!(m.quantile(0.9), Some(3.0));
    }
}
