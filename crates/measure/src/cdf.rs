//! Empirical CDFs — the paper's figures 2–5 are all CDFs.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over `f64` samples.
///
/// ```
/// use bobw_measure::Cdf;
///
/// let failover = Cdf::new(vec![4.5, 6.1, 6.1, 9.0, 31.5]);
/// assert_eq!(failover.median(), Some(6.1));
/// assert_eq!(failover.fraction_leq(10.0), 0.8);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. Non-finite values are rejected loudly —
    /// they would silently corrupt every quantile.
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "non-finite sample in CDF input"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), nearest-rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median shorthand.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: first index with sample > x.
        let k = self.sorted.partition_point(|v| *v <= x);
        k as f64 / self.sorted.len() as f64
    }

    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// All samples, ascending.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Merges two CDFs (union of samples).
    pub fn merged(&self, other: &Cdf) -> Cdf {
        let mut v = self.sorted.clone();
        v.extend_from_slice(&other.sorted);
        Cdf::new(v)
    }

    /// `(x, F(x))` points at the given x-values — ready to print as a
    /// figure series.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| (*x, self.fraction_leq(*x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let c = Cdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.median(), Some(3.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(5.0));
    }

    #[test]
    fn fraction_leq_step_behaviour() {
        let c = Cdf::new(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(c.fraction_leq(0.5), 0.0);
        assert_eq!(c.fraction_leq(1.0), 0.25);
        assert_eq!(c.fraction_leq(2.0), 0.75);
        assert_eq!(c.fraction_leq(3.9), 0.75);
        assert_eq!(c.fraction_leq(4.0), 1.0);
        assert_eq!(c.fraction_leq(100.0), 1.0);
    }

    #[test]
    fn empty_cdf_is_graceful() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.median(), None);
        assert_eq!(c.fraction_leq(1.0), 0.0);
        assert_eq!(c.min(), None);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn merged_combines_samples() {
        let a = Cdf::new(vec![1.0, 3.0]);
        let b = Cdf::new(vec![2.0]);
        let m = a.merged(&b);
        assert_eq!(m.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn series_is_monotone() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let xs: Vec<f64> = vec![0.0, 10.0, 50.0, 99.0, 200.0];
        let s = c.series(&xs);
        for w in s.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let c = Cdf::new(vec![1.0, 2.0]);
        assert_eq!(c.quantile(-0.3), Some(1.0));
        assert_eq!(c.quantile(7.0), Some(2.0));
    }
}
