//! Property tests for the measurement crate: CDF correctness against naive
//! definitions and estimator behaviour on synthetic feeds.

use bobw_event::SimTime;
use bobw_measure::{
    estimate_event_time, per_peer_convergence, per_peer_propagation, Cdf, CollectorUpdate,
};
use bobw_net::{AsPath, Asn, NodeId, Prefix};
use proptest::prelude::*;

fn upd(t_ms: u64, peer: u32, withdrawal: bool) -> CollectorUpdate {
    CollectorUpdate {
        time: SimTime::from_nanos(t_ms * 1_000_000),
        peer: NodeId(peer),
        prefix: "10.0.0.0/24".parse::<Prefix>().unwrap(),
        path: (!withdrawal).then(|| AsPath::originate(Asn(1), 0)),
    }
}

proptest! {
    /// `fraction_leq` agrees with the naive count for arbitrary inputs.
    #[test]
    fn cdf_fraction_matches_naive(
        samples in proptest::collection::vec(-1e6f64..1e6, 0..200),
        probes in proptest::collection::vec(-1e6f64..1e6, 1..20),
    ) {
        let cdf = Cdf::new(samples.clone());
        for x in probes {
            let naive = samples.iter().filter(|v| **v <= x).count() as f64
                / samples.len().max(1) as f64;
            let got = cdf.fraction_leq(x);
            if samples.is_empty() {
                prop_assert_eq!(got, 0.0);
            } else {
                prop_assert!((got - naive).abs() < 1e-12, "{got} vs {naive}");
            }
        }
    }

    /// Quantiles are monotone in q and always actual samples.
    #[test]
    fn cdf_quantiles_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::new(samples.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = cdf.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile not monotone at q={q}");
            prop_assert!(samples.contains(&v), "quantile {v} is not a sample");
            prev = v;
        }
        prop_assert_eq!(cdf.quantile(0.0), cdf.min());
        prop_assert_eq!(cdf.quantile(1.0), cdf.max());
    }

    /// Merging CDFs behaves like concatenating samples.
    #[test]
    fn cdf_merge_is_concat(
        a in proptest::collection::vec(0f64..100.0, 0..50),
        b in proptest::collection::vec(0f64..100.0, 0..50),
    ) {
        let merged = Cdf::new(a.clone()).merged(&Cdf::new(b.clone()));
        let mut concat = a.clone();
        concat.extend(&b);
        let direct = Cdf::new(concat);
        prop_assert_eq!(merged.samples(), direct.samples());
    }

    /// The burst estimator, when it fires, always returns the time of some
    /// matching update, and there really are >= 5 matching updates within
    /// 20 s of it.
    #[test]
    fn estimator_returns_genuine_burst(
        times in proptest::collection::vec(0u64..200_000u64, 0..60),
        withdrawal_mask in proptest::collection::vec(any::<bool>(), 0..60),
    ) {
        let mut feed: Vec<CollectorUpdate> = times
            .iter()
            .zip(withdrawal_mask.iter().chain(std::iter::repeat(&true)))
            .enumerate()
            .map(|(i, (t, w))| upd(*t, i as u32 % 7, *w))
            .collect();
        feed.sort_by_key(|u| u.time);
        for withdrawals in [true, false] {
            if let Some(est) = estimate_event_time(&feed, withdrawals) {
                let matching_in_window = feed
                    .iter()
                    .filter(|u| u.is_withdrawal() == withdrawals)
                    .filter(|u| {
                        u.time >= est
                            && u.time.since(est).as_secs_f64() <= 20.0
                    })
                    .count();
                prop_assert!(
                    matching_in_window >= 5,
                    "estimate at {est} has only {matching_in_window} matching updates"
                );
                prop_assert!(feed.iter().any(|u| u.time == est));
            }
        }
    }

    /// Per-peer convergence and propagation never exceed the 1000 s window
    /// and each peer appears at most once.
    #[test]
    fn per_peer_outputs_well_formed(
        times in proptest::collection::vec(0u64..2_000_000u64, 0..80),
    ) {
        let feed: Vec<CollectorUpdate> = {
            let mut f: Vec<CollectorUpdate> = times
                .iter()
                .enumerate()
                .map(|(i, t)| upd(*t, i as u32 % 5, i % 3 == 0))
                .collect();
            f.sort_by_key(|u| u.time);
            f
        };
        let event = SimTime::from_secs(100);
        for out in [per_peer_convergence(&feed, event), per_peer_propagation(&feed, event)] {
            let mut peers: Vec<NodeId> = out.iter().map(|(p, _)| *p).collect();
            peers.sort();
            let before = peers.len();
            peers.dedup();
            prop_assert_eq!(peers.len(), before, "duplicate peer");
            for (_, d) in &out {
                prop_assert!(d.as_secs_f64() <= 1000.0);
            }
        }
    }
}
