//! Property-based tests of the BGP simulator over random small topologies:
//! convergence, determinism, decision-process invariants, and ghost-free
//! teardown under arbitrary announce/withdraw sequences.

use bobw_bgp::{BgpTimingConfig, NextHop, OriginConfig, Standalone};
use bobw_event::{RngFactory, StepOutcome};
use bobw_net::{NodeId, Prefix};
use bobw_topology::{generate, GenConfig, Topology};
use proptest::prelude::*;

fn tiny(seed: u64) -> (Topology, Vec<NodeId>) {
    let rng = RngFactory::new(seed);
    let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
    let sites = cdn.site_nodes().to_vec();
    (topo, sites)
}

fn prefix() -> Prefix {
    "184.164.244.0/24".parse().unwrap()
}

/// A random sequence of announce/withdraw operations on site origins.
#[derive(Debug, Clone)]
enum Op {
    Announce { site: usize, prepend: u8 },
    Withdraw { site: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..8, 0u8..6).prop_map(|(site, prepend)| Op::Announce { site, prepend }),
            (0usize..8).prop_map(|site| Op::Withdraw { site }),
        ],
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any announce/withdraw sequence converges (queue drains) and ends in
    /// a state consistent with the surviving origin set: every node has a
    /// route iff at least one origin still announces, and every best route
    /// originates at an announcing site.
    #[test]
    fn arbitrary_churn_converges_consistently(seed in 0u64..500, ops in arb_ops()) {
        let (topo, sites) = tiny(seed);
        let rng = RngFactory::new(seed);
        let mut sim = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
        let mut announcing = [false; 8];
        for op in &ops {
            match *op {
                Op::Announce { site, prepend } => {
                    sim.announce(sites[site], prefix(), OriginConfig::prepended(prepend));
                    announcing[site] = true;
                }
                Op::Withdraw { site } => {
                    sim.withdraw(sites[site], prefix());
                    announcing[site] = false;
                }
            }
        }
        prop_assert_eq!(sim.run_to_idle(20_000_000), StepOutcome::Idle);
        let live: Vec<NodeId> = sites
            .iter()
            .enumerate()
            .filter(|(i, _)| announcing[*i])
            .map(|(_, n)| *n)
            .collect();
        for id in topo.ids() {
            match sim.sim().best(id, &prefix()) {
                Some(sel) => {
                    prop_assert!(!live.is_empty(), "{id} has a route but nothing announces");
                    prop_assert!(
                        live.contains(&sel.attrs.origin),
                        "{id} routes to a withdrawn origin {:?}", sel.attrs.origin
                    );
                }
                None => {
                    // Only other sites (loop detection) may lack a route
                    // while origins announce.
                    if !live.is_empty() {
                        prop_assert!(
                            sites.contains(&id),
                            "{id} (non-site) has no route while origins announce"
                        );
                    }
                }
            }
        }
    }

    /// Bit-identical determinism under the default (stochastic) timing:
    /// message counts, final time, and every node's best route.
    #[test]
    fn runs_are_bit_identical(seed in 0u64..500) {
        let run = |_| {
            let (topo, sites) = tiny(seed);
            let rng = RngFactory::new(seed);
            let mut sim = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
            sim.announce(sites[0], prefix(), OriginConfig::plain());
            sim.announce(sites[1], prefix(), OriginConfig::prepended(3));
            sim.run_to_idle(20_000_000);
            sim.withdraw(sites[0], prefix());
            sim.run_to_idle(20_000_000);
            let bests: Vec<_> = topo
                .ids()
                .map(|id| sim.sim().best(id, &prefix()).cloned())
                .collect();
            (sim.sim().stats(), sim.now(), bests)
        };
        prop_assert_eq!(run(0), run(1));
    }

    /// The decision process never selects a route whose AS path contains
    /// the node's own ASN, and FIB state always mirrors the Loc-RIB.
    #[test]
    fn no_self_loops_and_fib_mirrors_locrib(seed in 0u64..500) {
        let (topo, sites) = tiny(seed);
        let rng = RngFactory::new(seed);
        let mut sim = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        for &s in &sites {
            sim.announce(s, prefix(), OriginConfig::plain());
        }
        sim.run_to_idle(20_000_000);
        for id in topo.ids() {
            let asn = topo.node(id).asn;
            match sim.sim().best(id, &prefix()) {
                Some(sel) if sel.from.is_some() => {
                    prop_assert!(!sel.attrs.path.contains(asn), "{id} accepted its own ASN");
                    let (_, nh) = sim.sim().fib_lookup(id, prefix().addr_at(1)).expect("fib");
                    prop_assert_eq!(nh, sel.next_hop());
                }
                Some(sel) => {
                    // Self-originated.
                    prop_assert_eq!(sel.attrs.origin, id);
                    let (_, nh) = sim.sim().fib_lookup(id, prefix().addr_at(1)).expect("fib");
                    prop_assert_eq!(nh, NextHop::Local);
                }
                None => {
                    prop_assert!(sim.sim().fib_lookup(id, prefix().addr_at(1)).is_none());
                }
            }
        }
    }

    /// Instant-timing convergence reaches the same *routing outcome* as the
    /// full stochastic timing — timing shapes the transient, not the fixed
    /// point. (Origins only, since tie-breaks are timing-independent by
    /// construction: deterministic neighbor ordering.)
    #[test]
    fn fixed_point_independent_of_timing(seed in 0u64..200) {
        let (topo, sites) = tiny(seed);
        let outcome = |timing: BgpTimingConfig| {
            let rng = RngFactory::new(seed);
            let mut sim = Standalone::new(&topo, timing, &rng);
            for &s in &sites[..3] {
                sim.announce(s, prefix(), OriginConfig::plain());
            }
            sim.run_to_idle(20_000_000);
            topo.ids()
                .map(|id| sim.sim().best(id, &prefix()).map(|s| s.attrs.origin))
                .collect::<Vec<_>>()
        };
        let fast = outcome(BgpTimingConfig::instant());
        let slow = outcome(BgpTimingConfig::default());
        prop_assert_eq!(fast, slow);
    }

    /// Anycast catchment partitions all nodes among origins; withdrawing
    /// one origin only moves *its* catchment (other nodes keep their
    /// origin).
    #[test]
    fn withdrawal_only_moves_the_failed_catchment(seed in 0u64..200) {
        let (topo, sites) = tiny(seed);
        let rng = RngFactory::new(seed);
        let mut sim = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        for &s in &sites {
            sim.announce(s, prefix(), OriginConfig::plain());
        }
        sim.run_to_idle(20_000_000);
        let before: Vec<_> = topo
            .ids()
            .map(|id| sim.sim().best(id, &prefix()).map(|s| s.attrs.origin))
            .collect();
        let failed = sites[0];
        sim.withdraw(failed, prefix());
        sim.run_to_idle(20_000_000);
        for id in topo.ids() {
            let after = sim.sim().best(id, &prefix()).map(|s| s.attrs.origin);
            let prior = before[id.index()];
            if prior != Some(failed) && prior.is_some() {
                prop_assert_eq!(
                    after, prior,
                    "{}'s origin moved although its site survived", id
                );
            } else if prior == Some(failed) {
                // CDN site nodes reject each other's announcements (loop
                // detection on the shared ASN), so the failed site itself
                // may end route-free; every other node must re-home.
                if !sites.contains(&id) {
                    prop_assert!(after.is_some(), "{} lost service entirely", id);
                    prop_assert_ne!(after, Some(failed));
                }
            }
        }
    }
}
