//! Link/session failure injection tests: silent failures, hold-timer
//! expiry, recovery, and the data-plane consequences.

use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
use bobw_event::{RngFactory, SimDuration};
use bobw_net::{Asn, NodeId, Prefix};
use bobw_topology::{NodeKind, Topology, REGIONS};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Diamond: origin multihomed under p1 and p2, both customers of t1.
///
/// ```text
///        t1
///       /  \
///      p1   p2
///       \  /
///      origin
/// ```
fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let c = REGIONS[0].center;
    let t1 = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
    let p1 = t.add_node(Asn(20), NodeKind::Transit, c, 0);
    let p2 = t.add_node(Asn(21), NodeKind::Transit, c, 0);
    let origin = t.add_node(Asn(30), NodeKind::Stub, c, 0);
    t.link_provider_customer(t1, p1);
    t.link_provider_customer(t1, p2);
    t.link_provider_customer(p1, origin);
    t.link_provider_customer(p2, origin);
    (t, t1, p1, p2, origin)
}

fn timing(hold_s: f64) -> BgpTimingConfig {
    let mut t = BgpTimingConfig::instant();
    t.hold_time_s = hold_s;
    t
}

#[test]
fn silent_failure_holds_routes_until_hold_expiry() {
    let (topo, t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(origin));

    // The origin-p1 link dies silently. No withdrawal is sent: p1 keeps
    // the stale route through the hold window.
    s.fail_link(origin, p1);
    let t_fail = s.now();
    s.run_until(t_fail + SimDuration::from_secs(60), 1_000_000);
    assert_eq!(
        s.sim().best(p1, &pre).unwrap().from,
        Some(origin),
        "route must persist before hold expiry"
    );
    assert!(!s.sim().link_is_up(origin, p1));
    assert!(s.sim().link_is_up(origin, _p2));

    // After the hold timer (90 s), p1 purges and falls back to the path
    // via its provider t1 -> p2 -> origin.
    s.run_to_idle(1_000_000);
    let best = s.sim().best(p1, &pre).unwrap();
    assert_eq!(best.from, Some(t1));
    assert_eq!(best.attrs.origin, origin);
    assert!(s.now() >= t_fail + SimDuration::from_secs(90));
}

#[test]
fn messages_on_failed_link_are_lost() {
    let (topo, _t1, p1, p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    // Fail the link BEFORE announcing: p1 never hears the origin directly.
    s.fail_link(origin, p1);
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    let best = s.sim().best(p1, &pre).expect("route via t1 survives");
    assert_ne!(best.from, Some(origin));
    // p2 heard it directly.
    assert_eq!(s.sim().best(p2, &pre).unwrap().from, Some(origin));
}

#[test]
fn restore_resends_full_table() {
    let (topo, _t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    s.fail_link(origin, p1);
    s.run_to_idle(1_000_000); // hold expires, p1 reroutes via t1
    assert_ne!(s.sim().best(p1, &pre).unwrap().from, Some(origin));

    // Link comes back: session re-establishes, full table re-exchanged,
    // p1 prefers its direct customer route again.
    s.restore_link(origin, p1);
    s.run_to_idle(1_000_000);
    assert!(s.sim().link_is_up(origin, p1));
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(origin));
}

#[test]
fn hold_expiry_noop_if_restored_in_time() {
    let (topo, _t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    s.fail_link(origin, p1);
    let t_fail = s.now();
    // Flap: restore before the hold timer fires.
    s.run_until(t_fail + SimDuration::from_secs(30), 1_000_000);
    s.restore_link(origin, p1);
    s.run_to_idle(1_000_000);
    // The pending HoldExpire events fired as no-ops; the direct route wins.
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(origin));
}

#[test]
fn short_hold_time_converges_fast() {
    // BFD-style sub-second detection: failure behaves almost like a
    // withdrawal.
    let (topo, t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(0.3), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    let t_fail = s.now();
    s.fail_link(origin, p1);
    s.run_to_idle(1_000_000);
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(t1));
    assert!(
        s.now().since(t_fail) < SimDuration::from_secs(5),
        "BFD-scale detection should reroute in seconds, took {}",
        s.now().since(t_fail)
    );
}

#[test]
fn whole_site_crash_isolates_until_hold() {
    let (topo, t1, p1, p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    // Crash all of the origin's links at once.
    s.fail_all_links(origin, &[p1, p2]);
    s.run_to_idle(1_000_000);
    for n in [t1, p1, p2] {
        assert!(
            s.sim().best(n, &pre).is_none(),
            "{n} kept a route to a fully crashed site"
        );
    }
}

#[test]
fn double_link_failure_is_idempotent() {
    let (topo, _t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);

    // First failure arms one hold timer per link end.
    s.fail_link(origin, p1);
    let armed = s.pending_events();
    assert_eq!(armed, 2, "one HoldExpire per end of the failed link");

    // Failing the same (already dead) link again is a no-op: no extra
    // timers, no extra best-route churn once everything settles.
    s.fail_link(origin, p1);
    assert_eq!(
        s.pending_events(),
        armed,
        "re-failing a dead link must not schedule duplicate HoldExpire events"
    );

    s.run_to_idle(1_000_000);
    let single = {
        let rng = RngFactory::new(1);
        let mut reference = Standalone::new(&topo, timing(90.0), &rng);
        reference.announce(origin, pre, OriginConfig::plain());
        reference.run_to_idle(1_000_000);
        reference.fail_link(origin, p1);
        reference.run_to_idle(1_000_000);
        reference
    };
    assert_eq!(
        s.sim().stats().best_changes,
        single.sim().stats().best_changes
    );
    assert_eq!(s.events_processed(), single.events_processed());
}

#[test]
fn double_site_crash_is_idempotent() {
    // SilentCrash after a drill: the experiment layer can end up crashing
    // the same site twice; the second crash must not double the timers.
    let (topo, _t1, p1, p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);

    s.fail_all_links(origin, &[p1, p2]);
    let armed = s.pending_events();
    assert_eq!(armed, 4, "two links, one HoldExpire per end");
    s.fail_all_links(origin, &[p1, p2]);
    assert_eq!(s.pending_events(), armed);

    // A partial overlap is also handled per-session: only the link that is
    // still up arms new timers.
    s.restore_link(origin, p1);
    s.run_until(s.now() + SimDuration::from_secs(1), 1_000_000);
    let before = s.pending_events();
    s.fail_all_links(origin, &[p1, p2]);
    assert_eq!(
        s.pending_events(),
        before + 2,
        "only the restored link arms fresh hold timers"
    );
}

#[test]
fn overlapping_link_failure_and_site_crash_is_idempotent() {
    // The scenario engine can script `LinkDown` on a link and then a
    // `SiteFail` that crashes every link of the same node. The overlap
    // must behave per-session: the crash only arms timers on the link
    // that is still alive, and the end state matches a direct crash.
    let (topo, _t1, p1, p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);

    s.fail_link(origin, p1);
    let armed = s.pending_events();
    assert_eq!(armed, 2, "one HoldExpire per end of the failed link");
    s.fail_all_links(origin, &[p1, p2]);
    assert_eq!(
        s.pending_events(),
        armed + 2,
        "the crash arms timers only on the still-alive link"
    );
    s.run_to_idle(1_000_000);

    let direct = {
        let rng = RngFactory::new(1);
        let mut reference = Standalone::new(&topo, timing(90.0), &rng);
        reference.announce(origin, pre, OriginConfig::plain());
        reference.run_to_idle(1_000_000);
        reference.fail_all_links(origin, &[p1, p2]);
        reference.run_to_idle(1_000_000);
        reference
    };
    for n in [NodeId(0), NodeId(1), NodeId(2), NodeId(3)] {
        assert_eq!(
            bobw_bgp::dump_rib(s.sim(), n, &pre),
            bobw_bgp::dump_rib(direct.sim(), n, &pre),
            "RIB at {n} diverges between overlapped and direct crash"
        );
    }
}

#[test]
fn flap_sequence_restores_full_rib_equivalence() {
    // A scenario `Flap` compiles to withdraw/re-announce cycles. After
    // the last re-announce converges, every node's full RIB (candidates
    // and best) must be indistinguishable from a run that never flapped
    // — flap residue (stale candidates, lingering timers) would poison
    // any measurement taken after the churn.
    let (topo, t1, p1, p2, origin) = diamond();
    let pre = p("184.164.244.0/24");

    let rng = RngFactory::new(1);
    let mut flapped = Standalone::new(&topo, timing(90.0), &rng);
    flapped.announce(origin, pre, OriginConfig::plain());
    flapped.run_to_idle(1_000_000);
    for _ in 0..3 {
        flapped.withdraw(origin, pre);
        flapped.run_until(flapped.now() + SimDuration::from_secs(5), 1_000_000);
        flapped.announce(origin, pre, OriginConfig::plain());
        flapped.run_until(flapped.now() + SimDuration::from_secs(25), 1_000_000);
    }
    flapped.run_to_idle(1_000_000);

    let rng = RngFactory::new(1);
    let mut calm = Standalone::new(&topo, timing(90.0), &rng);
    calm.announce(origin, pre, OriginConfig::plain());
    calm.run_to_idle(1_000_000);

    assert_eq!(flapped.pending_events(), 0, "flap left timers armed");
    for n in [t1, p1, p2, origin] {
        assert_eq!(
            bobw_bgp::dump_rib(flapped.sim(), n, &pre),
            bobw_bgp::dump_rib(calm.sim(), n, &pre),
            "RIB at {n} retains flap residue"
        );
    }
}
