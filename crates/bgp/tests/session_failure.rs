//! Link/session failure injection tests: silent failures, hold-timer
//! expiry, recovery, and the data-plane consequences.

use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
use bobw_event::{RngFactory, SimDuration, SimTime};
use bobw_net::{Asn, NodeId, Prefix};
use bobw_topology::{NodeKind, Topology, REGIONS};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Diamond: origin multihomed under p1 and p2, both customers of t1.
///
/// ```text
///        t1
///       /  \
///      p1   p2
///       \  /
///      origin
/// ```
fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let c = REGIONS[0].center;
    let t1 = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
    let p1 = t.add_node(Asn(20), NodeKind::Transit, c, 0);
    let p2 = t.add_node(Asn(21), NodeKind::Transit, c, 0);
    let origin = t.add_node(Asn(30), NodeKind::Stub, c, 0);
    t.link_provider_customer(t1, p1);
    t.link_provider_customer(t1, p2);
    t.link_provider_customer(p1, origin);
    t.link_provider_customer(p2, origin);
    (t, t1, p1, p2, origin)
}

fn timing(hold_s: f64) -> BgpTimingConfig {
    let mut t = BgpTimingConfig::instant();
    t.hold_time_s = hold_s;
    t
}

#[test]
fn silent_failure_holds_routes_until_hold_expiry() {
    let (topo, t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(origin));

    // The origin-p1 link dies silently. No withdrawal is sent: p1 keeps
    // the stale route through the hold window.
    s.fail_link(origin, p1);
    let t_fail = s.now();
    s.run_until(t_fail + SimDuration::from_secs(60), 1_000_000);
    assert_eq!(
        s.sim().best(p1, &pre).unwrap().from,
        Some(origin),
        "route must persist before hold expiry"
    );
    assert!(!s.sim().link_is_up(origin, p1));
    assert!(s.sim().link_is_up(origin, _p2));

    // After the hold timer (90 s), p1 purges and falls back to the path
    // via its provider t1 -> p2 -> origin.
    s.run_to_idle(1_000_000);
    let best = s.sim().best(p1, &pre).unwrap();
    assert_eq!(best.from, Some(t1));
    assert_eq!(best.attrs.origin, origin);
    assert!(s.now() >= t_fail + SimDuration::from_secs(90));
}

#[test]
fn messages_on_failed_link_are_lost() {
    let (topo, _t1, p1, p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    // Fail the link BEFORE announcing: p1 never hears the origin directly.
    s.fail_link(origin, p1);
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    let best = s.sim().best(p1, &pre).expect("route via t1 survives");
    assert_ne!(best.from, Some(origin));
    // p2 heard it directly.
    assert_eq!(s.sim().best(p2, &pre).unwrap().from, Some(origin));
}

#[test]
fn restore_resends_full_table() {
    let (topo, _t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    s.fail_link(origin, p1);
    s.run_to_idle(1_000_000); // hold expires, p1 reroutes via t1
    assert_ne!(s.sim().best(p1, &pre).unwrap().from, Some(origin));

    // Link comes back: session re-establishes, full table re-exchanged,
    // p1 prefers its direct customer route again.
    s.restore_link(origin, p1);
    s.run_to_idle(1_000_000);
    assert!(s.sim().link_is_up(origin, p1));
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(origin));
}

#[test]
fn hold_expiry_noop_if_restored_in_time() {
    let (topo, _t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    s.fail_link(origin, p1);
    let t_fail = s.now();
    // Flap: restore before the hold timer fires.
    s.run_until(t_fail + SimDuration::from_secs(30), 1_000_000);
    s.restore_link(origin, p1);
    s.run_to_idle(1_000_000);
    // The pending HoldExpire events fired as no-ops; the direct route wins.
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(origin));
}

#[test]
fn short_hold_time_converges_fast() {
    // BFD-style sub-second detection: failure behaves almost like a
    // withdrawal.
    let (topo, t1, p1, _p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(0.3), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    let t_fail = s.now();
    s.fail_link(origin, p1);
    s.run_to_idle(1_000_000);
    assert_eq!(s.sim().best(p1, &pre).unwrap().from, Some(t1));
    assert!(
        s.now().since(t_fail) < SimDuration::from_secs(5),
        "BFD-scale detection should reroute in seconds, took {}",
        s.now().since(t_fail)
    );
}

#[test]
fn whole_site_crash_isolates_until_hold() {
    let (topo, t1, p1, p2, origin) = diamond();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, timing(90.0), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(origin, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    // Crash all of the origin's links at once.
    s.fail_all_links(origin, &[p1, p2]);
    s.run_to_idle(1_000_000);
    for n in [t1, p1, p2] {
        assert!(
            s.sim().best(n, &pre).is_none(),
            "{n} kept a route to a fully crashed site"
        );
    }
}
