//! Kernel equivalence: [`FlatRib`] (the production flat-memory kernel) and
//! [`MapRib`] (the historic nested-map reference) must make identical
//! selections after every operation of an arbitrary recorded trace.
//!
//! The decision in `cmp_selected` is a strict total order over candidates
//! from distinct neighbors, so the selection is independent of each
//! kernel's iteration order — this test replays random insert/remove
//! traces (shaped like what `BgpNode::receive` records against its RIB)
//! and requires both kernels to agree on candidates and selection at every
//! step.

use bobw_bgp::{select_from, FlatRib, MapRib, RibKernel, RouteAttrs};
use bobw_net::{AsPath, Asn, NodeId, Prefix};
use proptest::prelude::*;

const PREFIXES: [&str; 3] = ["10.0.0.0/24", "10.0.1.0/24", "184.164.248.0/24"];

fn prefix(i: usize) -> Prefix {
    PREFIXES[i % PREFIXES.len()].parse().unwrap()
}

/// The per-node tie key the production decision uses: neighbor index `n`
/// maps to a peer id and ASN.
fn key_of(n: u32) -> (NodeId, Asn) {
    (NodeId(n + 10), Asn(n + 100))
}

/// One recorded RIB operation: an update (insert/replace) or a withdrawal.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        prefix: usize,
        nbr: u32,
        local_pref: u32,
        hops: Vec<u32>,
        med: u32,
    },
    Remove {
        prefix: usize,
        nbr: u32,
    },
}

fn arb_trace() -> impl Strategy<Value = Vec<Op>> {
    // One op in four is a removal — withdraw-heavy traces degenerate to
    // empty RIBs immediately, so keep the tables populated.
    let op = (
        (0usize..4, 0usize..3, 0u32..6),
        (
            prop_oneof![Just(50u32), Just(100), Just(200)],
            proptest::collection::vec(1u32..20, 1..5),
            0u32..3,
        ),
    )
        .prop_map(|((kind, prefix, nbr), (local_pref, hops, med))| {
            if kind == 0 {
                Op::Remove { prefix, nbr }
            } else {
                Op::Insert {
                    prefix,
                    nbr,
                    local_pref,
                    hops,
                    med,
                }
            }
        });
    proptest::collection::vec(op, 1..40)
}

fn attrs(local_pref: u32, hops: &[u32], med: u32) -> RouteAttrs {
    RouteAttrs {
        path: AsPath::from_hops(hops.iter().map(|&a| Asn(a)).collect()),
        local_pref,
        med,
        origin: NodeId(99),
        no_export: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every replayed operation, both kernels expose identical
    /// candidate sets (same neighbors, same attributes, same order) and
    /// make the identical selection for every prefix.
    #[test]
    fn kernels_agree_on_recorded_traces(trace in arb_trace()) {
        let mut flat = FlatRib::new();
        let mut map = MapRib::new();
        for op in &trace {
            match op {
                Op::Insert { prefix: p, nbr, local_pref, hops, med } => {
                    let a = attrs(*local_pref, hops, *med);
                    flat.insert(prefix(*p), *nbr, a);
                    map.insert(prefix(*p), *nbr, a);
                }
                Op::Remove { prefix: p, nbr } => {
                    prop_assert_eq!(
                        flat.remove(prefix(*p), *nbr),
                        map.remove(prefix(*p), *nbr),
                        "kernels disagree on whether a candidate existed"
                    );
                }
            }
            for i in 0..PREFIXES.len() {
                let pre = prefix(i);
                prop_assert_eq!(
                    flat.candidates(&pre),
                    map.candidates(&pre),
                    "candidate sets diverged at prefix {}",
                    pre
                );
                prop_assert_eq!(
                    select_from(&flat, &pre, key_of),
                    select_from(&map, &pre, key_of),
                    "selections diverged at prefix {}",
                    pre
                );
            }
        }
        // The per-neighbor reverse index agrees too (session expiry uses
        // it to find affected prefixes; order is not part of the contract).
        for nbr in 0..6 {
            let mut a = flat.prefixes_from(nbr);
            let mut b = map.prefixes_from(nbr);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }
}
