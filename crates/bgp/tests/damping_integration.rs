//! Flap damping end-to-end: suppression hides flapping routes from the
//! decision, and reuse timers bring them back.

use bobw_bgp::{BgpTimingConfig, DampingConfig, OriginConfig, Standalone};
use bobw_event::RngFactory;
use bobw_net::{Asn, NodeId, Prefix};
use bobw_topology::{NodeKind, Topology, REGIONS};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// receiver has two providers: flappy (direct to origin A) and steady
/// (direct to origin B).
fn topo() -> (Topology, NodeId, NodeId, NodeId, NodeId, NodeId) {
    let mut t = Topology::new();
    let c = REGIONS[0].center;
    let receiver = t.add_node(Asn(10), NodeKind::Stub, c, 0);
    let flappy = t.add_node(Asn(20), NodeKind::Transit, c, 0);
    let steady = t.add_node(Asn(21), NodeKind::Transit, c, 0);
    let a = t.add_node(Asn(30), NodeKind::Stub, c, 0);
    let b = t.add_node(Asn(31), NodeKind::Stub, c, 0);
    t.link_provider_customer(flappy, receiver);
    t.link_provider_customer(steady, receiver);
    t.link_provider_customer(flappy, a);
    t.link_provider_customer(steady, b);
    (t, receiver, flappy, steady, a, b)
}

fn damped_timing() -> BgpTimingConfig {
    let mut t = BgpTimingConfig::instant();
    t.flap_damping = Some(DampingConfig::default());
    t
}

#[test]
fn flapping_route_gets_suppressed_and_reused() {
    let (topo, receiver, flappy, steady, a, b) = topo();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, damped_timing(), &rng);
    let pre = p("184.164.244.0/24");
    // Both origins announce; receiver prefers the lower-id provider
    // (deterministic tie-break on equal pref/length).
    s.announce(a, pre, OriginConfig::plain());
    s.announce(b, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    assert_eq!(
        s.sim().best(receiver, &pre).unwrap().from,
        Some(flappy),
        "baseline: route via the lower-id provider"
    );
    // Origin A flaps three times in quick succession.
    for _ in 0..3 {
        s.withdraw(a, pre);
        s.run_until_secs(5);
        s.announce(a, pre, OriginConfig::plain());
        s.run_until_secs(5);
    }
    s.run_until_secs(60);
    // The flapped route is suppressed: receiver uses the steady path even
    // though the flappy one is present and would otherwise win.
    assert_eq!(
        s.sim().best(receiver, &pre).unwrap().from,
        Some(steady),
        "suppression must move traffic to the steady provider"
    );
    // After the penalty decays (~tens of minutes), the route returns.
    s.run_to_idle(10_000_000);
    assert_eq!(
        s.sim().best(receiver, &pre).unwrap().from,
        Some(flappy),
        "reuse must restore the preferred route"
    );
}

#[test]
fn damping_off_by_default_means_no_suppression() {
    let (topo, receiver, flappy, _steady, a, b) = topo();
    let rng = RngFactory::new(1);
    let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
    let pre = p("184.164.244.0/24");
    s.announce(a, pre, OriginConfig::plain());
    s.announce(b, pre, OriginConfig::plain());
    s.run_to_idle(1_000_000);
    for _ in 0..5 {
        s.withdraw(a, pre);
        s.run_until_secs(2);
        s.announce(a, pre, OriginConfig::plain());
        s.run_until_secs(2);
    }
    s.run_to_idle(1_000_000);
    assert_eq!(
        s.sim().best(receiver, &pre).unwrap().from,
        Some(flappy),
        "without damping the flappy-but-preferred route stays best"
    );
}
