//! # bobw-bgp
//!
//! An AS-level BGP simulator built for one purpose: reproducing the routing
//! dynamics that the *Best of Both Worlds* paper (IMC '22) measures on the
//! real Internet. The paper's findings are all consequences of four BGP
//! behaviours, each implemented here:
//!
//! 1. **The decision process** (RFC 4271 order: LOCAL_PREF, then AS-path
//!    length, then MED, then deterministic tiebreaks) with Gao-Rexford
//!    import preferences (customer > peer > provider). This is why
//!    `proactive-prepending` loses control at some sites: a *customer*
//!    route to a prepended backup site beats a *peer* route to the intended
//!    site no matter the prepend count (Appendix C.1).
//! 2. **Valley-free export** (routes from customers go to everyone; routes
//!    from peers/providers go only to customers), which shapes every
//!    catchment in Table 1.
//! 3. **Path exploration with MRAI rate-limiting**: when a node's best
//!    route is withdrawn it falls back to (possibly stale) alternatives
//!    from other neighbors and re-advertises them; each correction round is
//!    paced by the Min Route Advertisement Interval, while withdrawals
//!    themselves travel un-throttled. That asymmetry is exactly why a
//!    unicast withdrawal takes ~100 s to converge (Appendix A, Figure 3)
//!    while a fresh anycast announcement propagates in ~10 s (Appendix B,
//!    Figure 4) — and therefore why `reactive-anycast` beats
//!    `proactive-superprefix` (§4).
//! 4. **Per-prefix FIBs with longest-prefix match**, fed by the Loc-RIB, so
//!    the data plane blackholes at routers holding stale more-specific
//!    routes during superprefix failover (§3).
//!
//! The simulator is event-driven and deterministic; see `bobw-event`.

pub mod damping;
pub mod diag;
pub mod node;
pub mod policy;
pub mod rib;
pub mod route;
pub mod sim;
pub mod timing;

pub use damping::{DampState, DampingConfig};
pub use diag::{dump_rib, explain, Candidate, Verdict};
pub use node::BgpNode;
pub use policy::{import_local_pref, may_export, OriginConfig};
pub use rib::{cmp_selected, select_from, FlatRib, MapRib, RibKernel};
pub use route::{
    BgpEvent, Message, NextHop, RouteAttrs, RouteChange, Selected, SessionTimerKind, WireRoute,
};
pub use sim::{BgpSim, SessionKnobs, SimSeed, Standalone};
pub use timing::BgpTimingConfig;
