//! RIB kernels: candidate storage (Adj-RIB-In) plus the selected best
//! (Loc-RIB) behind a small trait, with two implementations:
//!
//! * [`FlatRib`] — the production kernel. Prefixes are interned per node
//!   into dense indices; per prefix the candidates live in a `Vec` sorted
//!   by neighbor index and the selected best sits in a parallel slot.
//!   Nothing on the per-message hot path hashes a `Prefix` or walks a
//!   `BTreeMap`; the decision process iterates a contiguous slice.
//! * [`MapRib`] — the reference kernel, shaped exactly like the historic
//!   `HashMap<Prefix, BTreeMap<neighbor, RouteAttrs>>` storage. It exists
//!   so equivalence tests can replay a recorded operation trace against
//!   both kernels and require identical selections.
//!
//! # Determinism
//!
//! The selection in [`cmp_selected`] is a *strict total order* over
//! candidates from distinct neighbors (the final tie-break is the neighbor
//! `NodeId`), so the chosen best is independent of candidate iteration
//! order — `FlatRib` iterating in neighbor-index order and `MapRib`
//! iterating in `NodeId` order select the same route. Anything that *does*
//! depend on enumeration order (session expiry re-decisions, which draw RNG
//! jitter per prefix) sorts by `Prefix` value first, same as before this
//! kernel existed.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

use bobw_net::{Asn, NodeId, Prefix};

use crate::route::{RouteAttrs, Selected};

/// Tie-break key for a candidate: self-originated routes sort first, then
/// neighbor ASN, then neighbor id — the RFC 4271-flavoured arbitrary-but-
/// total tail of the decision process.
pub type TieKey = (u8, Asn, NodeId);

/// Tie key for the node's own origination.
pub const SELF_TIE_KEY: TieKey = (0, Asn(0), NodeId(0));

/// RFC 4271-flavoured candidate comparison; `Ordering::Less` = better.
/// Shared by the production node and the kernel equivalence tests so both
/// kernels apply the identical decision.
pub fn cmp_selected(a: &Selected, ka: TieKey, b: &Selected, kb: TieKey) -> Ordering {
    b.attrs
        .local_pref
        .cmp(&a.attrs.local_pref)
        .then(a.attrs.path.len().cmp(&b.attrs.path.len()))
        .then(a.attrs.med.cmp(&b.attrs.med))
        .then(ka.cmp(&kb))
}

/// Candidate storage + selected best, keyed by `Prefix` and a dense
/// per-node neighbor index (session order at topology build time).
pub trait RibKernel {
    /// Inserts or replaces the candidate from `nbr` for `prefix`.
    fn insert(&mut self, prefix: Prefix, nbr: u32, attrs: RouteAttrs);
    /// Removes the candidate from `nbr`; returns whether one existed.
    fn remove(&mut self, prefix: Prefix, nbr: u32) -> bool;
    /// Candidates for `prefix` in ascending neighbor-index order.
    fn candidates(&self, prefix: &Prefix) -> Vec<(u32, RouteAttrs)>;
    /// Every prefix holding a candidate from `nbr` (any order; callers
    /// sort by prefix value before drawing RNG jitter per prefix).
    fn prefixes_from(&self, nbr: u32) -> Vec<Prefix>;
}

#[derive(Default)]
struct PrefixEntry {
    /// Sparse candidate set, sorted by neighbor index. A node's neighbor
    /// count is small and churn replaces in place, so a sorted `Vec` beats
    /// any tree/map on both lookup and iteration.
    routes: Vec<(u32, RouteAttrs)>,
    /// The Loc-RIB slot for this prefix.
    best: Option<Selected>,
}

/// The production kernel: interned prefixes, SoA per-prefix entries.
#[derive(Default)]
pub struct FlatRib {
    /// Interned prefixes in first-seen order; the index into this Vec is
    /// the prefix id used everywhere else (including per-neighbor send
    /// state). The per-node prefix universe is tiny (sites + covering +
    /// probe prefixes), so a linear scan beats hashing; entries are
    /// append-only within a run.
    prefixes: Vec<Prefix>,
    entries: Vec<PrefixEntry>,
}

impl FlatRib {
    pub fn new() -> FlatRib {
        FlatRib::default()
    }

    /// The dense id for `prefix`, interning it on first sight.
    pub fn intern(&mut self, prefix: Prefix) -> usize {
        if let Some(i) = self.position(&prefix) {
            return i;
        }
        self.prefixes.push(prefix);
        self.entries.push(PrefixEntry::default());
        self.prefixes.len() - 1
    }

    /// The dense id for `prefix`, if it has been seen.
    pub fn position(&self, prefix: &Prefix) -> Option<usize> {
        self.prefixes.iter().position(|p| p == prefix)
    }

    /// Inserts or replaces the candidate from `nbr` at prefix id `pidx`.
    pub fn insert_at(&mut self, pidx: usize, nbr: u32, attrs: RouteAttrs) {
        let routes = &mut self.entries[pidx].routes;
        match routes.binary_search_by_key(&nbr, |&(n, _)| n) {
            Ok(i) => routes[i].1 = attrs,
            Err(i) => routes.insert(i, (nbr, attrs)),
        }
    }

    /// Removes the candidate from `nbr` at prefix id `pidx`.
    pub fn remove_at(&mut self, pidx: usize, nbr: u32) -> bool {
        let routes = &mut self.entries[pidx].routes;
        match routes.binary_search_by_key(&nbr, |&(n, _)| n) {
            Ok(i) => {
                routes.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Candidates at prefix id `pidx`, ascending by neighbor index.
    pub fn routes_at(&self, pidx: usize) -> &[(u32, RouteAttrs)] {
        &self.entries[pidx].routes
    }

    /// The Loc-RIB slot at prefix id `pidx`.
    pub fn best_at(&self, pidx: usize) -> Option<&Selected> {
        self.entries[pidx].best.as_ref()
    }

    pub fn set_best_at(&mut self, pidx: usize, best: Option<Selected>) {
        self.entries[pidx].best = best;
    }

    /// Appends `(prefix, id)` for every prefix whose candidate set includes
    /// `nbr` (used by session expiry, which then sorts by prefix value).
    pub fn prefixes_from_into(&self, nbr: u32, out: &mut Vec<(Prefix, u32)>) {
        for (i, e) in self.entries.iter().enumerate() {
            if e.routes.binary_search_by_key(&nbr, |&(n, _)| n).is_ok() {
                out.push((self.prefixes[i], i as u32));
            }
        }
    }

    /// Appends `(prefix, id)` for every prefix with a selected best (used
    /// by session restore, which re-exports the full table sorted).
    pub fn prefixes_with_best_into(&self, out: &mut Vec<(Prefix, u32)>) {
        for (i, e) in self.entries.iter().enumerate() {
            if e.best.is_some() {
                out.push((self.prefixes[i], i as u32));
            }
        }
    }
}

impl RibKernel for FlatRib {
    fn insert(&mut self, prefix: Prefix, nbr: u32, attrs: RouteAttrs) {
        let pidx = self.intern(prefix);
        self.insert_at(pidx, nbr, attrs);
    }

    fn remove(&mut self, prefix: Prefix, nbr: u32) -> bool {
        match self.position(&prefix) {
            Some(pidx) => self.remove_at(pidx, nbr),
            None => false,
        }
    }

    fn candidates(&self, prefix: &Prefix) -> Vec<(u32, RouteAttrs)> {
        match self.position(prefix) {
            Some(pidx) => self.routes_at(pidx).to_vec(),
            None => Vec::new(),
        }
    }

    fn prefixes_from(&self, nbr: u32) -> Vec<Prefix> {
        let mut out = Vec::new();
        self.prefixes_from_into(nbr, &mut out);
        out.into_iter().map(|(p, _)| p).collect()
    }
}

/// The reference kernel: the historic nested-map storage, kept for
/// equivalence testing against [`FlatRib`].
#[derive(Default)]
pub struct MapRib {
    adj_in: HashMap<Prefix, BTreeMap<u32, RouteAttrs>>,
}

impl MapRib {
    pub fn new() -> MapRib {
        MapRib::default()
    }
}

impl RibKernel for MapRib {
    fn insert(&mut self, prefix: Prefix, nbr: u32, attrs: RouteAttrs) {
        self.adj_in.entry(prefix).or_default().insert(nbr, attrs);
    }

    fn remove(&mut self, prefix: Prefix, nbr: u32) -> bool {
        let Some(m) = self.adj_in.get_mut(&prefix) else {
            return false;
        };
        let had = m.remove(&nbr).is_some();
        if m.is_empty() {
            self.adj_in.remove(&prefix);
        }
        had
    }

    fn candidates(&self, prefix: &Prefix) -> Vec<(u32, RouteAttrs)> {
        match self.adj_in.get(prefix) {
            Some(m) => m.iter().map(|(&n, a)| (n, *a)).collect(),
            None => Vec::new(),
        }
    }

    fn prefixes_from(&self, nbr: u32) -> Vec<Prefix> {
        self.adj_in
            .iter()
            .filter(|(_, m)| m.contains_key(&nbr))
            .map(|(p, _)| *p)
            .collect()
    }
}

/// Runs the shared decision over a kernel's candidates (no damping, no
/// origination — the pure selection step), tagging each candidate with the
/// tie key provided by `key_of`. Used by the kernel equivalence tests.
pub fn select_from<K: RibKernel>(
    kernel: &K,
    prefix: &Prefix,
    key_of: impl Fn(u32) -> (NodeId, Asn),
) -> Option<Selected> {
    let mut best: Option<(Selected, TieKey)> = None;
    for (nbr, attrs) in kernel.candidates(prefix) {
        let (peer, peer_asn) = key_of(nbr);
        let cand = Selected {
            from: Some(peer),
            attrs,
        };
        let key = (1, peer_asn, peer);
        best = match best {
            None => Some((cand, key)),
            Some((cur, cur_key)) => {
                if cmp_selected(&cand, key, &cur, cur_key) == Ordering::Less {
                    Some((cand, key))
                } else {
                    Some((cur, cur_key))
                }
            }
        };
    }
    best.map(|(s, _)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_net::AsPath;

    fn attrs(pref: u32, hops: &[u32], med: u32) -> RouteAttrs {
        RouteAttrs {
            path: AsPath::from_hops(hops.iter().map(|&a| Asn(a)).collect()),
            local_pref: pref,
            med,
            origin: NodeId(99),
            no_export: false,
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn flat_insert_replace_remove() {
        let mut rib = FlatRib::new();
        let pre = p("10.0.0.0/24");
        rib.insert(pre, 2, attrs(100, &[2, 9], 0));
        rib.insert(pre, 0, attrs(100, &[1, 9], 0));
        rib.insert(pre, 1, attrs(100, &[3, 9], 0));
        let c = rib.candidates(&pre);
        assert_eq!(
            c.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "candidates must come back in neighbor-index order"
        );
        // Replace in place.
        rib.insert(pre, 1, attrs(100, &[3, 3, 9], 0));
        assert_eq!(rib.candidates(&pre)[1].1.path.len(), 3);
        assert!(rib.remove(pre, 1));
        assert!(!rib.remove(pre, 1));
        assert_eq!(rib.candidates(&pre).len(), 2);
    }

    #[test]
    fn tie_break_is_total_and_order_independent() {
        // Same local-pref/len/med from two neighbors: the lower (asn, id)
        // must win regardless of insertion order.
        let key_of = |n: u32| (NodeId(n + 10), Asn(n + 100));
        let pre = p("10.0.0.0/24");
        for order in [[0u32, 1], [1, 0]] {
            let mut rib = FlatRib::new();
            for &n in &order {
                rib.insert(pre, n, attrs(100, &[n + 100, 9], 0));
            }
            let sel = select_from(&rib, &pre, key_of).unwrap();
            assert_eq!(sel.from, Some(NodeId(10)));
        }
    }

    #[test]
    fn kernels_agree_on_handwritten_ops() {
        let key_of = |n: u32| (NodeId(n + 10), Asn(n + 100));
        let mut flat = FlatRib::new();
        let mut map = MapRib::new();
        let pre1 = p("10.0.0.0/24");
        let pre2 = p("10.0.1.0/24");
        let ops: Vec<(Prefix, u32, Option<RouteAttrs>)> = vec![
            (pre1, 0, Some(attrs(100, &[110, 9], 0))),
            (pre1, 1, Some(attrs(200, &[111, 8, 9], 0))),
            (pre2, 2, Some(attrs(100, &[112, 9], 5))),
            (pre1, 1, None),
            (pre1, 2, Some(attrs(100, &[112, 9], 0))),
            (pre1, 0, None),
            (pre2, 2, None),
        ];
        for (prefix, nbr, op) in ops {
            match op {
                Some(a) => {
                    flat.insert(prefix, nbr, a);
                    map.insert(prefix, nbr, a);
                }
                None => {
                    assert_eq!(flat.remove(prefix, nbr), map.remove(prefix, nbr));
                }
            }
            for pre in [&pre1, &pre2] {
                assert_eq!(
                    select_from(&flat, pre, key_of),
                    select_from(&map, pre, key_of)
                );
            }
        }
    }
}
