//! The network-wide BGP simulation: all nodes, message dispatch, the
//! route-change history (collector feed), and a standalone driver for
//! pure-control-plane experiments.

use bobw_event::{Engine, Handler, RngFactory, Scheduler, SimDuration, SimTime, StepOutcome};
use bobw_net::{NodeId, Prefix};
use bobw_topology::Topology;
use rand::rngs::SmallRng;

use crate::node::BgpNode;
use crate::policy::OriginConfig;
use crate::route::{BgpEvent, NextHop, RouteChange, Selected};
use crate::timing::BgpTimingConfig;

/// Aggregate counters, exposed for the engine benchmarks and for sanity
/// checks in experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// BGP messages delivered to nodes.
    pub messages: u64,
    /// Best-route changes across all nodes.
    pub best_changes: u64,
}

/// The whole-network BGP state: one [`BgpNode`] per topology node.
///
/// `BgpSim` is deliberately engine-agnostic: [`BgpSim::handle`] consumes an
/// event and pushes follow-ups (as `(delay, event)` pairs) into a caller
/// buffer. `bobw-core` embeds it in a composite simulation next to the data
/// plane and DNS; [`Standalone`] wraps it for control-plane-only runs.
pub struct BgpSim {
    timing: BgpTimingConfig,
    nodes: Vec<BgpNode>,
    proc_rngs: Vec<SmallRng>,
    history: Vec<RouteChange>,
    record_history: bool,
    stats: SimStats,
    /// Bumped on every change to observable forwarding state: any node's
    /// best route (hence FIB) and any session's up/down flag. Lets data
    /// plane consumers memoize pure functions of FIB + session state (probe
    /// walks) and invalidate exactly when routing actually moved.
    version: u64,
}

/// Precomputed stochastic per-session state for one `(topology, timing,
/// seed)` triple: every session's MRAI value and every node's
/// processing-delay RNG stream in its initial state.
///
/// [`BgpSim::new`] derives roughly two RNG streams per directed session and
/// one per node. A harness that builds one simulator per experiment cell
/// over a shared testbed re-derives all of them for identical values; with
/// a seed built once per testbed, [`BgpSim::from_seed`] turns per-cell
/// construction into plain clones. The seed is `Send + Sync`, so one
/// instance serves a cell-parallel thread pool.
pub struct SimSeed {
    mrai: Vec<Box<[SimDuration]>>,
    proc: Vec<SmallRng>,
}

impl SimSeed {
    /// Samples the per-session MRAI values and per-node processing streams
    /// exactly as [`BgpSim::new`] would with the same arguments.
    pub fn new(topo: &Topology, timing: &BgpTimingConfig, rng: &RngFactory) -> SimSeed {
        let mrai = topo
            .nodes()
            .map(|node| {
                topo.neighbors(node.id)
                    .iter()
                    .map(|adj| {
                        let session_key = (node.id.index() as u64) << 32 | adj.peer.index() as u64;
                        timing.sample_session_mrai(rng, session_key)
                    })
                    .collect()
            })
            .collect();
        let proc = topo
            .nodes()
            .map(|node| rng.stream("bgp-proc", node.id.index() as u64))
            .collect();
        SimSeed { mrai, proc }
    }
}

impl BgpSim {
    /// Builds per-node BGP state over `topo`. MRAI values are sampled per
    /// directed session from the factory's `"mrai-session"` stream.
    pub fn new(topo: &Topology, timing: BgpTimingConfig, rng: &RngFactory) -> BgpSim {
        let seed = SimSeed::new(topo, &timing, rng);
        BgpSim::from_seed(topo, timing, &seed)
    }

    /// [`BgpSim::new`] against a prebuilt [`SimSeed`] — byte-identical
    /// state, but all RNG stream derivation replaced by clones.
    pub fn from_seed(topo: &Topology, timing: BgpTimingConfig, seed: &SimSeed) -> BgpSim {
        let n = topo.len();
        let mut nodes = Vec::with_capacity(n);
        for node in topo.nodes() {
            let neighbors = topo
                .neighbors(node.id)
                .iter()
                .zip(seed.mrai[node.id.index()].iter())
                .map(|(adj, &session_mrai)| {
                    BgpNode::neighbor_state(
                        adj.peer,
                        topo.node(adj.peer).asn,
                        adj.rel,
                        adj.delay,
                        session_mrai,
                    )
                })
                .collect();
            nodes.push(BgpNode::new(node.id, node.asn, neighbors));
        }
        BgpSim {
            timing,
            nodes,
            proc_rngs: seed.proc.clone(),
            history: Vec::new(),
            record_history: false,
            stats: SimStats::default(),
            version: 0,
        }
    }

    /// Monotone counter over forwarding-state changes (FIBs and session
    /// up/down flags). Two calls returning the same value bracket a window
    /// in which every [`fib_lookup`](BgpSim::fib_lookup) and
    /// [`link_is_up`](BgpSim::link_is_up) answer was stable.
    pub fn state_version(&self) -> u64 {
        self.version
    }

    /// Enables/disables the route-change history (collector feed). Off by
    /// default: failover experiments only need current state, and the
    /// history grows with path-exploration churn.
    pub fn set_record_history(&mut self, on: bool) {
        self.record_history = on;
    }

    /// The recorded route changes, in time order.
    pub fn history(&self) -> &[RouteChange] {
        &self.history
    }

    /// Takes ownership of the recorded history, clearing the buffer.
    pub fn take_history(&mut self) -> Vec<RouteChange> {
        std::mem::take(&mut self.history)
    }

    pub fn stats(&self) -> SimStats {
        self.stats
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current best route of `node` for `prefix`.
    pub fn best(&self, node: NodeId, prefix: &Prefix) -> Option<&Selected> {
        self.nodes[node.index()].best(prefix)
    }

    /// Longest-prefix-match lookup in `node`'s FIB.
    pub fn fib_lookup(&self, node: NodeId, addr: u32) -> Option<(Prefix, NextHop)> {
        self.nodes[node.index()].fib_lookup(addr)
    }

    /// Does `node` currently originate `prefix`?
    pub fn originates(&self, node: NodeId, prefix: &Prefix) -> bool {
        self.nodes[node.index()].originates(prefix)
    }

    /// Direct node access (read-only), for diagnostics and tests.
    pub fn node(&self, id: NodeId) -> &BgpNode {
        &self.nodes[id.index()]
    }

    /// Starts originating `prefix` at `node`.
    pub fn announce(
        &mut self,
        now: SimTime,
        node: NodeId,
        prefix: Prefix,
        cfg: OriginConfig,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let changed = self.nodes[node.index()].originate(
            now,
            prefix,
            cfg,
            &self.timing,
            &mut self.proc_rngs[node.index()],
            out,
        );
        if changed {
            self.version += 1;
            self.record_change(now, node, prefix);
        }
    }

    /// Stops originating `prefix` at `node`.
    pub fn withdraw(
        &mut self,
        now: SimTime,
        node: NodeId,
        prefix: Prefix,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let changed = self.nodes[node.index()].withdraw_origin(
            now,
            prefix,
            &self.timing,
            &mut self.proc_rngs[node.index()],
            out,
        );
        if changed {
            self.version += 1;
            self.record_change(now, node, prefix);
        }
    }

    /// Processes one event, pushing follow-ups into `out`.
    pub fn handle(&mut self, now: SimTime, ev: BgpEvent, out: &mut Vec<(SimDuration, BgpEvent)>) {
        match ev {
            BgpEvent::Deliver { to, from, msg } => {
                self.stats.messages += 1;
                let prefix = msg.prefix();
                let changed = self.nodes[to.index()].receive(
                    now,
                    from,
                    msg,
                    &self.timing,
                    &mut self.proc_rngs[to.index()],
                    out,
                );
                if changed {
                    self.stats.best_changes += 1;
                    self.version += 1;
                    self.record_change(now, to, prefix);
                }
            }
            BgpEvent::Fire {
                node,
                neighbor,
                prefix,
                gen,
            } => {
                self.nodes[node.index()].fire(now, neighbor, prefix, gen, &self.timing, out);
            }
            BgpEvent::DampingReuse {
                node,
                neighbor,
                prefix,
            } => {
                let changed = self.nodes[node.index()].damping_reuse(
                    now,
                    neighbor,
                    prefix,
                    &self.timing,
                    &mut self.proc_rngs[node.index()],
                    out,
                );
                if changed {
                    self.stats.best_changes += 1;
                    self.version += 1;
                    self.record_change(now, node, prefix);
                }
            }
            BgpEvent::HoldExpire { node, neighbor } => {
                let changed = self.nodes[node.index()].expire_session(
                    now,
                    neighbor,
                    &self.timing,
                    &mut self.proc_rngs[node.index()],
                    out,
                );
                for prefix in changed {
                    self.stats.best_changes += 1;
                    self.version += 1;
                    self.record_change(now, node, prefix);
                }
            }
        }
    }

    /// Fails the link between `a` and `b` silently: no withdrawals are
    /// sent; each side discovers the failure when its hold timer expires
    /// (or via the operator's monitoring at a higher layer). In-flight and
    /// future messages on the link are lost.
    pub fn fail_link(
        &mut self,
        _now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let hold = self.timing.hold_time();
        for (x, y) in [(a, b), (b, a)] {
            // Only a real up→down transition arms a hold timer: failing an
            // already-failed link (a SilentCrash after a drill, overlapping
            // whole-site failures) must not schedule a duplicate HoldExpire,
            // which would rerun the purge and inflate best_changes/history.
            if self.nodes[x.index()].fail_session(y) {
                self.version += 1;
                out.push((
                    hold,
                    BgpEvent::HoldExpire {
                        node: x,
                        neighbor: y,
                    },
                ));
            }
        }
    }

    /// Restores a failed link; both ends re-establish and exchange full
    /// tables.
    pub fn restore_link(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        for (x, y) in [(a, b), (b, a)] {
            let idx = x.index();
            let (node, rng) = (&mut self.nodes[idx], &mut self.proc_rngs[idx]);
            node.restore_session(now, y, &self.timing, rng, out);
            self.version += 1;
        }
    }

    /// Bounces the BGP session on a link: down and immediately back up
    /// (an RFC 4271 session reset / operator `clear bgp` on both ends).
    /// The hold timers armed by the teardown find the session up again
    /// when they fire and so never purge; both ends clear their outbound
    /// state and re-advertise their full tables with MRAI pacing — the
    /// observable effect is a burst of duplicate UPDATEs and any
    /// route-flap-damping penalty they earn.
    pub fn reset_link(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        self.fail_link(now, a, b, out);
        self.restore_link(now, a, b, out);
    }

    /// Fails every link of `node` (a whole-site crash).
    pub fn fail_node_links(
        &mut self,
        now: SimTime,
        node: NodeId,
        topo_neighbors: &[NodeId],
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        for &peer in topo_neighbors {
            self.fail_link(now, node, peer, out);
        }
    }

    /// Is the (bidirectional) link between `a` and `b` usable? A link
    /// counts as up only when both ends consider the session up.
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[a.index()].session_is_up(b) && self.nodes[b.index()].session_is_up(a)
    }

    fn record_change(&mut self, now: SimTime, node: NodeId, prefix: Prefix) {
        if !self.record_history {
            return;
        }
        self.history.push(RouteChange {
            time: now,
            node,
            prefix,
            new: self.nodes[node.index()].best(&prefix).cloned(),
        });
    }
}

struct Adapter<'a> {
    sim: &'a mut BgpSim,
    scratch: &'a mut Vec<(SimDuration, BgpEvent)>,
}

impl Handler<BgpEvent> for Adapter<'_> {
    fn handle(&mut self, now: SimTime, event: BgpEvent, sched: &mut Scheduler<'_, BgpEvent>) {
        self.sim.handle(now, event, self.scratch);
        for (d, e) in self.scratch.drain(..) {
            sched.after(d, e);
        }
    }
}

/// A self-contained control-plane-only simulation: engine + [`BgpSim`].
/// Used by the BGP tests and the Appendix A/B experiments (Figures 3/4),
/// where no data-plane probing is needed.
///
/// ```
/// use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
/// use bobw_event::RngFactory;
/// use bobw_topology::{generate, GenConfig};
///
/// let rng = RngFactory::new(42);
/// let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
/// let mut sim = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
/// // Anycast: every site originates the same prefix.
/// let prefix = "184.164.244.0/24".parse().unwrap();
/// for &site in cdn.site_nodes() {
///     sim.announce(site, prefix, OriginConfig::plain());
/// }
/// sim.run_to_idle(1_000_000);
/// // Every AS now has a best route to one of the sites.
/// assert!(topo.ids().all(|n| {
///     sim.sim().best(n, &prefix).is_some() || cdn.site_at(n).is_some()
/// }));
/// ```
pub struct Standalone {
    engine: Engine<BgpEvent>,
    sim: BgpSim,
    /// Reusable buffer for events emitted by [`BgpSim`] before they are
    /// scheduled on the engine — one allocation for the sim's lifetime
    /// instead of one per injected operation or handled event.
    scratch: Vec<(SimDuration, BgpEvent)>,
}

impl Standalone {
    pub fn new(topo: &Topology, timing: BgpTimingConfig, rng: &RngFactory) -> Standalone {
        Standalone::with_queue_capacity(topo, timing, rng, 0)
    }

    /// Like [`Standalone::new`] but with the engine queue preallocated for
    /// `cap` pending events — feed back a comparable run's
    /// [`peak_queue_depth`]. Allocation only; behavior is identical.
    ///
    /// [`peak_queue_depth`]: Standalone::peak_queue_depth
    pub fn with_queue_capacity(
        topo: &Topology,
        timing: BgpTimingConfig,
        rng: &RngFactory,
        cap: usize,
    ) -> Standalone {
        Standalone {
            engine: Engine::with_capacity(cap),
            sim: BgpSim::new(topo, timing, rng),
            scratch: Vec::with_capacity(64),
        }
    }

    pub fn sim(&self) -> &BgpSim {
        &self.sim
    }

    pub fn sim_mut(&mut self) -> &mut BgpSim {
        &mut self.sim
    }

    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Number of BGP events waiting in the engine queue.
    pub fn pending_events(&self) -> usize {
        self.engine.pending()
    }

    /// Total events the engine has processed.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// High-water mark of the engine queue (see [`Engine::peak_pending`]).
    pub fn peak_queue_depth(&self) -> usize {
        self.engine.peak_pending()
    }

    /// Events the engine's hot queue lane can hold without reallocating
    /// (see [`Engine::queue_capacity`]).
    pub fn queue_capacity(&self) -> usize {
        self.engine.queue_capacity()
    }

    /// Schedule everything the sim emitted into `scratch` onto the engine.
    /// Shared drain for every injection method below.
    fn flush_scratch(&mut self) {
        for (d, e) in self.scratch.drain(..) {
            self.engine.schedule_after(d, e);
        }
    }

    pub fn announce(&mut self, node: NodeId, prefix: Prefix, cfg: OriginConfig) {
        let now = self.engine.now();
        self.sim.announce(now, node, prefix, cfg, &mut self.scratch);
        self.flush_scratch();
    }

    pub fn withdraw(&mut self, node: NodeId, prefix: Prefix) {
        let now = self.engine.now();
        self.sim.withdraw(now, node, prefix, &mut self.scratch);
        self.flush_scratch();
    }

    /// Silently fails the link between `a` and `b` (see [`BgpSim::fail_link`]).
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        let now = self.engine.now();
        self.sim.fail_link(now, a, b, &mut self.scratch);
        self.flush_scratch();
    }

    /// Restores a previously failed link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        let now = self.engine.now();
        self.sim.restore_link(now, a, b, &mut self.scratch);
        self.flush_scratch();
    }

    /// Bounces the session on a link (see [`BgpSim::reset_link`]).
    pub fn reset_link(&mut self, a: NodeId, b: NodeId) {
        let now = self.engine.now();
        self.sim.reset_link(now, a, b, &mut self.scratch);
        self.flush_scratch();
    }

    /// Crashes every listed link of `node` at once (whole-site failure).
    pub fn fail_all_links(&mut self, node: NodeId, peers: &[NodeId]) {
        let now = self.engine.now();
        self.sim
            .fail_node_links(now, node, peers, &mut self.scratch);
        self.flush_scratch();
    }

    /// Runs until no BGP work remains (full convergence) or the event
    /// budget is exhausted.
    pub fn run_to_idle(&mut self, max_events: u64) -> StepOutcome {
        let mut adapter = Adapter {
            sim: &mut self.sim,
            scratch: &mut self.scratch,
        };
        self.engine.run_to_idle(&mut adapter, max_events)
    }

    /// Runs for `secs` of simulated time from now (convenience wrapper).
    pub fn run_until_secs(&mut self, secs: u64) -> StepOutcome {
        let deadline = self.engine.now() + SimDuration::from_secs(secs);
        self.run_until(deadline, u64::MAX)
    }

    /// Runs until `deadline` (events at the deadline included).
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> StepOutcome {
        let mut adapter = Adapter {
            sim: &mut self.sim,
            scratch: &mut self.scratch,
        };
        self.engine.run_until(&mut adapter, deadline, max_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_net::Asn;
    use bobw_topology::{NodeKind, REGIONS};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Chain topology: t1 --(provides)--> mid --(provides)--> leaf, plus a
    /// second leaf under t1 directly.
    ///
    /// ```text
    ///        t1
    ///       /  \
    ///     mid   leaf2
    ///      |
    ///     leaf
    /// ```
    fn chain() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let t1 = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
        let mid = t.add_node(Asn(20), NodeKind::Transit, c, 0);
        let leaf = t.add_node(Asn(30), NodeKind::Stub, c, 0);
        let leaf2 = t.add_node(Asn(40), NodeKind::Stub, c, 0);
        t.link_provider_customer(t1, mid);
        t.link_provider_customer(mid, leaf);
        t.link_provider_customer(t1, leaf2);
        (t, t1, mid, leaf, leaf2)
    }

    #[test]
    fn announcement_propagates_to_whole_chain() {
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain());
        assert_eq!(s.run_to_idle(100_000), StepOutcome::Idle);
        // Everyone has a route; FIB next hops walk back down the chain.
        assert_eq!(
            s.sim().fib_lookup(leaf, pre.addr_at(1)).unwrap().1,
            NextHop::Local
        );
        assert_eq!(
            s.sim().fib_lookup(mid, pre.addr_at(1)).unwrap().1,
            NextHop::Via(leaf)
        );
        assert_eq!(
            s.sim().fib_lookup(t1, pre.addr_at(1)).unwrap().1,
            NextHop::Via(mid)
        );
        assert_eq!(
            s.sim().fib_lookup(leaf2, pre.addr_at(1)).unwrap().1,
            NextHop::Via(t1)
        );
        // AS paths lengthen along the chain.
        let best_at_leaf2 = s.sim().best(leaf2, &pre).unwrap();
        assert_eq!(best_at_leaf2.attrs.path.hops().len(), 3);
        assert_eq!(best_at_leaf2.attrs.origin, leaf);
    }

    #[test]
    fn withdrawal_clears_the_network() {
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        s.withdraw(leaf, pre);
        assert_eq!(s.run_to_idle(100_000), StepOutcome::Idle);
        for n in [t1, mid, leaf, leaf2] {
            assert!(s.sim().best(n, &pre).is_none(), "{n} still has a route");
            assert!(s.sim().fib_lookup(n, pre.addr_at(1)).is_none());
        }
    }

    #[test]
    fn anycast_two_origins_split_catchment() {
        // Diamond: two tier-1 peers, each providing one leaf; both leaves
        // announce the same prefix (anycast). Each tier-1 must prefer its
        // own customer leaf.
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let a = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
        let b = t.add_node(Asn(11), NodeKind::Tier1, c, 0);
        let la = t.add_node(Asn(30), NodeKind::Stub, c, 0);
        let lb = t.add_node(Asn(31), NodeKind::Stub, c, 0);
        t.link_peers(a, b);
        t.link_provider_customer(a, la);
        t.link_provider_customer(b, lb);
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&t, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(la, pre, OriginConfig::plain());
        s.announce(lb, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        assert_eq!(s.sim().best(a, &pre).unwrap().attrs.origin, la);
        assert_eq!(s.sim().best(b, &pre).unwrap().attrs.origin, lb);
        // Withdraw one origin: both tier-1s converge to the survivor.
        s.withdraw(la, pre);
        s.run_to_idle(100_000);
        assert_eq!(s.sim().best(a, &pre).unwrap().attrs.origin, lb);
        assert_eq!(s.sim().best(b, &pre).unwrap().attrs.origin, lb);
        assert!(
            s.sim().best(la, &pre).is_some(),
            "ex-origin learns the other site"
        );
    }

    #[test]
    fn valley_free_blocks_peer_to_peer_transit() {
        // leafA - t1a (peer) t1b - leafB, and t1a peers with t1c which has
        // no customer route: t1c must NOT relay t1a's peer-learned route to
        // t1b. Build: origin under t1a; t1b reaches it via its own peer link
        // to t1a, never via t1c.
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let t1a = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
        let t1b = t.add_node(Asn(11), NodeKind::Tier1, c, 0);
        let t1c = t.add_node(Asn(12), NodeKind::Tier1, c, 0);
        let origin = t.add_node(Asn(30), NodeKind::Stub, c, 0);
        t.link_peers(t1a, t1b);
        t.link_peers(t1a, t1c);
        t.link_peers(t1b, t1c);
        t.link_provider_customer(t1a, origin);
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&t, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(origin, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        // t1b and t1c both learn via t1a directly (valley-free: they cannot
        // relay to each other).
        assert_eq!(s.sim().best(t1b, &pre).unwrap().from, Some(t1a));
        assert_eq!(s.sim().best(t1c, &pre).unwrap().from, Some(t1a));
        // Adj-RIB-In of t1b contains only the t1a route.
        assert_eq!(s.sim().node(t1b).adj_in(&pre).len(), 1);
    }

    #[test]
    fn covering_prefix_lpm_fallthrough_after_withdrawal() {
        // The §3 proactive-superprefix mechanism at a single router: /24
        // from one origin, /23 from another; withdrawing the /24 makes the
        // FIB fall through to the /23.
        let (topo, t1, _mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let specific = p("184.164.244.0/24");
        let covering = p("184.164.244.0/23");
        s.announce(leaf, specific, OriginConfig::plain());
        s.announce(leaf2, covering, OriginConfig::plain());
        s.run_to_idle(100_000);
        let addr = specific.addr_at(10);
        let (matched, _) = s.sim().fib_lookup(t1, addr).unwrap();
        assert_eq!(matched, specific);
        s.withdraw(leaf, specific);
        s.run_to_idle(100_000);
        let (matched, nh) = s.sim().fib_lookup(t1, addr).unwrap();
        assert_eq!(matched, covering);
        assert_eq!(nh, NextHop::Via(leaf2));
    }

    #[test]
    fn history_records_convergence_and_withdrawals() {
        let (topo, _t1, _mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.sim_mut().set_record_history(true);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        let announces = s.sim().history().len();
        assert!(announces >= 4, "each node's first best counts: {announces}");
        s.withdraw(leaf, pre);
        s.run_to_idle(100_000);
        let hist = s.sim_mut().take_history();
        assert!(hist.iter().any(|rc| rc.is_withdrawal() && rc.node == leaf2));
        // Times are monotone.
        for w in hist.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(s.sim().history().is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let (topo, ..) = chain();
        let run = || {
            let rng = RngFactory::new(99);
            let mut s = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
            s.sim_mut().set_record_history(true);
            let pre = p("184.164.244.0/24");
            s.announce(NodeId(2), pre, OriginConfig::plain());
            s.run_to_idle(1_000_000);
            s.withdraw(NodeId(2), pre);
            s.run_to_idle(1_000_000);
            (s.sim().stats(), s.now(), s.sim().history().len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_export_stays_at_direct_neighbors() {
        // leaf originates with NO_EXPORT: mid (its provider) learns and
        // uses the route but never re-advertises it to t1.
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain().with_no_export());
        s.run_to_idle(100_000);
        assert_eq!(
            s.sim().fib_lookup(mid, pre.addr_at(1)).unwrap().1,
            NextHop::Via(leaf),
            "direct neighbor uses the NO_EXPORT route"
        );
        assert!(
            s.sim().best(t1, &pre).is_none(),
            "NO_EXPORT route must not propagate beyond the neighbor"
        );
        assert!(s.sim().best(leaf2, &pre).is_none());
    }

    #[test]
    fn stats_count_messages() {
        let (topo, ..) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.announce(NodeId(2), p("184.164.244.0/24"), OriginConfig::plain());
        s.run_to_idle(100_000);
        let stats = s.sim().stats();
        assert!(stats.messages >= 3);
        assert!(stats.best_changes >= 3);
    }
}
