//! The network-wide BGP simulation: all nodes, message dispatch, the
//! route-change history (collector feed), and a standalone driver for
//! pure-control-plane experiments.

use bobw_event::{Engine, Handler, RngFactory, Scheduler, SimDuration, SimTime, StepOutcome};
use bobw_net::{AsPath, NodeId, Prefix};
use bobw_session::{
    codec, BgpMessage, DownReason, FsmInput, FsmOutput, PeerFsm, PeerState, SessionConfig,
    SessionPayload, TimerKind, UpdateAttrs, UpdateMsg, CEASE,
};
use bobw_topology::Topology;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::node::BgpNode;
use crate::policy::OriginConfig;
use crate::route::{
    BgpEvent, Message, NextHop, RouteChange, Selected, SessionTimerKind, WireRoute,
};
use crate::timing::BgpTimingConfig;

/// Aggregate counters, exposed for the engine benchmarks and for sanity
/// checks in experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// BGP messages delivered to nodes.
    pub messages: u64,
    /// Best-route changes across all nodes.
    pub best_changes: u64,
    /// Session-management messages (OPEN/KEEPALIVE/NOTIFICATION) delivered;
    /// always zero in the abstract session model.
    pub session_msgs: u64,
}

/// The whole-network BGP state: one [`BgpNode`] per topology node.
///
/// `BgpSim` is deliberately engine-agnostic: [`BgpSim::handle`] consumes an
/// event and pushes follow-ups (as `(delay, event)` pairs) into a caller
/// buffer. `bobw-core` embeds it in a composite simulation next to the data
/// plane and DNS; [`Standalone`] wraps it for control-plane-only runs.
pub struct BgpSim {
    timing: BgpTimingConfig,
    nodes: Vec<BgpNode>,
    proc_rngs: Vec<SmallRng>,
    history: Vec<RouteChange>,
    record_history: bool,
    stats: SimStats,
    /// Bumped on every change to observable forwarding state: any node's
    /// best route (hence FIB) and any session's up/down flag. Lets data
    /// plane consumers memoize pure functions of FIB + session state (probe
    /// walks) and invalidate exactly when routing actually moved.
    version: u64,
    /// Message-level session layer (per-peer FSMs + wire codec on every
    /// message). `None` = the abstract model: adjacencies are booleans and
    /// session management is implicit. Strictly opt-in via
    /// [`BgpSim::enable_message_level`]; when `None`, no code path below
    /// touches it, keeping abstract runs byte-identical to before.
    session: Option<SessionLayer>,
}

/// Knobs for the message-level session layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionKnobs {
    /// Base connect-retry interval; each scheduled retry is jittered
    /// uniformly in `[0.5, 1.5) ×` this from the node's processing-delay
    /// RNG stream (deterministic given the seed).
    pub connect_retry_s: f64,
    /// Graceful-restart window advertised in every OPEN; 0 disables the
    /// capability network-wide.
    pub gr_restart_s: u16,
}

impl Default for SessionKnobs {
    fn default() -> SessionKnobs {
        SessionKnobs {
            connect_retry_s: 1.0,
            gr_restart_s: 120,
        }
    }
}

/// Per-directed-session state in the message-level model, parallel to the
/// owning node's neighbor list.
struct PeerSession {
    fsm: PeerFsm,
    /// Per-timer-kind generation counters; an armed timer event carries the
    /// generation at arming time and is a no-op if it was bumped since.
    gens: [u32; 4],
    /// Administrative link state for this direction (fault injection).
    admin_up: bool,
    /// This endpoint's TCP is unreachable (process restarting). Connect
    /// attempts against — or from — a blocked endpoint fail.
    blocked: bool,
    /// Graceful restart: prefixes retained from the restarting peer,
    /// sorted; pruned as re-advertisements arrive, leftovers purged by the
    /// stale sweep.
    stale: Vec<Prefix>,
}

struct SessionLayer {
    knobs: SessionKnobs,
    /// `sessions[node][nix]` for the session from `node` to its `nix`-th
    /// neighbor.
    sessions: Vec<Vec<PeerSession>>,
}

fn kind_ix(kind: SessionTimerKind) -> usize {
    match kind {
        SessionTimerKind::ConnectRetry => 0,
        SessionTimerKind::Hold => 1,
        SessionTimerKind::Keepalive => 2,
        SessionTimerKind::StaleSweep => 3,
    }
}

impl SessionLayer {
    /// Bumps and returns the generation for `(node, nix, kind)` — the next
    /// scheduled timer of that kind is the only live one.
    fn arm(&mut self, node: usize, nix: usize, kind: SessionTimerKind) -> u32 {
        let gen = &mut self.sessions[node][nix].gens[kind_ix(kind)];
        *gen += 1;
        *gen
    }

    /// Invalidates any armed timer of `kind` without scheduling a new one.
    fn cancel(&mut self, node: usize, nix: usize, kind: SessionTimerKind) {
        self.sessions[node][nix].gens[kind_ix(kind)] += 1;
    }

    fn cancel_all(&mut self, node: usize, nix: usize) {
        for g in &mut self.sessions[node][nix].gens {
            *g += 1;
        }
    }
}

/// Message-level model: every route UPDATE and WITHDRAW crosses the wire
/// as RFC 4271 bytes. Encode, decode, and rebuild — the *decoded* message
/// is what gets delivered, so a codec asymmetry would surface as a routing
/// difference instead of passing silently.
fn roundtrip_update(msg: Message) -> Message {
    let update = match msg {
        Message::Update { prefix, route } => UpdateMsg {
            withdrawn: Vec::new(),
            attrs: Some(UpdateAttrs {
                as_path: route.path.hops(),
                med: route.med,
                origin_node: route.origin.index() as u32,
                no_export: route.no_export,
            }),
            nlri: vec![prefix],
        },
        Message::Withdraw { prefix } => UpdateMsg {
            withdrawn: vec![prefix],
            attrs: None,
            nlri: Vec::new(),
        },
    };
    let bytes = codec::encode(&BgpMessage::Update(update)).expect("route update encodes");
    let (decoded, len) = codec::decode(&bytes).expect("route update decodes");
    debug_assert_eq!(len, bytes.len());
    let BgpMessage::Update(u) = decoded else {
        unreachable!("UPDATE decodes as UPDATE");
    };
    let rebuilt = match (&u.withdrawn[..], &u.nlri[..], u.attrs) {
        ([], [prefix], Some(a)) => Message::Update {
            prefix: *prefix,
            route: WireRoute {
                path: AsPath::from_hops(a.as_path),
                med: a.med,
                origin: NodeId(a.origin_node),
                no_export: a.no_export,
            },
        },
        ([prefix], [], None) => Message::Withdraw { prefix: *prefix },
        _ => unreachable!("codec preserved the update shape"),
    };
    debug_assert_eq!(rebuilt, msg);
    rebuilt
}

/// Precomputed stochastic per-session state for one `(topology, timing,
/// seed)` triple: every session's MRAI value and every node's
/// processing-delay RNG stream in its initial state.
///
/// [`BgpSim::new`] derives roughly two RNG streams per directed session and
/// one per node. A harness that builds one simulator per experiment cell
/// over a shared testbed re-derives all of them for identical values; with
/// a seed built once per testbed, [`BgpSim::from_seed`] turns per-cell
/// construction into plain clones. The seed is `Send + Sync`, so one
/// instance serves a cell-parallel thread pool.
pub struct SimSeed {
    mrai: Vec<Box<[SimDuration]>>,
    proc: Vec<SmallRng>,
}

impl SimSeed {
    /// Samples the per-session MRAI values and per-node processing streams
    /// exactly as [`BgpSim::new`] would with the same arguments.
    pub fn new(topo: &Topology, timing: &BgpTimingConfig, rng: &RngFactory) -> SimSeed {
        let mrai = topo
            .nodes()
            .map(|node| {
                topo.neighbors(node.id)
                    .iter()
                    .map(|adj| {
                        let session_key = (node.id.index() as u64) << 32 | adj.peer.index() as u64;
                        timing.sample_session_mrai(rng, session_key)
                    })
                    .collect()
            })
            .collect();
        let proc = topo
            .nodes()
            .map(|node| rng.stream("bgp-proc", node.id.index() as u64))
            .collect();
        SimSeed { mrai, proc }
    }
}

impl BgpSim {
    /// Builds per-node BGP state over `topo`. MRAI values are sampled per
    /// directed session from the factory's `"mrai-session"` stream.
    pub fn new(topo: &Topology, timing: BgpTimingConfig, rng: &RngFactory) -> BgpSim {
        let seed = SimSeed::new(topo, &timing, rng);
        BgpSim::from_seed(topo, timing, &seed)
    }

    /// [`BgpSim::new`] against a prebuilt [`SimSeed`] — byte-identical
    /// state, but all RNG stream derivation replaced by clones.
    pub fn from_seed(topo: &Topology, timing: BgpTimingConfig, seed: &SimSeed) -> BgpSim {
        let n = topo.len();
        let mut nodes = Vec::with_capacity(n);
        for node in topo.nodes() {
            let neighbors = topo
                .neighbors(node.id)
                .iter()
                .zip(seed.mrai[node.id.index()].iter())
                .map(|(adj, &session_mrai)| {
                    BgpNode::neighbor_state(
                        adj.peer,
                        topo.node(adj.peer).asn,
                        adj.rel,
                        adj.delay,
                        session_mrai,
                    )
                })
                .collect();
            nodes.push(BgpNode::new(node.id, node.asn, neighbors));
        }
        BgpSim {
            timing,
            nodes,
            proc_rngs: seed.proc.clone(),
            history: Vec::new(),
            record_history: false,
            stats: SimStats::default(),
            version: 0,
            session: None,
        }
    }

    /// Switches to the message-level session model: one [`PeerFsm`] per
    /// directed session, wire-codec round-trips on every message, and
    /// session-fault realism (half-open, NOTIFICATION resets, graceful
    /// restart). Every session starts administratively quiesced; call
    /// [`BgpSim::start_sessions`] to kick off establishment — and call both
    /// *before* announcing anything, so the initial table exchange happens
    /// through real session establishment.
    pub fn enable_message_level(&mut self, knobs: SessionKnobs) {
        if self.session.is_some() {
            return;
        }
        let hold_time_s = self.timing.hold_time().as_secs_f64().round() as u16;
        let sessions = self
            .nodes
            .iter()
            .map(|node| {
                let cfg = SessionConfig {
                    hold_time_s,
                    connect_retry_s: knobs.connect_retry_s,
                    gr_restart_s: knobs.gr_restart_s,
                    asn: node.asn.0,
                };
                node.neighbors()
                    .iter()
                    .map(|_| PeerSession {
                        fsm: PeerFsm::new(cfg),
                        gens: [0; 4],
                        admin_up: true,
                        blocked: false,
                        stale: Vec::new(),
                    })
                    .collect()
            })
            .collect();
        for node in &mut self.nodes {
            node.quiesce_sessions();
        }
        self.session = Some(SessionLayer { knobs, sessions });
        self.version += 1;
    }

    /// Is the message-level session model active?
    pub fn message_level(&self) -> bool {
        self.session.is_some()
    }

    /// Starts every idle session (both directions of every adjacency), in
    /// node-then-neighbor order. With the simulator's instant TCP the OPEN
    /// exchanges interleave deterministically and every session reaches
    /// Established, triggering the initial full-table exports.
    pub fn start_sessions(&mut self, now: SimTime, out: &mut Vec<(SimDuration, BgpEvent)>) {
        let Some(mut layer) = self.session.take() else {
            return;
        };
        for i in 0..self.nodes.len() {
            let node = self.nodes[i].id;
            for nix in 0..layer.sessions[i].len() {
                if layer.sessions[i][nix].fsm.state() == PeerState::Idle {
                    let peer = self.nodes[i].neighbors()[nix].peer;
                    self.drive(&mut layer, now, node, peer, FsmInput::Start, out);
                }
            }
        }
        self.session = Some(layer);
    }

    /// Monotone counter over forwarding-state changes (FIBs and session
    /// up/down flags). Two calls returning the same value bracket a window
    /// in which every [`fib_lookup`](BgpSim::fib_lookup) and
    /// [`link_is_up`](BgpSim::link_is_up) answer was stable.
    pub fn state_version(&self) -> u64 {
        self.version
    }

    /// Enables/disables the route-change history (collector feed). Off by
    /// default: failover experiments only need current state, and the
    /// history grows with path-exploration churn.
    pub fn set_record_history(&mut self, on: bool) {
        self.record_history = on;
    }

    /// The recorded route changes, in time order.
    pub fn history(&self) -> &[RouteChange] {
        &self.history
    }

    /// Takes ownership of the recorded history, clearing the buffer.
    pub fn take_history(&mut self) -> Vec<RouteChange> {
        std::mem::take(&mut self.history)
    }

    pub fn stats(&self) -> SimStats {
        self.stats
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current best route of `node` for `prefix`.
    pub fn best(&self, node: NodeId, prefix: &Prefix) -> Option<&Selected> {
        self.nodes[node.index()].best(prefix)
    }

    /// Longest-prefix-match lookup in `node`'s FIB.
    pub fn fib_lookup(&self, node: NodeId, addr: u32) -> Option<(Prefix, NextHop)> {
        self.nodes[node.index()].fib_lookup(addr)
    }

    /// Does `node` currently originate `prefix`?
    pub fn originates(&self, node: NodeId, prefix: &Prefix) -> bool {
        self.nodes[node.index()].originates(prefix)
    }

    /// Direct node access (read-only), for diagnostics and tests.
    pub fn node(&self, id: NodeId) -> &BgpNode {
        &self.nodes[id.index()]
    }

    /// Starts originating `prefix` at `node`.
    pub fn announce(
        &mut self,
        now: SimTime,
        node: NodeId,
        prefix: Prefix,
        cfg: OriginConfig,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let changed = self.nodes[node.index()].originate(
            now,
            prefix,
            cfg,
            &self.timing,
            &mut self.proc_rngs[node.index()],
            out,
        );
        if changed {
            self.version += 1;
            self.record_change(now, node, prefix);
        }
    }

    /// Stops originating `prefix` at `node`.
    pub fn withdraw(
        &mut self,
        now: SimTime,
        node: NodeId,
        prefix: Prefix,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let changed = self.nodes[node.index()].withdraw_origin(
            now,
            prefix,
            &self.timing,
            &mut self.proc_rngs[node.index()],
            out,
        );
        if changed {
            self.version += 1;
            self.record_change(now, node, prefix);
        }
    }

    /// Processes one event, pushing follow-ups into `out`.
    pub fn handle(&mut self, now: SimTime, ev: BgpEvent, out: &mut Vec<(SimDuration, BgpEvent)>) {
        match ev {
            BgpEvent::Deliver { to, from, msg } => {
                self.stats.messages += 1;
                // Message-level model: the update crosses the wire as RFC
                // 4271 bytes, and a refresh from a restarting peer prunes
                // the graceful-restart stale set.
                let msg = if let Some(layer) = self.session.as_mut() {
                    let msg = roundtrip_update(msg);
                    if let Some(nix) = self.nodes[to.index()].neighbor_index(from) {
                        let stale = &mut layer.sessions[to.index()][nix].stale;
                        if !stale.is_empty() {
                            if let Ok(pos) = stale.binary_search(&msg.prefix()) {
                                stale.remove(pos);
                            }
                        }
                    }
                    msg
                } else {
                    msg
                };
                let prefix = msg.prefix();
                let changed = self.nodes[to.index()].receive(
                    now,
                    from,
                    msg,
                    &self.timing,
                    &mut self.proc_rngs[to.index()],
                    out,
                );
                if changed {
                    self.stats.best_changes += 1;
                    self.version += 1;
                    self.record_change(now, to, prefix);
                }
            }
            BgpEvent::Fire {
                node,
                neighbor,
                prefix,
                gen,
            } => {
                self.nodes[node.index()].fire(now, neighbor, prefix, gen, &self.timing, out);
            }
            BgpEvent::DampingReuse {
                node,
                neighbor,
                prefix,
            } => {
                let changed = self.nodes[node.index()].damping_reuse(
                    now,
                    neighbor,
                    prefix,
                    &self.timing,
                    &mut self.proc_rngs[node.index()],
                    out,
                );
                if changed {
                    self.stats.best_changes += 1;
                    self.version += 1;
                    self.record_change(now, node, prefix);
                }
            }
            BgpEvent::HoldExpire { node, neighbor } => {
                self.expire_now(now, node, neighbor, out);
            }
            BgpEvent::SessionMsg { to, from, payload } => {
                let Some(mut layer) = self.session.take() else {
                    return; // abstract model: stray event, drop
                };
                if self.wire_ok(&layer, to, from) {
                    self.stats.session_msgs += 1;
                    // Exercise the wire codec on every session message:
                    // serialize, parse, feed the *parsed* form to the FSM.
                    let full = payload.to_message(from.index() as u32);
                    let bytes = codec::encode(&full).expect("session message encodes");
                    let (decoded, len) = codec::decode(&bytes).expect("session message decodes");
                    debug_assert_eq!(len, bytes.len());
                    let payload = SessionPayload::from_message(&decoded)
                        .expect("session payload survives the codec");
                    self.drive(&mut layer, now, to, from, FsmInput::Recv(payload), out);
                }
                self.session = Some(layer);
            }
            BgpEvent::SessionTimer {
                node,
                neighbor,
                kind,
                gen,
            } => {
                self.session_timer(now, node, neighbor, kind, gen, out);
            }
        }
    }

    /// Purge everything learned from `neighbor` at `node` right now (the
    /// session must already be marked down), with stats/history
    /// bookkeeping.
    fn expire_now(
        &mut self,
        now: SimTime,
        node: NodeId,
        neighbor: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let idx = node.index();
        let changed = self.nodes[idx].expire_session(
            now,
            neighbor,
            &self.timing,
            &mut self.proc_rngs[idx],
            out,
        );
        for prefix in changed {
            self.stats.best_changes += 1;
            self.version += 1;
            self.record_change(now, node, prefix);
        }
    }

    /// Control-plane teardown with purge: the session drops (forwarding
    /// preserved — physical cuts go through `fail_session` separately) and
    /// every route learned from the peer is removed.
    fn teardown_purge(
        &mut self,
        now: SimTime,
        node: NodeId,
        peer: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        if self.nodes[node.index()].fail_session_control(peer) {
            self.version += 1;
        }
        self.expire_now(now, node, peer, out);
    }

    /// Can a message (or TCP connect) cross the wire between `a` and `b`?
    fn wire_ok(&self, layer: &SessionLayer, a: NodeId, b: NodeId) -> bool {
        let (Some(ab), Some(ba)) = (
            self.nodes[a.index()].neighbor_index(b),
            self.nodes[b.index()].neighbor_index(a),
        ) else {
            return false;
        };
        let sa = &layer.sessions[a.index()][ab];
        let sb = &layer.sessions[b.index()][ba];
        sa.admin_up && sb.admin_up && !sa.blocked && !sb.blocked
    }

    /// Schedules a jittered connect-retry for `node`'s session to `peer`,
    /// `extra` from now. The jitter draws from the node's processing-delay
    /// stream, so it is deterministic given the seed and event order.
    fn schedule_retry(
        &mut self,
        layer: &mut SessionLayer,
        node: NodeId,
        peer: NodeId,
        nix: usize,
        extra: SimDuration,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let idx = node.index();
        let jit: f64 = self.proc_rngs[idx].gen_range(0.5..1.5) * layer.knobs.connect_retry_s;
        let gen = layer.arm(idx, nix, SessionTimerKind::ConnectRetry);
        out.push((
            SimDuration::from_secs_f64(extra.as_secs_f64() + jit),
            BgpEvent::SessionTimer {
                node,
                neighbor: peer,
                kind: SessionTimerKind::ConnectRetry,
                gen,
            },
        ));
    }

    /// Feeds one input to the FSM for `node`'s session to `peer` and
    /// performs the required effects. TCP connects resolve instantly
    /// ([`Self::wire_ok`]); timer requests follow the integration policy
    /// documented in DESIGN.md §9 (steady-state liveness timers elided so
    /// `run_to_idle` terminates; fault paths arm them explicitly).
    fn drive(
        &mut self,
        layer: &mut SessionLayer,
        now: SimTime,
        node: NodeId,
        peer: NodeId,
        input: FsmInput,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let idx = node.index();
        let Some(nix) = self.nodes[idx].neighbor_index(peer) else {
            return;
        };
        let mut fx = Vec::new();
        layer.sessions[idx][nix].fsm.step(input, &mut fx);
        // Honor Arm(Keepalive) only on OpenConfirm entry (an OPEN just
        // arrived): one bounded shot, never re-armed from its own firing —
        // a wedged handshake must not tick forever.
        let ka_entry = matches!(input, FsmInput::Recv(SessionPayload::Open { .. }));
        for o in fx {
            match o {
                FsmOutput::Send(payload) => {
                    let delay = self.nodes[idx].neighbors()[nix].delay;
                    out.push((
                        delay,
                        BgpEvent::SessionMsg {
                            to: peer,
                            from: node,
                            payload,
                        },
                    ));
                }
                FsmOutput::AttemptConnect => {
                    let tcp = if self.wire_ok(layer, node, peer) {
                        FsmInput::TcpUp
                    } else {
                        FsmInput::TcpFail
                    };
                    self.drive(layer, now, node, peer, tcp, out);
                }
                FsmOutput::Arm(kind, d) => {
                    if kind == TimerKind::Keepalive && ka_entry {
                        let gen = layer.arm(idx, nix, SessionTimerKind::Keepalive);
                        out.push((
                            d,
                            BgpEvent::SessionTimer {
                                node,
                                neighbor: peer,
                                kind: SessionTimerKind::Keepalive,
                                gen,
                            },
                        ));
                    }
                    // ConnectRetry and Hold are scheduled explicitly (with
                    // jitter) by the fault injectors; steady-state requests
                    // are elided — the wire is loss-free.
                }
                FsmOutput::Up { .. } => {
                    layer.cancel(idx, nix, SessionTimerKind::Hold);
                    layer.cancel(idx, nix, SessionTimerKind::Keepalive);
                    let (n, rng) = (&mut self.nodes[idx], &mut self.proc_rngs[idx]);
                    n.restore_session(now, peer, &self.timing, rng, out);
                    self.version += 1;
                }
                FsmOutput::Down { reason } => match reason {
                    DownReason::PeerRestarting { window_s } => {
                        // Graceful restart: keep forwarding AND keep the
                        // routes (marked stale) for the advertised window.
                        if self.nodes[idx].fail_session_control(peer) {
                            self.version += 1;
                        }
                        layer.sessions[idx][nix].stale = self.nodes[idx].prefixes_from(peer);
                        let gen = layer.arm(idx, nix, SessionTimerKind::StaleSweep);
                        out.push((
                            SimDuration::from_secs_f64(f64::from(window_s)),
                            BgpEvent::SessionTimer {
                                node,
                                neighbor: peer,
                                kind: SessionTimerKind::StaleSweep,
                                gen,
                            },
                        ));
                    }
                    DownReason::HoldExpired => {
                        self.teardown_purge(now, node, peer, out);
                        // Reconnect on our own initiative (the peer may be
                        // gone); parks in Active if the wire is still dead.
                        self.schedule_retry(layer, node, peer, nix, SimDuration::ZERO, out);
                    }
                    DownReason::NotificationReceived { .. } | DownReason::Stopped => {
                        // Injector-driven teardown: purge now; whether and
                        // when to reconnect is the injector's decision
                        // (receivers of a NOTIFICATION listen passively).
                        self.teardown_purge(now, node, peer, out);
                    }
                },
            }
        }
    }

    /// A [`BgpEvent::SessionTimer`] fired: generation-check, then dispatch.
    fn session_timer(
        &mut self,
        now: SimTime,
        node: NodeId,
        neighbor: NodeId,
        kind: SessionTimerKind,
        gen: u32,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let Some(mut layer) = self.session.take() else {
            return;
        };
        let idx = node.index();
        if let Some(nix) = self.nodes[idx].neighbor_index(neighbor) {
            if layer.sessions[idx][nix].gens[kind_ix(kind)] == gen {
                match kind {
                    SessionTimerKind::ConnectRetry => {
                        // A retry firing from our own side implies the local
                        // process is reachable again (graceful-restart
                        // completion clears the block).
                        layer.sessions[idx][nix].blocked = false;
                        let input = if layer.sessions[idx][nix].fsm.state() == PeerState::Idle {
                            FsmInput::Start
                        } else {
                            FsmInput::Timer(TimerKind::ConnectRetry)
                        };
                        self.drive(&mut layer, now, node, neighbor, input, out);
                    }
                    SessionTimerKind::Hold => {
                        self.drive(
                            &mut layer,
                            now,
                            node,
                            neighbor,
                            FsmInput::Timer(TimerKind::Hold),
                            out,
                        );
                    }
                    SessionTimerKind::Keepalive => {
                        self.drive(
                            &mut layer,
                            now,
                            node,
                            neighbor,
                            FsmInput::Timer(TimerKind::Keepalive),
                            out,
                        );
                    }
                    SessionTimerKind::StaleSweep => {
                        // The graceful-restart window closed: purge whatever
                        // the restarted peer never re-advertised.
                        let stale = std::mem::take(&mut layer.sessions[idx][nix].stale);
                        let changed = self.nodes[idx].purge_stale_from(
                            now,
                            neighbor,
                            &stale,
                            &self.timing,
                            &mut self.proc_rngs[idx],
                            out,
                        );
                        for prefix in changed {
                            self.stats.best_changes += 1;
                            self.version += 1;
                            self.record_change(now, node, prefix);
                        }
                    }
                }
            }
        }
        self.session = Some(layer);
    }

    /// Fails the link between `a` and `b` silently: no withdrawals are
    /// sent; each side discovers the failure when its hold timer expires
    /// (or via the operator's monitoring at a higher layer). In-flight and
    /// future messages on the link are lost.
    pub fn fail_link(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        if self.session.is_some() {
            self.ml_link_down(now, a, b, out);
            return;
        }
        let hold = self.timing.hold_time();
        for (x, y) in [(a, b), (b, a)] {
            // Only a real up→down transition arms a hold timer: failing an
            // already-failed link (a SilentCrash after a drill, overlapping
            // whole-site failures) must not schedule a duplicate HoldExpire,
            // which would rerun the purge and inflate best_changes/history.
            if self.nodes[x.index()].fail_session(y) {
                self.version += 1;
                out.push((
                    hold,
                    BgpEvent::HoldExpire {
                        node: x,
                        neighbor: y,
                    },
                ));
            }
        }
    }

    /// Restores a failed link; both ends re-establish and exchange full
    /// tables.
    pub fn restore_link(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        if self.session.is_some() {
            self.ml_link_up(now, a, b, out);
            return;
        }
        self.restore_sessions_raw(now, a, b, out);
    }

    /// The abstract restore: flip both directions up and re-export full
    /// tables. Also the message-level fast path when both FSMs survived
    /// the outage.
    fn restore_sessions_raw(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        for (x, y) in [(a, b), (b, a)] {
            let idx = x.index();
            let (node, rng) = (&mut self.nodes[idx], &mut self.proc_rngs[idx]);
            node.restore_session(now, y, &self.timing, rng, out);
            self.version += 1;
        }
    }

    /// Bounces the BGP session on a link (an RFC 4271 session reset /
    /// operator `clear bgp`).
    ///
    /// Abstract model: down and immediately back up — the hold timers armed
    /// by the teardown find the session up again when they fire and never
    /// purge; the observable effect is a burst of duplicate UPDATEs and any
    /// route-flap-damping penalty they earn.
    ///
    /// Message-level model: `a` sends an administrative Cease NOTIFICATION
    /// (see [`BgpSim::notify_reset`]): both ends purge, then re-establish
    /// after a jittered connect-retry — duplicate updates *plus* a real
    /// withdraw/re-announce flap, which is what damping actually penalizes.
    pub fn reset_link(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        if self.session.is_some() {
            self.notify_reset(now, a, b, CEASE, out);
            return;
        }
        self.fail_link(now, a, b, out);
        self.restore_link(now, a, b, out);
    }

    /// Message-level physical cut: both directions go administratively
    /// down, and each endpoint whose session was Established discovers the
    /// loss when its (now explicitly armed) hold timer expires.
    fn ml_link_down(
        &mut self,
        _now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let Some(mut layer) = self.session.take() else {
            return;
        };
        for (x, y) in [(a, b), (b, a)] {
            let xi = x.index();
            let Some(nix) = self.nodes[xi].neighbor_index(y) else {
                continue;
            };
            layer.sessions[xi][nix].admin_up = false;
            if self.nodes[xi].fail_session(y) {
                self.version += 1;
                if layer.sessions[xi][nix].fsm.is_established() {
                    let hold = layer.sessions[xi][nix].fsm.hold_time();
                    let gen = layer.arm(xi, nix, SessionTimerKind::Hold);
                    out.push((
                        hold,
                        BgpEvent::SessionTimer {
                            node: x,
                            neighbor: y,
                            kind: SessionTimerKind::Hold,
                            gen,
                        },
                    ));
                }
            }
        }
        self.session = Some(layer);
    }

    /// Message-level link restoration. If both FSMs are still Established
    /// (the outage fit inside the hold window) the sessions never noticed:
    /// cancel the hold timers and restore. Otherwise each torn-down side
    /// restarts its handshake; an endpoint still Established sees the fresh
    /// OPEN and replaces its session.
    fn ml_link_up(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let Some(mut layer) = self.session.take() else {
            return;
        };
        let (Some(ab), Some(ba)) = (
            self.nodes[a.index()].neighbor_index(b),
            self.nodes[b.index()].neighbor_index(a),
        ) else {
            self.session = Some(layer);
            return;
        };
        layer.sessions[a.index()][ab].admin_up = true;
        layer.sessions[b.index()][ba].admin_up = true;
        let both_established = layer.sessions[a.index()][ab].fsm.is_established()
            && layer.sessions[b.index()][ba].fsm.is_established();
        if both_established {
            layer.cancel(a.index(), ab, SessionTimerKind::Hold);
            layer.cancel(b.index(), ba, SessionTimerKind::Hold);
            self.restore_sessions_raw(now, a, b, out);
        } else {
            for (x, y, nix) in [(a, b, ab), (b, a, ba)] {
                if !layer.sessions[x.index()][nix].fsm.is_established() {
                    self.drive(&mut layer, now, x, y, FsmInput::Start, out);
                }
            }
        }
        self.session = Some(layer);
    }

    /// `a` resets its session to `b` with a NOTIFICATION carrying `code`:
    /// `a` purges immediately and reconnects after a jittered retry; `b`
    /// purges when the NOTIFICATION arrives and then listens passively.
    ///
    /// Abstract approximation: both ends purge and immediately re-establish
    /// (a noticed reset, unlike [`BgpSim::fail_link`]'s silent loss).
    pub fn notify_reset(
        &mut self,
        now: SimTime,
        a: NodeId,
        b: NodeId,
        code: u8,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        if let Some(mut layer) = self.session.take() {
            self.drive(
                &mut layer,
                now,
                a,
                b,
                FsmInput::Stop {
                    notify: Some((code, 0)),
                },
                out,
            );
            if let Some(nix) = self.nodes[a.index()].neighbor_index(b) {
                self.schedule_retry(&mut layer, a, b, nix, SimDuration::ZERO, out);
            }
            self.session = Some(layer);
        } else {
            for (x, y) in [(a, b), (b, a)] {
                if self.nodes[x.index()].fail_session(y) {
                    self.version += 1;
                }
                self.expire_now(now, x, y, out);
            }
            self.restore_sessions_raw(now, a, b, out);
        }
    }

    /// Half-open session: `peer`'s side of the session to `site` silently
    /// loses its state (state-table corruption, one-sided TCP teardown).
    /// The peer purges instantly; `site` keeps advertising into the void
    /// until its hold timer expires — the §5 pathology where a site keeps
    /// attracting traffic it can no longer coordinate with its neighbor.
    ///
    /// Message-level: the peer FSM stops silently and then listens; the
    /// site's hold expiry notifies, purges, and reconnects (full recovery).
    /// Abstract approximation: same two-phase purge via [`BgpEvent::HoldExpire`],
    /// but no re-establishment (the abstract model has no reconnect logic).
    /// Forwarding stays up in both models: the wire is fine.
    pub fn half_open(
        &mut self,
        now: SimTime,
        site: NodeId,
        peer: NodeId,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        if let Some(mut layer) = self.session.take() {
            self.drive(
                &mut layer,
                now,
                peer,
                site,
                FsmInput::Stop { notify: None },
                out,
            );
            let si = site.index();
            if let Some(nix) = self.nodes[si].neighbor_index(peer) {
                if layer.sessions[si][nix].fsm.is_established() {
                    let hold = layer.sessions[si][nix].fsm.hold_time();
                    let gen = layer.arm(si, nix, SessionTimerKind::Hold);
                    out.push((
                        hold,
                        BgpEvent::SessionTimer {
                            node: site,
                            neighbor: peer,
                            kind: SessionTimerKind::Hold,
                            gen,
                        },
                    ));
                }
            }
            self.session = Some(layer);
        } else {
            if self.nodes[peer.index()].fail_session_control(site) {
                self.version += 1;
            }
            self.expire_now(now, peer, site, out);
            if self.nodes[site.index()].fail_session_control(peer) {
                self.version += 1;
                out.push((
                    self.timing.hold_time(),
                    BgpEvent::HoldExpire {
                        node: site,
                        neighbor: peer,
                    },
                ));
            }
        }
    }

    /// Graceful restart (RFC 4724) of `node`'s BGP process: every neighbor
    /// that negotiated the capability keeps forwarding *and* keeps the
    /// routes learned from `node` (marked stale) while the process is down.
    /// After `restart`, `node` reconnects with per-session jitter; routes
    /// the peers never see re-advertised are purged when the advertised
    /// stale window closes.
    ///
    /// Abstract approximation: a restart without helper-mode support — every
    /// session bounces ([`BgpSim::reset_link`] per neighbor), producing the
    /// duplicate-update burst but no retention.
    pub fn graceful_restart(
        &mut self,
        now: SimTime,
        node: NodeId,
        restart: SimDuration,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        if let Some(mut layer) = self.session.take() {
            let idx = node.index();
            for nix in 0..layer.sessions[idx].len() {
                let peer = self.nodes[idx].neighbors()[nix].peer;
                // The restarting process forgets its session state without
                // touching the FIB; its TCP is unreachable until restart
                // completes. (The node's own RIB is preserved, as if
                // checkpointed — the model captures the peer-side retention
                // and the control-plane outage window.)
                let cfg = layer.sessions[idx][nix].fsm.config();
                layer.sessions[idx][nix].fsm = PeerFsm::new(cfg);
                layer.sessions[idx][nix].blocked = true;
                layer.sessions[idx][nix].stale.clear();
                layer.cancel_all(idx, nix);
                if self.nodes[idx].fail_session_control(peer) {
                    self.version += 1;
                }
                // The peer detects the restart (GR negotiated ⇒ retain).
                self.drive(&mut layer, now, peer, node, FsmInput::PeerRestart, out);
                // Restart completes after `restart`, then reconnect.
                self.schedule_retry(&mut layer, node, peer, nix, restart, out);
            }
            self.session = Some(layer);
        } else {
            let peers: Vec<NodeId> = self.nodes[node.index()]
                .neighbors()
                .iter()
                .map(|n| n.peer)
                .collect();
            for peer in peers {
                self.reset_link(now, node, peer, out);
            }
        }
    }

    /// Fails every link of `node` (a whole-site crash).
    pub fn fail_node_links(
        &mut self,
        now: SimTime,
        node: NodeId,
        topo_neighbors: &[NodeId],
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        for &peer in topo_neighbors {
            self.fail_link(now, node, peer, out);
        }
    }

    /// Is the (bidirectional) link between `a` and `b` usable by the data
    /// plane? Keyed to the *forwarding* flag, which the abstract model
    /// keeps locked to the session flag; the message-level model splits
    /// them so graceful restart and half-open sessions keep forwarding
    /// while the control plane is down.
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[a.index()].forwarding_is_up(b) && self.nodes[b.index()].forwarding_is_up(a)
    }

    fn record_change(&mut self, now: SimTime, node: NodeId, prefix: Prefix) {
        if !self.record_history {
            return;
        }
        self.history.push(RouteChange {
            time: now,
            node,
            prefix,
            new: self.nodes[node.index()].best(&prefix).cloned(),
        });
    }
}

struct Adapter<'a> {
    sim: &'a mut BgpSim,
    scratch: &'a mut Vec<(SimDuration, BgpEvent)>,
}

impl Handler<BgpEvent> for Adapter<'_> {
    fn handle(&mut self, now: SimTime, event: BgpEvent, sched: &mut Scheduler<'_, BgpEvent>) {
        self.sim.handle(now, event, self.scratch);
        for (d, e) in self.scratch.drain(..) {
            sched.after(d, e);
        }
    }
}

/// A self-contained control-plane-only simulation: engine + [`BgpSim`].
/// Used by the BGP tests and the Appendix A/B experiments (Figures 3/4),
/// where no data-plane probing is needed.
///
/// ```
/// use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
/// use bobw_event::RngFactory;
/// use bobw_topology::{generate, GenConfig};
///
/// let rng = RngFactory::new(42);
/// let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
/// let mut sim = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
/// // Anycast: every site originates the same prefix.
/// let prefix = "184.164.244.0/24".parse().unwrap();
/// for &site in cdn.site_nodes() {
///     sim.announce(site, prefix, OriginConfig::plain());
/// }
/// sim.run_to_idle(1_000_000);
/// // Every AS now has a best route to one of the sites.
/// assert!(topo.ids().all(|n| {
///     sim.sim().best(n, &prefix).is_some() || cdn.site_at(n).is_some()
/// }));
/// ```
pub struct Standalone {
    engine: Engine<BgpEvent>,
    sim: BgpSim,
    /// Reusable buffer for events emitted by [`BgpSim`] before they are
    /// scheduled on the engine — one allocation for the sim's lifetime
    /// instead of one per injected operation or handled event.
    scratch: Vec<(SimDuration, BgpEvent)>,
}

impl Standalone {
    pub fn new(topo: &Topology, timing: BgpTimingConfig, rng: &RngFactory) -> Standalone {
        Standalone::with_queue_capacity(topo, timing, rng, 0)
    }

    /// Like [`Standalone::new`] but with the engine queue preallocated for
    /// `cap` pending events — feed back a comparable run's
    /// [`peak_queue_depth`]. Allocation only; behavior is identical.
    ///
    /// [`peak_queue_depth`]: Standalone::peak_queue_depth
    pub fn with_queue_capacity(
        topo: &Topology,
        timing: BgpTimingConfig,
        rng: &RngFactory,
        cap: usize,
    ) -> Standalone {
        Standalone {
            engine: Engine::with_capacity(cap),
            sim: BgpSim::new(topo, timing, rng),
            scratch: Vec::with_capacity(64),
        }
    }

    pub fn sim(&self) -> &BgpSim {
        &self.sim
    }

    pub fn sim_mut(&mut self) -> &mut BgpSim {
        &mut self.sim
    }

    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Number of BGP events waiting in the engine queue.
    pub fn pending_events(&self) -> usize {
        self.engine.pending()
    }

    /// Total events the engine has processed.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// High-water mark of the engine queue (see [`Engine::peak_pending`]).
    pub fn peak_queue_depth(&self) -> usize {
        self.engine.peak_pending()
    }

    /// Events the engine's hot queue lane can hold without reallocating
    /// (see [`Engine::queue_capacity`]).
    pub fn queue_capacity(&self) -> usize {
        self.engine.queue_capacity()
    }

    /// Schedule everything the sim emitted into `scratch` onto the engine.
    /// Shared drain for every injection method below.
    fn flush_scratch(&mut self) {
        for (d, e) in self.scratch.drain(..) {
            self.engine.schedule_after(d, e);
        }
    }

    pub fn announce(&mut self, node: NodeId, prefix: Prefix, cfg: OriginConfig) {
        let now = self.engine.now();
        self.sim.announce(now, node, prefix, cfg, &mut self.scratch);
        self.flush_scratch();
    }

    pub fn withdraw(&mut self, node: NodeId, prefix: Prefix) {
        let now = self.engine.now();
        self.sim.withdraw(now, node, prefix, &mut self.scratch);
        self.flush_scratch();
    }

    /// Silently fails the link between `a` and `b` (see [`BgpSim::fail_link`]).
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        let now = self.engine.now();
        self.sim.fail_link(now, a, b, &mut self.scratch);
        self.flush_scratch();
    }

    /// Restores a previously failed link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        let now = self.engine.now();
        self.sim.restore_link(now, a, b, &mut self.scratch);
        self.flush_scratch();
    }

    /// Bounces the session on a link (see [`BgpSim::reset_link`]).
    pub fn reset_link(&mut self, a: NodeId, b: NodeId) {
        let now = self.engine.now();
        self.sim.reset_link(now, a, b, &mut self.scratch);
        self.flush_scratch();
    }

    /// Crashes every listed link of `node` at once (whole-site failure).
    pub fn fail_all_links(&mut self, node: NodeId, peers: &[NodeId]) {
        let now = self.engine.now();
        self.sim
            .fail_node_links(now, node, peers, &mut self.scratch);
        self.flush_scratch();
    }

    /// Switches to the message-level session model and starts every
    /// session (see [`BgpSim::enable_message_level`]). Call before
    /// announcing anything; run the engine afterwards to let the sessions
    /// establish.
    pub fn enable_message_level(&mut self) {
        self.sim.enable_message_level(SessionKnobs::default());
        let now = self.engine.now();
        self.sim.start_sessions(now, &mut self.scratch);
        self.flush_scratch();
    }

    /// Half-opens the session between `site` and `peer` (see
    /// [`BgpSim::half_open`]).
    pub fn half_open(&mut self, site: NodeId, peer: NodeId) {
        let now = self.engine.now();
        self.sim.half_open(now, site, peer, &mut self.scratch);
        self.flush_scratch();
    }

    /// Resets `a`'s session to `b` with a NOTIFICATION (see
    /// [`BgpSim::notify_reset`]).
    pub fn notify_reset(&mut self, a: NodeId, b: NodeId, code: u8) {
        let now = self.engine.now();
        self.sim.notify_reset(now, a, b, code, &mut self.scratch);
        self.flush_scratch();
    }

    /// Gracefully restarts `node`'s BGP process (see
    /// [`BgpSim::graceful_restart`]).
    pub fn graceful_restart(&mut self, node: NodeId, restart: SimDuration) {
        let now = self.engine.now();
        self.sim
            .graceful_restart(now, node, restart, &mut self.scratch);
        self.flush_scratch();
    }

    /// Runs until no BGP work remains (full convergence) or the event
    /// budget is exhausted.
    pub fn run_to_idle(&mut self, max_events: u64) -> StepOutcome {
        let mut adapter = Adapter {
            sim: &mut self.sim,
            scratch: &mut self.scratch,
        };
        self.engine.run_to_idle(&mut adapter, max_events)
    }

    /// Runs for `secs` of simulated time from now (convenience wrapper).
    pub fn run_until_secs(&mut self, secs: u64) -> StepOutcome {
        let deadline = self.engine.now() + SimDuration::from_secs(secs);
        self.run_until(deadline, u64::MAX)
    }

    /// Runs until `deadline` (events at the deadline included).
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> StepOutcome {
        let mut adapter = Adapter {
            sim: &mut self.sim,
            scratch: &mut self.scratch,
        };
        self.engine.run_until(&mut adapter, deadline, max_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_net::Asn;
    use bobw_topology::{NodeKind, REGIONS};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Chain topology: t1 --(provides)--> mid --(provides)--> leaf, plus a
    /// second leaf under t1 directly.
    ///
    /// ```text
    ///        t1
    ///       /  \
    ///     mid   leaf2
    ///      |
    ///     leaf
    /// ```
    fn chain() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let t1 = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
        let mid = t.add_node(Asn(20), NodeKind::Transit, c, 0);
        let leaf = t.add_node(Asn(30), NodeKind::Stub, c, 0);
        let leaf2 = t.add_node(Asn(40), NodeKind::Stub, c, 0);
        t.link_provider_customer(t1, mid);
        t.link_provider_customer(mid, leaf);
        t.link_provider_customer(t1, leaf2);
        (t, t1, mid, leaf, leaf2)
    }

    #[test]
    fn announcement_propagates_to_whole_chain() {
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain());
        assert_eq!(s.run_to_idle(100_000), StepOutcome::Idle);
        // Everyone has a route; FIB next hops walk back down the chain.
        assert_eq!(
            s.sim().fib_lookup(leaf, pre.addr_at(1)).unwrap().1,
            NextHop::Local
        );
        assert_eq!(
            s.sim().fib_lookup(mid, pre.addr_at(1)).unwrap().1,
            NextHop::Via(leaf)
        );
        assert_eq!(
            s.sim().fib_lookup(t1, pre.addr_at(1)).unwrap().1,
            NextHop::Via(mid)
        );
        assert_eq!(
            s.sim().fib_lookup(leaf2, pre.addr_at(1)).unwrap().1,
            NextHop::Via(t1)
        );
        // AS paths lengthen along the chain.
        let best_at_leaf2 = s.sim().best(leaf2, &pre).unwrap();
        assert_eq!(best_at_leaf2.attrs.path.hops().len(), 3);
        assert_eq!(best_at_leaf2.attrs.origin, leaf);
    }

    #[test]
    fn withdrawal_clears_the_network() {
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        s.withdraw(leaf, pre);
        assert_eq!(s.run_to_idle(100_000), StepOutcome::Idle);
        for n in [t1, mid, leaf, leaf2] {
            assert!(s.sim().best(n, &pre).is_none(), "{n} still has a route");
            assert!(s.sim().fib_lookup(n, pre.addr_at(1)).is_none());
        }
    }

    #[test]
    fn anycast_two_origins_split_catchment() {
        // Diamond: two tier-1 peers, each providing one leaf; both leaves
        // announce the same prefix (anycast). Each tier-1 must prefer its
        // own customer leaf.
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let a = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
        let b = t.add_node(Asn(11), NodeKind::Tier1, c, 0);
        let la = t.add_node(Asn(30), NodeKind::Stub, c, 0);
        let lb = t.add_node(Asn(31), NodeKind::Stub, c, 0);
        t.link_peers(a, b);
        t.link_provider_customer(a, la);
        t.link_provider_customer(b, lb);
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&t, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(la, pre, OriginConfig::plain());
        s.announce(lb, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        assert_eq!(s.sim().best(a, &pre).unwrap().attrs.origin, la);
        assert_eq!(s.sim().best(b, &pre).unwrap().attrs.origin, lb);
        // Withdraw one origin: both tier-1s converge to the survivor.
        s.withdraw(la, pre);
        s.run_to_idle(100_000);
        assert_eq!(s.sim().best(a, &pre).unwrap().attrs.origin, lb);
        assert_eq!(s.sim().best(b, &pre).unwrap().attrs.origin, lb);
        assert!(
            s.sim().best(la, &pre).is_some(),
            "ex-origin learns the other site"
        );
    }

    #[test]
    fn valley_free_blocks_peer_to_peer_transit() {
        // leafA - t1a (peer) t1b - leafB, and t1a peers with t1c which has
        // no customer route: t1c must NOT relay t1a's peer-learned route to
        // t1b. Build: origin under t1a; t1b reaches it via its own peer link
        // to t1a, never via t1c.
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let t1a = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
        let t1b = t.add_node(Asn(11), NodeKind::Tier1, c, 0);
        let t1c = t.add_node(Asn(12), NodeKind::Tier1, c, 0);
        let origin = t.add_node(Asn(30), NodeKind::Stub, c, 0);
        t.link_peers(t1a, t1b);
        t.link_peers(t1a, t1c);
        t.link_peers(t1b, t1c);
        t.link_provider_customer(t1a, origin);
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&t, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(origin, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        // t1b and t1c both learn via t1a directly (valley-free: they cannot
        // relay to each other).
        assert_eq!(s.sim().best(t1b, &pre).unwrap().from, Some(t1a));
        assert_eq!(s.sim().best(t1c, &pre).unwrap().from, Some(t1a));
        // Adj-RIB-In of t1b contains only the t1a route.
        assert_eq!(s.sim().node(t1b).adj_in(&pre).len(), 1);
    }

    #[test]
    fn covering_prefix_lpm_fallthrough_after_withdrawal() {
        // The §3 proactive-superprefix mechanism at a single router: /24
        // from one origin, /23 from another; withdrawing the /24 makes the
        // FIB fall through to the /23.
        let (topo, t1, _mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let specific = p("184.164.244.0/24");
        let covering = p("184.164.244.0/23");
        s.announce(leaf, specific, OriginConfig::plain());
        s.announce(leaf2, covering, OriginConfig::plain());
        s.run_to_idle(100_000);
        let addr = specific.addr_at(10);
        let (matched, _) = s.sim().fib_lookup(t1, addr).unwrap();
        assert_eq!(matched, specific);
        s.withdraw(leaf, specific);
        s.run_to_idle(100_000);
        let (matched, nh) = s.sim().fib_lookup(t1, addr).unwrap();
        assert_eq!(matched, covering);
        assert_eq!(nh, NextHop::Via(leaf2));
    }

    #[test]
    fn history_records_convergence_and_withdrawals() {
        let (topo, _t1, _mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.sim_mut().set_record_history(true);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain());
        s.run_to_idle(100_000);
        let announces = s.sim().history().len();
        assert!(announces >= 4, "each node's first best counts: {announces}");
        s.withdraw(leaf, pre);
        s.run_to_idle(100_000);
        let hist = s.sim_mut().take_history();
        assert!(hist.iter().any(|rc| rc.is_withdrawal() && rc.node == leaf2));
        // Times are monotone.
        for w in hist.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(s.sim().history().is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let (topo, ..) = chain();
        let run = || {
            let rng = RngFactory::new(99);
            let mut s = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
            s.sim_mut().set_record_history(true);
            let pre = p("184.164.244.0/24");
            s.announce(NodeId(2), pre, OriginConfig::plain());
            s.run_to_idle(1_000_000);
            s.withdraw(NodeId(2), pre);
            s.run_to_idle(1_000_000);
            (s.sim().stats(), s.now(), s.sim().history().len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_export_stays_at_direct_neighbors() {
        // leaf originates with NO_EXPORT: mid (its provider) learns and
        // uses the route but never re-advertises it to t1.
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain().with_no_export());
        s.run_to_idle(100_000);
        assert_eq!(
            s.sim().fib_lookup(mid, pre.addr_at(1)).unwrap().1,
            NextHop::Via(leaf),
            "direct neighbor uses the NO_EXPORT route"
        );
        assert!(
            s.sim().best(t1, &pre).is_none(),
            "NO_EXPORT route must not propagate beyond the neighbor"
        );
        assert!(s.sim().best(leaf2, &pre).is_none());
    }

    #[test]
    fn stats_count_messages() {
        let (topo, ..) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.announce(NodeId(2), p("184.164.244.0/24"), OriginConfig::plain());
        s.run_to_idle(100_000);
        let stats = s.sim().stats();
        assert!(stats.messages >= 3);
        assert!(stats.best_changes >= 3);
    }

    /// A message-level Standalone over the chain topology with sessions
    /// established and `prefix` announced from `leaf`.
    fn ml_converged() -> (Standalone, NodeId, NodeId, NodeId, NodeId, Prefix) {
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.enable_message_level();
        let pre = p("184.164.244.0/24");
        s.announce(leaf, pre, OriginConfig::plain());
        assert_eq!(s.run_to_idle(1_000_000), StepOutcome::Idle);
        (s, t1, mid, leaf, leaf2, pre)
    }

    #[test]
    fn message_level_converges_like_abstract() {
        let (topo, t1, mid, leaf, leaf2) = chain();
        let rng = RngFactory::new(1);
        let mut a = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        let pre = p("184.164.244.0/24");
        a.announce(leaf, pre, OriginConfig::plain());
        a.run_to_idle(1_000_000);

        let (m, ..) = ml_converged();
        for n in [t1, mid, leaf, leaf2] {
            assert_eq!(
                m.sim().best(n, &pre),
                a.sim().best(n, &pre),
                "best at {n} differs between models"
            );
            assert_eq!(
                m.sim().fib_lookup(n, pre.addr_at(1)),
                a.sim().fib_lookup(n, pre.addr_at(1))
            );
        }
        // OPEN/KEEPALIVE exchanges went through the codec: 2 per direction
        // per adjacency at minimum.
        assert!(m.sim().stats().session_msgs >= 12);
        assert_eq!(a.sim().stats().session_msgs, 0);
    }

    #[test]
    fn message_level_notify_reset_flaps_and_recovers() {
        let (mut s, t1, mid, _leaf, leaf2, pre) = ml_converged();
        s.sim_mut().set_record_history(true);
        let before = s.sim().stats().session_msgs;
        s.notify_reset(t1, mid, 6); // administrative Cease from t1
        assert_eq!(s.run_to_idle(1_000_000), StepOutcome::Idle);
        // t1 purged its only route (via mid) and propagated the loss to
        // leaf2, then re-learned everything after re-establishment.
        let hist = s.sim().history();
        assert!(
            hist.iter().any(|rc| rc.node == leaf2 && rc.is_withdrawal()),
            "reset must propagate a real withdrawal"
        );
        assert_eq!(s.sim().best(t1, &pre).unwrap().from, Some(mid));
        assert_eq!(s.sim().best(leaf2, &pre).unwrap().from, Some(t1));
        assert!(
            s.sim().stats().session_msgs > before,
            "reset must exchange NOTIFICATION + fresh handshake"
        );
    }

    #[test]
    fn message_level_half_open_purges_peer_then_site() {
        let (mut s, t1, mid, _leaf, _leaf2, pre) = ml_converged();
        // t1's side of the (mid, t1) session silently loses its state.
        s.half_open(mid, t1);
        s.run_until_secs(1);
        // Phase 1: t1 purged instantly; mid still believes the session is
        // up and keeps its state.
        assert!(s.sim().best(t1, &pre).is_none(), "peer purges immediately");
        assert!(s.sim().best(mid, &pre).is_some());
        // The wire itself is fine: forwarding stays up in both directions.
        assert!(s.sim().link_is_up(t1, mid));
        // Phase 2: mid's hold timer expires, it notices, reconnects, and
        // the session fully recovers.
        assert_eq!(s.run_to_idle(1_000_000), StepOutcome::Idle);
        assert_eq!(s.sim().best(t1, &pre).unwrap().from, Some(mid));
    }

    #[test]
    fn message_level_graceful_restart_retains_routes() {
        let (mut s, t1, mid, _leaf, _leaf2, pre) = ml_converged();
        s.sim_mut().set_record_history(true);
        let best_before = *s.sim().best(t1, &pre).unwrap();
        s.graceful_restart(mid, SimDuration::from_secs(5));
        // During the restart window: control plane down, but t1 retains
        // the stale route and the data plane keeps forwarding through mid.
        assert_eq!(s.sim().best(t1, &pre), Some(&best_before));
        assert!(s.sim().link_is_up(t1, mid));
        assert!(!s.sim().node(t1).session_is_up(mid));
        // Restart completes, sessions re-establish, stale set is refreshed
        // before the sweep: no withdrawal ever reaches the network.
        assert_eq!(s.run_to_idle(1_000_000), StepOutcome::Idle);
        assert_eq!(s.sim().best(t1, &pre), Some(&best_before));
        assert!(s.sim().node(t1).session_is_up(mid));
        assert!(
            !s.sim().history().iter().any(|rc| rc.is_withdrawal()),
            "graceful restart must not leak withdrawals"
        );
    }

    #[test]
    fn message_level_link_cut_purges_at_hold_and_recovers_on_restore() {
        let (mut s, t1, mid, _leaf, leaf2, pre) = ml_converged();
        s.fail_link(t1, mid);
        // Before the hold timer: sessions still Established, routes kept.
        s.run_until_secs(1);
        assert!(s.sim().best(t1, &pre).is_some());
        assert!(!s.sim().link_is_up(t1, mid));
        // Hold expires: both sides purge; t1 and leaf2 lose the route.
        assert_eq!(s.run_to_idle(1_000_000), StepOutcome::Idle);
        assert!(s.sim().best(t1, &pre).is_none());
        assert!(s.sim().best(leaf2, &pre).is_none());
        // Restore: handshake from scratch, full tables re-exchanged.
        s.restore_link(t1, mid);
        assert_eq!(s.run_to_idle(1_000_000), StepOutcome::Idle);
        assert_eq!(s.sim().best(t1, &pre).unwrap().from, Some(mid));
        assert_eq!(s.sim().best(leaf2, &pre).unwrap().from, Some(t1));
    }

    #[test]
    fn message_level_deterministic_across_runs() {
        let (topo, t1, mid, leaf, _leaf2) = chain();
        let run = || {
            let rng = RngFactory::new(99);
            let mut s = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
            s.sim_mut().set_record_history(true);
            s.enable_message_level();
            let pre = p("184.164.244.0/24");
            s.announce(leaf, pre, OriginConfig::plain());
            s.run_to_idle(1_000_000);
            s.notify_reset(t1, mid, 6);
            s.run_to_idle(1_000_000);
            s.graceful_restart(mid, SimDuration::from_secs(5));
            s.run_to_idle(1_000_000);
            (s.sim().stats(), s.now(), s.sim().history().len())
        };
        assert_eq!(run(), run());
    }
}
