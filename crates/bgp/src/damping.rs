//! Route-flap damping (RFC 2439, simplified): per-⟨neighbor, prefix⟩
//! penalties with exponential decay and suppress/reuse thresholds.
//!
//! Damping is off by default (modern operational guidance — RIPE-580 — is
//! to avoid aggressive damping precisely because of the failure mode the
//! `ablation` bench demonstrates): a site failure *is* a flap, so routers
//! that dampen the withdrawn prefix will also suppress the **valid** routes
//! reactive-anycast injects right after it, delaying failover. The paper
//! does not discuss this interaction; the knob exists here to quantify it.

use bobw_event::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Damping parameters (classic Cisco-style defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DampingConfig {
    /// Penalty added when the neighbor withdraws the route.
    pub withdrawal_penalty: f64,
    /// Penalty added when the neighbor re-advertises / changes attributes.
    pub update_penalty: f64,
    /// Suppress the route when its penalty exceeds this.
    pub suppress_threshold: f64,
    /// Un-suppress when the decayed penalty falls below this.
    pub reuse_threshold: f64,
    /// Exponential-decay half life of the penalty.
    pub half_life: SimDuration,
    /// Penalty ceiling.
    pub max_penalty: f64,
}

impl Default for DampingConfig {
    fn default() -> Self {
        DampingConfig {
            withdrawal_penalty: 1000.0,
            update_penalty: 500.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(900),
            max_penalty: 12_000.0,
        }
    }
}

/// Damping state for one ⟨neighbor, prefix⟩ route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DampState {
    penalty: f64,
    last: SimTime,
    suppressed: bool,
}

impl DampState {
    pub fn new(now: SimTime) -> DampState {
        DampState {
            penalty: 0.0,
            last: now,
            suppressed: false,
        }
    }

    fn decayed(&self, cfg: &DampingConfig, now: SimTime) -> f64 {
        let dt = now.checked_since(self.last).unwrap_or(SimDuration::ZERO);
        let hl = cfg.half_life.as_secs_f64().max(f64::MIN_POSITIVE);
        self.penalty * 0.5f64.powf(dt.as_secs_f64() / hl)
    }

    /// Current penalty after decay (does not mutate).
    pub fn penalty_at(&self, cfg: &DampingConfig, now: SimTime) -> f64 {
        self.decayed(cfg, now)
    }

    /// Is the route currently suppressed? Also applies reuse on read: a
    /// decayed-below-reuse route is usable again.
    pub fn is_suppressed(&self, cfg: &DampingConfig, now: SimTime) -> bool {
        self.suppressed && self.decayed(cfg, now) >= cfg.reuse_threshold
    }

    /// Registers a flap (withdrawal or update) at `now`; returns whether
    /// the route is suppressed afterwards.
    pub fn flap(&mut self, cfg: &DampingConfig, now: SimTime, withdrawal: bool) -> bool {
        let add = if withdrawal {
            cfg.withdrawal_penalty
        } else {
            cfg.update_penalty
        };
        let mut p = self.decayed(cfg, now) + add;
        if p > cfg.max_penalty {
            p = cfg.max_penalty;
        }
        // Reuse check before stacking the new state.
        if self.suppressed && self.decayed(cfg, now) < cfg.reuse_threshold {
            self.suppressed = false;
        }
        self.penalty = p;
        self.last = now;
        if p >= cfg.suppress_threshold {
            self.suppressed = true;
        }
        self.suppressed
    }

    /// Time until the decayed penalty reaches the reuse threshold (zero if
    /// already reusable). Callers schedule a re-decision then.
    pub fn time_to_reuse(&self, cfg: &DampingConfig, now: SimTime) -> SimDuration {
        let p = self.decayed(cfg, now);
        if p <= cfg.reuse_threshold {
            return SimDuration::ZERO;
        }
        let hl = cfg.half_life.as_secs_f64();
        let secs = hl * (p / cfg.reuse_threshold).log2();
        SimDuration::from_secs_f64(secs.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_flap_does_not_suppress() {
        let cfg = DampingConfig::default();
        let mut d = DampState::new(t(0));
        assert!(!d.flap(&cfg, t(10), true));
        assert!(!d.is_suppressed(&cfg, t(10)));
        assert!((d.penalty_at(&cfg, t(10)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn rapid_flaps_suppress() {
        // With Cisco-style parameters (1000/penalty, 2000 suppress), the
        // third rapid flap crosses the threshold (decay keeps two flaps
        // just under it).
        let cfg = DampingConfig::default();
        let mut d = DampState::new(t(0));
        assert!(!d.flap(&cfg, t(10), true));
        assert!(!d.flap(&cfg, t(20), true));
        let suppressed = d.flap(&cfg, t(30), true);
        assert!(suppressed, "three withdrawals in 20 s must suppress");
        assert!(d.is_suppressed(&cfg, t(40)));
    }

    #[test]
    fn penalty_decays_with_half_life() {
        let cfg = DampingConfig::default();
        let mut d = DampState::new(t(0));
        d.flap(&cfg, t(0), true);
        let p = d.penalty_at(&cfg, t(900));
        assert!((p - 500.0).abs() < 1.0, "{p}");
        let p = d.penalty_at(&cfg, t(1800));
        assert!((p - 250.0).abs() < 1.0, "{p}");
    }

    #[test]
    fn reuse_after_decay() {
        let cfg = DampingConfig::default();
        let mut d = DampState::new(t(0));
        d.flap(&cfg, t(0), true);
        d.flap(&cfg, t(5), true);
        d.flap(&cfg, t(10), false);
        assert!(d.is_suppressed(&cfg, t(60)));
        let wait = d.time_to_reuse(&cfg, t(60));
        // ~2500 penalty → reuse at 750 needs ~1.7 half lives ≈ 1560 s.
        assert!(wait > SimDuration::from_secs(1000));
        assert!(wait < SimDuration::from_secs(2500));
        let later = t(60) + wait + SimDuration::from_secs(1);
        assert!(!d.is_suppressed(&cfg, later), "reusable after the wait");
        assert_eq!(d.time_to_reuse(&cfg, later), SimDuration::ZERO);
    }

    #[test]
    fn penalty_is_capped() {
        let cfg = DampingConfig::default();
        let mut d = DampState::new(t(0));
        for i in 0..100 {
            d.flap(&cfg, t(i), true);
        }
        assert!(d.penalty_at(&cfg, t(100)) <= cfg.max_penalty);
    }
}
