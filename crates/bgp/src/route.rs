//! Route attributes, wire messages, and simulator events.

use bobw_event::SimTime;
use bobw_net::{AsPath, NodeId, Prefix};
use bobw_session::SessionPayload;
use serde::{Deserialize, Serialize};

/// What actually travels between ASes for one prefix: the path-vector
/// attributes. LOCAL_PREF is *not* here — it is assigned by the receiver's
/// import policy, like on the real Internet.
///
/// `origin` is simulator metadata identifying the originating node (a CDN
/// site or a standalone origin). Real BGP does not carry it, but CDNs
/// recover the same information from communities or from which prefix was
/// used; the simulator uses it for catchment accounting only, never in the
/// decision process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireRoute {
    pub path: AsPath,
    pub med: u32,
    pub origin: NodeId,
    /// The well-known NO_EXPORT community: the receiving AS may use the
    /// route but must not re-advertise it to its own neighbors. The
    /// practical mechanism behind §4's "only announce the prepended route
    /// to neighbors that also connect to the site" — scoped backup routes
    /// without per-neighbor export lists.
    pub no_export: bool,
}

/// A route as held in a node's Adj-RIB-In / Loc-RIB: wire attributes plus
/// the import-policy-assigned LOCAL_PREF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAttrs {
    pub path: AsPath,
    pub local_pref: u32,
    pub med: u32,
    pub origin: NodeId,
    /// Carried NO_EXPORT community (see [`WireRoute::no_export`]).
    pub no_export: bool,
}

impl RouteAttrs {
    /// Re-wraps Loc-RIB attributes as wire attributes for export.
    pub fn to_wire(&self) -> WireRoute {
        WireRoute {
            path: self.path,
            med: self.med,
            origin: self.origin,
            no_export: self.no_export,
        }
    }
}

/// A BGP message for a single prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    Update { prefix: Prefix, route: WireRoute },
    Withdraw { prefix: Prefix },
}

impl Message {
    pub fn prefix(&self) -> Prefix {
        match self {
            Message::Update { prefix, .. } | Message::Withdraw { prefix } => *prefix,
        }
    }
}

/// Where a node forwards packets for a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextHop {
    /// The node itself originates the prefix (packets terminate here — at a
    /// CDN site, that means "served").
    Local,
    /// Forward to this neighbor.
    Via(NodeId),
}

/// The route a node currently uses for a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selected {
    /// The neighbor the route was learned from; `None` = self-originated.
    pub from: Option<NodeId>,
    pub attrs: RouteAttrs,
}

impl Selected {
    pub fn next_hop(&self) -> NextHop {
        match self.from {
            Some(n) => NextHop::Via(n),
            None => NextHop::Local,
        }
    }
}

/// One entry in the simulator's route-change history: node `node`'s best
/// route for `prefix` changed to `new` (None = lost all routes) at `time`.
///
/// This stream is what the RIS/RouteViews-style collectors in
/// `bobw-measure` consume: a real collector peer exports its best-route
/// changes to the collector, so filtering this log to the peer's node id
/// reproduces the collector's update feed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteChange {
    pub time: SimTime,
    pub node: NodeId,
    pub prefix: Prefix,
    pub new: Option<Selected>,
}

impl RouteChange {
    /// Is this change a withdrawal (peer lost its route entirely)?
    pub fn is_withdrawal(&self) -> bool {
        self.new.is_none()
    }
}

/// Events driving the BGP simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgpEvent {
    /// A message arrives at `to` from neighbor `from`.
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Message,
    },
    /// A pending per-(node, neighbor, prefix) send timer fires. `gen` guards
    /// against stale timers: if the pending entry has been superseded the
    /// event is a no-op.
    Fire {
        node: NodeId,
        neighbor: NodeId,
        prefix: Prefix,
        gen: u64,
    },
    /// A dampened route's penalty has decayed to the reuse threshold:
    /// re-run the decision at `node` for `prefix` so the suppressed
    /// candidate from `neighbor` becomes eligible again.
    DampingReuse {
        node: NodeId,
        neighbor: NodeId,
        prefix: Prefix,
    },
    /// `node`'s BGP hold timer for the session to `neighbor` expires: the
    /// session is torn down and every route learned from the neighbor is
    /// purged (triggering withdrawals/exploration). Scheduled when a link
    /// fails silently; a no-op if the session came back up in the meantime.
    HoldExpire { node: NodeId, neighbor: NodeId },
    /// Message-level model only: a session-management message
    /// (OPEN/KEEPALIVE/NOTIFICATION) arrives at `to` from `from`. Route
    /// UPDATEs keep travelling as [`BgpEvent::Deliver`]; both kinds pass
    /// through the wire codec when the session layer is enabled.
    SessionMsg {
        to: NodeId,
        from: NodeId,
        payload: SessionPayload,
    },
    /// Message-level model only: a session timer for `node`'s session to
    /// `neighbor` fires. `gen` guards staleness — the session layer bumps
    /// the per-kind generation to cancel an armed timer, and a firing with
    /// a stale generation is a no-op.
    SessionTimer {
        node: NodeId,
        neighbor: NodeId,
        kind: SessionTimerKind,
        gen: u32,
    },
}

/// Which timer a [`BgpEvent::SessionTimer`] represents: the three RFC 4271
/// session timers plus the graceful-restart stale sweep (an integration-
/// level deadline, not an FSM timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionTimerKind {
    ConnectRetry,
    Hold,
    Keepalive,
    StaleSweep,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_net::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn message_prefix_accessor() {
        let w = WireRoute {
            path: AsPath::originate(Asn(1), 0),
            med: 0,
            origin: NodeId(0),
            no_export: false,
        };
        let u = Message::Update {
            prefix: p("10.0.0.0/8"),
            route: w,
        };
        assert_eq!(u.prefix(), p("10.0.0.0/8"));
        let wd = Message::Withdraw {
            prefix: p("10.0.0.0/8"),
        };
        assert_eq!(wd.prefix(), p("10.0.0.0/8"));
    }

    #[test]
    fn selected_next_hop() {
        let attrs = RouteAttrs {
            path: AsPath::empty(),
            local_pref: u32::MAX,
            med: 0,
            origin: NodeId(3),
            no_export: false,
        };
        let self_route = Selected { from: None, attrs };
        assert_eq!(self_route.next_hop(), NextHop::Local);
        let learned = Selected {
            from: Some(NodeId(9)),
            attrs,
        };
        assert_eq!(learned.next_hop(), NextHop::Via(NodeId(9)));
    }

    #[test]
    fn wire_round_trip_preserves_attrs() {
        let attrs = RouteAttrs {
            path: AsPath::originate(Asn(5), 2),
            local_pref: 300,
            med: 7,
            origin: NodeId(1),
            no_export: true,
        };
        let wire = attrs.to_wire();
        assert_eq!(wire.path, attrs.path);
        assert_eq!(wire.med, attrs.med);
        assert_eq!(wire.origin, attrs.origin);
        assert!(wire.no_export);
    }

    #[test]
    fn route_change_withdrawal_flag() {
        let rc = RouteChange {
            time: SimTime::ZERO,
            node: NodeId(0),
            prefix: p("10.0.0.0/8"),
            new: None,
        };
        assert!(rc.is_withdrawal());
    }
}
