//! Looking-glass diagnostics: human-readable RIB dumps and decision
//! explanations, the `show ip bgp` of the simulator.
//!
//! Operators debug exactly the situations this paper is about — "why is
//! this client suddenly landing at the wrong site?" — by reading a looking
//! glass. These helpers answer the same questions against simulated state
//! and back the `inspect` subcommand of the CLI.

use std::fmt::Write as _;

use bobw_net::{NodeId, Prefix};

use crate::sim::BgpSim;

/// Why a candidate route lost the decision process (first differing
/// criterion against the winner), or won.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    Best,
    LowerLocalPref { candidate: u32, best: u32 },
    LongerAsPath { candidate: usize, best: usize },
    HigherMed { candidate: u32, best: u32 },
    TieBreak,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Best => write!(f, "best"),
            Verdict::LowerLocalPref { candidate, best } => {
                write!(f, "lower LOCAL_PREF ({candidate} < {best})")
            }
            Verdict::LongerAsPath { candidate, best } => {
                write!(f, "longer AS path ({candidate} > {best})")
            }
            Verdict::HigherMed { candidate, best } => {
                write!(f, "higher MED ({candidate} > {best})")
            }
            Verdict::TieBreak => write!(f, "lost deterministic tie-break"),
        }
    }
}

/// One explained candidate in a node's Adj-RIB-In.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Neighbor the route was learned from (`None` = self-originated).
    pub from: Option<NodeId>,
    pub local_pref: u32,
    pub med: u32,
    pub path: String,
    pub origin: NodeId,
    pub verdict: Verdict,
}

/// Explains node `node`'s decision for `prefix`: every candidate with the
/// criterion that eliminated it. Empty if the node knows no route.
pub fn explain(sim: &BgpSim, node: NodeId, prefix: &Prefix) -> Vec<Candidate> {
    let n = sim.node(node);
    let best = match n.best(prefix) {
        Some(b) => *b,
        None => return Vec::new(),
    };
    let mut out = Vec::new();
    // Self-originated route, if it is the best (it always wins when present).
    if best.from.is_none() {
        out.push(Candidate {
            from: None,
            local_pref: best.attrs.local_pref,
            med: best.attrs.med,
            path: "(self)".to_string(),
            origin: best.attrs.origin,
            verdict: Verdict::Best,
        });
    }
    for (from, attrs) in n.adj_in(prefix) {
        let verdict = if Some(from) == best.from {
            Verdict::Best
        } else if attrs.local_pref < best.attrs.local_pref {
            Verdict::LowerLocalPref {
                candidate: attrs.local_pref,
                best: best.attrs.local_pref,
            }
        } else if attrs.path.len() > best.attrs.path.len() {
            Verdict::LongerAsPath {
                candidate: attrs.path.len(),
                best: best.attrs.path.len(),
            }
        } else if attrs.med > best.attrs.med {
            Verdict::HigherMed {
                candidate: attrs.med,
                best: best.attrs.med,
            }
        } else {
            Verdict::TieBreak
        };
        out.push(Candidate {
            from: Some(from),
            local_pref: attrs.local_pref,
            med: attrs.med,
            path: attrs.path.to_string(),
            origin: attrs.origin,
            verdict,
        });
    }
    // Best first, then by neighbor id.
    out.sort_by_key(|c| (c.verdict != Verdict::Best, c.from));
    out
}

/// A looking-glass style dump of `node`'s view of `prefix`.
pub fn dump_rib(sim: &BgpSim, node: NodeId, prefix: &Prefix) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "BGP routing table entry for {prefix} at {node}");
    let candidates = explain(sim, node, prefix);
    if candidates.is_empty() {
        let _ = writeln!(s, "  (no route)");
        return s;
    }
    for c in candidates {
        let marker = if c.verdict == Verdict::Best { ">" } else { " " };
        let from = match c.from {
            Some(f) => format!("from {f}"),
            None => "local".to_string(),
        };
        let _ = writeln!(
            s,
            " {marker} path [{}] {from} localpref {} med {} origin {} — {}",
            c.path, c.local_pref, c.med, c.origin, c.verdict
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BgpTimingConfig, OriginConfig, Standalone};
    use bobw_event::RngFactory;
    use bobw_net::Asn;
    use bobw_topology::{NodeKind, Topology, REGIONS};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Node `x` with a customer route and a peer route to the same prefix.
    fn setup() -> (Standalone, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let x = t.add_node(Asn(10), NodeKind::Transit, c, 0);
        let cust = t.add_node(Asn(20), NodeKind::Stub, c, 0);
        let peer = t.add_node(Asn(30), NodeKind::Transit, c, 0);
        let origin = t.add_node(Asn(40), NodeKind::Stub, c, 0);
        t.link_provider_customer(x, cust);
        t.link_peers(x, peer);
        t.link_provider_customer(cust, origin);
        t.link_provider_customer(peer, origin);
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(&t, BgpTimingConfig::instant(), &rng);
        s.announce(origin, p("10.9.0.0/24"), OriginConfig::plain());
        s.run_to_idle(1_000_000);
        (s, x, cust, peer)
    }

    #[test]
    fn explain_ranks_best_first_with_reasons() {
        let (s, x, cust, peer) = setup();
        let cands = explain(s.sim(), x, &p("10.9.0.0/24"));
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].from, Some(cust));
        assert_eq!(cands[0].verdict, Verdict::Best);
        assert_eq!(cands[1].from, Some(peer));
        assert!(matches!(
            cands[1].verdict,
            Verdict::LowerLocalPref {
                candidate: 200,
                best: 300
            }
        ));
    }

    #[test]
    fn dump_is_readable() {
        let (s, x, _, _) = setup();
        let text = dump_rib(s.sim(), x, &p("10.9.0.0/24"));
        assert!(text.contains("BGP routing table entry"));
        assert!(text.contains("> path"));
        assert!(text.contains("lower LOCAL_PREF (200 < 300)"));
    }

    #[test]
    fn no_route_dump() {
        let (s, x, _, _) = setup();
        let text = dump_rib(s.sim(), x, &p("99.0.0.0/24"));
        assert!(text.contains("(no route)"));
        assert!(explain(s.sim(), x, &p("99.0.0.0/24")).is_empty());
    }

    #[test]
    fn self_originated_listed_as_local_best() {
        let (mut s, x, _, _) = setup();
        s.announce(x, p("10.9.0.0/24"), OriginConfig::plain());
        s.run_to_idle(1_000_000);
        let cands = explain(s.sim(), x, &p("10.9.0.0/24"));
        assert_eq!(cands[0].from, None);
        assert_eq!(cands[0].verdict, Verdict::Best);
        assert!(dump_rib(s.sim(), x, &p("10.9.0.0/24")).contains("local"));
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Best.to_string(), "best");
        assert_eq!(
            Verdict::LongerAsPath {
                candidate: 5,
                best: 2
            }
            .to_string(),
            "longer AS path (5 > 2)"
        );
        assert_eq!(
            Verdict::HigherMed {
                candidate: 9,
                best: 0
            }
            .to_string(),
            "higher MED (9 > 0)"
        );
        assert_eq!(
            Verdict::TieBreak.to_string(),
            "lost deterministic tie-break"
        );
    }
}
