//! Import and export policy: the Gao-Rexford economics that shape every
//! catchment in the paper, plus per-origin announcement configuration
//! (prepending and selective export) used by the paper's techniques.

use std::collections::BTreeSet;

use bobw_net::NodeId;
use bobw_topology::Rel;
use serde::{Deserialize, Serialize};

/// LOCAL_PREF assigned on import by relationship with the sender.
///
/// Customer routes earn money, peer routes are free, provider routes cost
/// money — so customer > peer > provider, the standard model. These values
/// sit above any AS-path consideration, which is why prepending cannot
/// overcome a relationship preference (Appendix C.1: 82% of sea1's lost
/// targets diverge at an AS that prefers a customer link to another site).
pub fn import_local_pref(rel_of_sender: Rel) -> u32 {
    match rel_of_sender {
        Rel::Customer => 300,
        // R&E mutual transit behaves almost like a customer route (free
        // academic transit), slightly below paying customers.
        Rel::MutualTransit => 280,
        Rel::Peer => 200,
        Rel::Provider => 100,
    }
}

/// Valley-free export rule: may a route learned from `learned_from`
/// (`None` = self-originated) be exported to a neighbor with relationship
/// `to`?
///
/// Self-originated and customer-learned routes go to everyone; peer- and
/// provider-learned routes go only to customers (no valleys, no free
/// transit).
pub fn may_export(learned_from: Option<Rel>, to: Rel) -> bool {
    match learned_from {
        // Self-originated and customer-learned routes go everywhere,
        // including across the R&E fabric.
        None | Some(Rel::Customer) => true,
        // Fabric-learned academic routes flood the fabric and its customer
        // cones, but are not leaked to commercial providers or peers.
        Some(Rel::MutualTransit) => matches!(to, Rel::Customer | Rel::MutualTransit),
        // Peer-/provider-learned (commercial) routes go only to customers —
        // an R&E network does not sell commodity transit to the fabric.
        Some(Rel::Peer) | Some(Rel::Provider) => to == Rel::Customer,
    }
}

/// How a node originates one prefix.
///
/// The paper's techniques are, at the BGP layer, just different
/// `OriginConfig`s applied at different times (Figure 1):
///
/// * unicast / reactive-anycast before failure: `OriginConfig::plain()` at
///   the specific site only;
/// * anycast: `plain()` at every site;
/// * proactive-prepending: `plain()` at the specific site,
///   `prepended(3)` (or 5) at every other site — optionally restricted via
///   `export_to` to neighbors that also connect to the specific site (§4's
///   recommendation);
/// * proactive-superprefix: `plain()` for the covering prefix at every
///   site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginConfig {
    /// Extra times the origin prepends its own ASN (0 = announce normally;
    /// the ASN always appears once).
    pub prepend: u8,
    /// If set, announce only to these neighbors; `None` = all neighbors.
    pub export_to: Option<BTreeSet<NodeId>>,
    /// MED attached to the announcement (0 unless a technique uses it).
    pub med: u32,
    /// Attach the NO_EXPORT community: receiving neighbors use the route
    /// but do not propagate it.
    pub no_export: bool,
}

impl OriginConfig {
    /// Announce normally to all neighbors.
    pub fn plain() -> OriginConfig {
        OriginConfig {
            prepend: 0,
            export_to: None,
            med: 0,
            no_export: false,
        }
    }

    /// Announce with `n` extra prepends to all neighbors.
    pub fn prepended(n: u8) -> OriginConfig {
        OriginConfig {
            prepend: n,
            export_to: None,
            med: 0,
            no_export: false,
        }
    }

    /// Attaches the NO_EXPORT community.
    pub fn with_no_export(mut self) -> OriginConfig {
        self.no_export = true;
        self
    }

    /// Restricts the announcement to the given neighbors.
    pub fn only_to(mut self, neighbors: impl IntoIterator<Item = NodeId>) -> OriginConfig {
        self.export_to = Some(neighbors.into_iter().collect());
        self
    }

    /// May the origin announce to `neighbor` under this config?
    pub fn allows(&self, neighbor: NodeId) -> bool {
        match &self.export_to {
            None => true,
            Some(set) => set.contains(&neighbor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_pref_orders_customer_peer_provider() {
        assert!(import_local_pref(Rel::Customer) > import_local_pref(Rel::MutualTransit));
        assert!(import_local_pref(Rel::MutualTransit) > import_local_pref(Rel::Peer));
        assert!(import_local_pref(Rel::Peer) > import_local_pref(Rel::Provider));
    }

    #[test]
    fn valley_free_matrix() {
        use Rel::*;
        // Self-originated: export everywhere.
        for to in [Customer, Peer, Provider, MutualTransit] {
            assert!(may_export(None, to));
        }
        // Customer-learned: export everywhere.
        for to in [Customer, Peer, Provider, MutualTransit] {
            assert!(may_export(Some(Customer), to));
        }
        // Peer-learned: only down to customers.
        assert!(may_export(Some(Peer), Customer));
        assert!(!may_export(Some(Peer), Peer));
        assert!(!may_export(Some(Peer), Provider));
        assert!(!may_export(Some(Peer), MutualTransit));
        // Provider-learned: only down to customers.
        assert!(may_export(Some(Provider), Customer));
        assert!(!may_export(Some(Provider), Peer));
        assert!(!may_export(Some(Provider), Provider));
        assert!(!may_export(Some(Provider), MutualTransit));
        // Fabric-learned: down and across the fabric, never upward.
        assert!(may_export(Some(MutualTransit), Customer));
        assert!(may_export(Some(MutualTransit), MutualTransit));
        assert!(!may_export(Some(MutualTransit), Peer));
        assert!(!may_export(Some(MutualTransit), Provider));
    }

    #[test]
    fn origin_config_builders() {
        assert_eq!(OriginConfig::plain().prepend, 0);
        assert_eq!(OriginConfig::prepended(3).prepend, 3);
        assert!(OriginConfig::plain().allows(NodeId(5)));
        let sel = OriginConfig::prepended(3).only_to([NodeId(1), NodeId(2)]);
        assert!(sel.allows(NodeId(1)));
        assert!(!sel.allows(NodeId(5)));
        assert!(!OriginConfig::plain().no_export);
        assert!(OriginConfig::prepended(2).with_no_export().no_export);
    }
}
