//! The BGP timing model — the calibration surface of the reproduction.
//!
//! Four knobs produce the paper's time scales (DESIGN.md §5 and §7):
//!
//! * **MRAI** per session, drawn uniformly from a band. Each advertisement
//!   to a neighbor for a prefix must wait `MRAI × U(0.75, 1.0)` since the
//!   last one — so every round of path exploration costs tens of seconds,
//!   which is where "~100 s median withdrawal convergence" (Figure 3) comes
//!   from.
//! * **Announcement processing delay** per hop: routers batch updates and
//!   run periodic scanners, so a *fresh* announcement still takes ~1-2 s per
//!   AS hop, stacking to the ~10 s median propagation at collector distance
//!   (Figure 4).
//! * **Withdrawal processing delay** per hop, slightly faster (withdrawals
//!   are not MRAI-limited in the classic configuration — WRATE off).
//! * **Link delay** comes from topology geography and is negligible against
//!   the above, as on the real Internet.

use bobw_event::rng::lognormal;
use bobw_event::{RngFactory, SimDuration};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::damping::DampingConfig;

/// Timing parameters for the BGP simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BgpTimingConfig {
    /// MRAI band (seconds); each session samples once, uniformly.
    pub mrai_min_s: f64,
    pub mrai_max_s: f64,
    /// Per-send MRAI jitter factor band (classic 0.75–1.0).
    pub mrai_jitter_lo: f64,
    pub mrai_jitter_hi: f64,
    /// Lognormal median/sigma of per-hop announcement processing delay (s).
    pub announce_proc_median_s: f64,
    pub announce_proc_sigma: f64,
    /// Lognormal median/sigma of per-hop withdrawal processing delay (s).
    pub withdraw_proc_median_s: f64,
    pub withdraw_proc_sigma: f64,
    /// Fraction of sessions that are "laggards" (overloaded or
    /// conservatively configured routers) whose MRAI is multiplied by
    /// `mrai_slow_multiplier`. Real collector feeds show a long convergence
    /// tail driven by such sessions (Figure 3's p90 ≈ 4× its median).
    pub mrai_slow_fraction: f64,
    /// MRAI multiplier for laggard sessions.
    pub mrai_slow_multiplier: f64,
    /// BGP hold time: how long after a silent link failure a router keeps
    /// treating the session (and its routes) as alive. The protocol default
    /// is 90 s; operators running BFD detect in well under a second.
    pub hold_time_s: f64,
    /// Route-flap damping (RFC 2439-style). `None` (default) = disabled,
    /// per modern operational guidance; see `crate::damping` for why
    /// enabling it hurts reactive-anycast.
    pub flap_damping: Option<DampingConfig>,
    /// Apply MRAI pacing to withdrawals too (per-peer update pacing of
    /// *all* updates — the classic router behaviour of the era in which the
    /// ~100 s/170 s withdrawal-convergence numbers the paper relies on were
    /// measured; Labovitz et al. call the alternative "WRATE off").
    /// Defaults to `true`; flipping it is an ablation knob (see the
    /// `ablation` bench).
    pub withdrawal_rate_limiting: bool,
}

impl Default for BgpTimingConfig {
    fn default() -> Self {
        BgpTimingConfig {
            mrai_min_s: 12.0,
            mrai_max_s: 55.0,
            mrai_jitter_lo: 0.75,
            mrai_jitter_hi: 1.0,
            mrai_slow_fraction: 0.12,
            mrai_slow_multiplier: 5.0,
            announce_proc_median_s: 1.6,
            announce_proc_sigma: 0.6,
            withdraw_proc_median_s: 2.2,
            withdraw_proc_sigma: 0.6,
            hold_time_s: 90.0,
            flap_damping: None,
            withdrawal_rate_limiting: true,
        }
    }
}

impl BgpTimingConfig {
    /// A config with all stochastic delays collapsed to fixed small values
    /// and no MRAI — converges in a handful of simulated seconds. For unit
    /// tests that assert routing *outcomes* rather than timing.
    pub fn instant() -> BgpTimingConfig {
        BgpTimingConfig {
            mrai_min_s: 0.0,
            mrai_max_s: 0.0,
            mrai_jitter_lo: 1.0,
            mrai_jitter_hi: 1.0,
            mrai_slow_fraction: 0.0,
            mrai_slow_multiplier: 1.0,
            announce_proc_median_s: 0.01,
            announce_proc_sigma: 0.0,
            withdraw_proc_median_s: 0.01,
            withdraw_proc_sigma: 0.0,
            hold_time_s: 90.0,
            flap_damping: None,
            withdrawal_rate_limiting: false,
        }
    }

    /// The hold time as a duration.
    pub fn hold_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.hold_time_s)
    }

    /// Samples the MRAI for one session (fixed for the session's lifetime,
    /// like a router configuration value).
    pub fn sample_session_mrai(&self, rng: &RngFactory, session_key: u64) -> SimDuration {
        if self.mrai_max_s <= 0.0 {
            return SimDuration::ZERO;
        }
        let mut s = rng.uniform_f64(
            "mrai-session",
            session_key,
            self.mrai_min_s,
            self.mrai_max_s,
        );
        if self.mrai_slow_fraction > 0.0
            && rng.uniform_f64("mrai-laggard", session_key, 0.0, 1.0) < self.mrai_slow_fraction
        {
            s *= self.mrai_slow_multiplier;
        }
        SimDuration::from_secs_f64(s)
    }

    /// Effective MRAI for one send (session value × jitter).
    pub fn jittered_mrai(&self, session_mrai: SimDuration, rng: &mut SmallRng) -> SimDuration {
        if session_mrai == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let f = if self.mrai_jitter_hi > self.mrai_jitter_lo {
            rng.gen_range(self.mrai_jitter_lo..self.mrai_jitter_hi)
        } else {
            self.mrai_jitter_lo
        };
        SimDuration::from_secs_f64(session_mrai.as_secs_f64() * f)
    }

    /// Per-hop processing delay before an announcement is sent.
    pub fn announce_proc_delay(&self, rng: &mut SmallRng) -> SimDuration {
        SimDuration::from_secs_f64(lognormal(
            rng,
            self.announce_proc_median_s,
            self.announce_proc_sigma,
        ))
    }

    /// Per-hop processing delay before a withdrawal is sent.
    pub fn withdraw_proc_delay(&self, rng: &mut SmallRng) -> SimDuration {
        SimDuration::from_secs_f64(lognormal(
            rng,
            self.withdraw_proc_median_s,
            self.withdraw_proc_sigma,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bands_are_sane() {
        let c = BgpTimingConfig::default();
        assert!(c.mrai_min_s < c.mrai_max_s);
        assert!(c.mrai_jitter_lo < c.mrai_jitter_hi);
        assert!(c.withdrawal_rate_limiting);
    }

    #[test]
    fn session_mrai_in_band_and_deterministic() {
        let c = BgpTimingConfig::default();
        let rng = RngFactory::new(1);
        let mut laggards = 0;
        for key in 0..1000 {
            let m = c.sample_session_mrai(&rng, key);
            let s = m.as_secs_f64();
            let in_normal_band = (c.mrai_min_s..c.mrai_max_s).contains(&s);
            let in_slow_band = (c.mrai_min_s * c.mrai_slow_multiplier
                ..c.mrai_max_s * c.mrai_slow_multiplier)
                .contains(&s);
            assert!(in_normal_band || in_slow_band, "{s}");
            if in_slow_band && !in_normal_band {
                laggards += 1;
            }
            assert_eq!(m, c.sample_session_mrai(&rng, key));
        }
        // Roughly the configured laggard fraction (loose bounds).
        assert!((40..=250).contains(&laggards), "{laggards}");
    }

    #[test]
    fn instant_config_has_no_mrai() {
        let c = BgpTimingConfig::instant();
        let rng = RngFactory::new(1);
        assert_eq!(c.sample_session_mrai(&rng, 0), SimDuration::ZERO);
        let mut r = rng.stream("x", 0);
        assert_eq!(
            c.jittered_mrai(SimDuration::ZERO, &mut r),
            SimDuration::ZERO
        );
        // Deterministic tiny processing delays.
        assert_eq!(c.announce_proc_delay(&mut r), SimDuration::from_millis(10));
        assert_eq!(c.withdraw_proc_delay(&mut r), SimDuration::from_millis(10));
    }

    #[test]
    fn jitter_shrinks_mrai() {
        let c = BgpTimingConfig::default();
        let mut r = RngFactory::new(2).stream("jitter", 0);
        let session = SimDuration::from_secs(30);
        for _ in 0..100 {
            let j = c.jittered_mrai(session, &mut r);
            let f = j.as_secs_f64() / 30.0;
            assert!((0.75..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn proc_delays_positive_and_heavy_tailed() {
        let c = BgpTimingConfig::default();
        let mut r = RngFactory::new(3).stream("proc", 0);
        let mut v: Vec<f64> = (0..2001)
            .map(|_| c.announce_proc_delay(&mut r).as_secs_f64())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((1.2..2.1).contains(&median), "median {median}");
        assert!(v[0] > 0.0);
        // Tail stretches well beyond the median (lognormal).
        assert!(v[(v.len() * 99) / 100] > 2.0 * median);
    }
}
