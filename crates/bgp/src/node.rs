//! Per-node BGP state machine: Adj-RIB-In, decision process, FIB, and the
//! per-neighbor send machinery (MRAI + processing-delay pacing).
//!
//! A node is one AS (or one CDN site). It holds every route each neighbor
//! has advertised (the Adj-RIB-In); path exploration then needs no special
//! code: when the best route is withdrawn, the decision process simply
//! falls back to the next-best *stale* entry and re-advertises it, and that
//! ghost dies only when its supplier sends its own withdrawal — the exact
//! dynamics behind the paper's Figure 3 convergence tail.
//!
//! # Memory layout
//!
//! Everything on the per-message hot path is integer-indexed. The RIB is a
//! [`FlatRib`]: prefixes intern to dense ids, candidates live in a slice
//! sorted by neighbor index, the Loc-RIB is a parallel slot. The
//! per-neighbor send machinery (`last_announce` / `last_sent` / pending)
//! is a flat `Vec<SendState>` indexed by prefix id — receiving one update
//! and re-exporting it to a neighbor does zero hash lookups. The only maps
//! left key *rare* state: flap damping (off by default) and origination.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

use bobw_event::{SimDuration, SimTime};
use bobw_net::{AsPath, Asn, FlatPrefixMap, NodeId, Prefix};
use bobw_topology::Rel;
use rand::rngs::SmallRng;

use crate::damping::DampState;
use crate::policy::{import_local_pref, may_export, OriginConfig};
use crate::rib::{cmp_selected, FlatRib, TieKey, SELF_TIE_KEY};
use crate::route::{BgpEvent, Message, NextHop, RouteAttrs, Selected, WireRoute};
use crate::timing::BgpTimingConfig;

/// Per-⟨neighbor, prefix⟩ send state, indexed by the node's dense prefix id.
#[derive(Debug, Clone, Copy, Default)]
struct SendState {
    /// Last time an *announcement* for the prefix was put on the wire.
    last_announce: Option<SimTime>,
    /// What this neighbor currently believes we advertised (`None` =
    /// withdrawn or never announced).
    last_sent: Option<WireRoute>,
    /// Coalesced outgoing message awaiting its send timer.
    pending: Option<Pending>,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    /// `Some` = update, `None` = withdraw.
    msg: Option<WireRoute>,
    /// Guard against superseded `Fire` events.
    gen: u64,
}

/// Per-neighbor session state.
#[derive(Debug)]
pub struct NeighborState {
    pub peer: NodeId,
    pub peer_asn: Asn,
    pub rel: Rel,
    pub delay: SimDuration,
    /// This session's configured MRAI (sampled once at setup).
    pub session_mrai: SimDuration,
    /// Is the session (link) currently up? Set false by link-failure
    /// injection; routes from a down neighbor are purged when the hold
    /// timer expires.
    up: bool,
    /// Does the data plane still forward over this adjacency? The abstract
    /// model keeps this locked to `up` (a dead session is a dead link).
    /// The message-level model splits them: graceful restart and half-open
    /// sessions lose the control plane while packets keep flowing.
    fwd_up: bool,
    /// Send state per prefix id, grown on demand.
    send: Vec<SendState>,
}

impl NeighborState {
    /// The send slot for prefix id `pidx`, growing the table on demand.
    fn send_slot(&mut self, pidx: usize) -> &mut SendState {
        if self.send.len() <= pidx {
            self.send.resize(pidx + 1, SendState::default());
        }
        &mut self.send[pidx]
    }
}

/// One AS-level BGP speaker.
pub struct BgpNode {
    pub id: NodeId,
    pub asn: Asn,
    neighbors: Vec<NeighborState>,
    /// `peer NodeId → neighbor index`, sorted by peer for binary search.
    nbr_lookup: Vec<(NodeId, u32)>,
    /// Adj-RIB-In + Loc-RIB (see [`FlatRib`]).
    rib: FlatRib,
    /// Flap-damping state per ⟨neighbor, prefix⟩ (only populated when
    /// damping is enabled in the timing config).
    damping: HashMap<(NodeId, Prefix), DampState>,
    fib: FlatPrefixMap<NextHop>,
    originated: BTreeMap<Prefix, OriginConfig>,
    gen_counter: u64,
    /// Reusable buffer for session expiry/restore sweeps (collect affected
    /// prefixes, sort by prefix value, re-decide) — no per-sweep allocation.
    scratch: Vec<(Prefix, u32)>,
}

impl BgpNode {
    pub fn new(id: NodeId, asn: Asn, neighbors: Vec<NeighborState>) -> BgpNode {
        let mut nbr_lookup: Vec<(NodeId, u32)> = neighbors
            .iter()
            .enumerate()
            .map(|(i, n)| (n.peer, i as u32))
            .collect();
        nbr_lookup.sort_unstable();
        BgpNode {
            id,
            asn,
            neighbors,
            nbr_lookup,
            rib: FlatRib::new(),
            damping: HashMap::new(),
            fib: FlatPrefixMap::new(),
            originated: BTreeMap::new(),
            gen_counter: 0,
            scratch: Vec::new(),
        }
    }

    /// Builds the neighbor state for a session, MRAI pre-sampled.
    pub fn neighbor_state(
        peer: NodeId,
        peer_asn: Asn,
        rel: Rel,
        delay: SimDuration,
        session_mrai: SimDuration,
    ) -> NeighborState {
        NeighborState {
            peer,
            peer_asn,
            rel,
            delay,
            session_mrai,
            up: true,
            fwd_up: true,
            send: Vec::new(),
        }
    }

    pub fn neighbors(&self) -> &[NeighborState] {
        &self.neighbors
    }

    /// The dense neighbor index for `peer`, if it is one of ours. The
    /// message-level session layer keys its per-session state by this
    /// index (parallel to [`BgpNode::neighbors`]).
    pub fn neighbor_index(&self, peer: NodeId) -> Option<usize> {
        self.nbr_pos(peer)
    }

    /// The neighbor index for `peer`, if it is one of ours.
    fn nbr_pos(&self, peer: NodeId) -> Option<usize> {
        self.nbr_lookup
            .binary_search_by_key(&peer, |&(p, _)| p)
            .ok()
            .map(|i| self.nbr_lookup[i].1 as usize)
    }

    /// The node's current best route for `prefix`.
    pub fn best(&self, prefix: &Prefix) -> Option<&Selected> {
        self.rib.best_at(self.rib.position(prefix)?)
    }

    /// All routes in the Adj-RIB-In for `prefix`, sorted by neighbor id
    /// (the order the historic `BTreeMap<NodeId, _>` storage iterated in).
    pub fn adj_in(&self, prefix: &Prefix) -> Vec<(NodeId, RouteAttrs)> {
        let Some(pidx) = self.rib.position(prefix) else {
            return Vec::new();
        };
        let mut v: Vec<(NodeId, RouteAttrs)> = self
            .rib
            .routes_at(pidx)
            .iter()
            .map(|&(n, a)| (self.neighbors[n as usize].peer, a))
            .collect();
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    }

    /// Longest-prefix-match forwarding lookup.
    pub fn fib_lookup(&self, addr: u32) -> Option<(Prefix, NextHop)> {
        self.fib.lookup(addr).map(|(p, nh)| (p, *nh))
    }

    /// Does this node currently originate `prefix`?
    pub fn originates(&self, prefix: &Prefix) -> bool {
        self.originated.contains_key(prefix)
    }

    /// All prefixes this node currently originates, in prefix order.
    /// Used by the experiment harness to withdraw everything on site
    /// failure ("the site withdraws its prefix announcements", §4).
    pub fn originated_prefixes(&self) -> Vec<Prefix> {
        self.originated.keys().copied().collect()
    }

    /// Starts originating `prefix` under `cfg`. Returns whether the best
    /// route changed (it does unless the node already originated it
    /// identically).
    pub fn originate(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        cfg: OriginConfig,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        self.originated.insert(prefix, cfg);
        let pidx = self.rib.intern(prefix);
        // Re-running the decision also refreshes exports if only the origin
        // config (e.g. prepend count) changed while best stays "self".
        let changed = self.run_decision(now, prefix, pidx, timing, rng, out);
        if !changed {
            self.refresh_exports(now, prefix, pidx, timing, rng, out);
        }
        changed
    }

    /// Stops originating `prefix` (site failure / withdrawal). The decision
    /// process falls back to whatever the Adj-RIB-In still holds — which may
    /// be a ghost route about to be withdrawn; that is the point.
    pub fn withdraw_origin(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        if self.originated.remove(&prefix).is_none() {
            return false;
        }
        let pidx = self.rib.intern(prefix);
        self.run_decision(now, prefix, pidx, timing, rng, out)
    }

    /// Is the session to `neighbor` up?
    pub fn session_is_up(&self, neighbor: NodeId) -> bool {
        self.nbr_pos(neighbor)
            .map(|i| self.neighbors[i].up)
            .unwrap_or(false)
    }

    /// Marks the session to `neighbor` down (link failure). No routes are
    /// purged yet — that happens when the hold timer expires — but nothing
    /// further is sent on the session and arriving messages are dropped.
    /// Returns `true` only on a real up→down transition, so callers can
    /// avoid scheduling a duplicate hold timer when a link is failed twice
    /// (e.g. a `SilentCrash` following a drill on the same site).
    pub fn fail_session(&mut self, neighbor: NodeId) -> bool {
        if let Some(idx) = self.nbr_pos(neighbor) {
            let nbr = &mut self.neighbors[idx];
            nbr.fwd_up = false;
            if nbr.up {
                nbr.up = false;
                for s in &mut nbr.send {
                    s.pending = None;
                }
                return true;
            }
        }
        false
    }

    /// Control-plane-only teardown (message-level model): the BGP session
    /// drops but packets keep forwarding over the adjacency. Used for
    /// graceful restart (forwarding preserved by design) and half-open
    /// sessions (the wire is fine, the session state is not). Same return
    /// contract as [`BgpNode::fail_session`].
    pub fn fail_session_control(&mut self, neighbor: NodeId) -> bool {
        if let Some(idx) = self.nbr_pos(neighbor) {
            let nbr = &mut self.neighbors[idx];
            if nbr.up {
                nbr.up = false;
                for s in &mut nbr.send {
                    s.pending = None;
                }
                return true;
            }
        }
        false
    }

    /// Does the data plane forward over the adjacency to `neighbor`?
    pub fn forwarding_is_up(&self, neighbor: NodeId) -> bool {
        self.nbr_pos(neighbor)
            .map(|i| self.neighbors[i].fwd_up)
            .unwrap_or(false)
    }

    /// Message-level bootstrap: every session starts administratively down
    /// (establishment will bring it up), with forwarding untouched. Called
    /// before anything is announced, so there is nothing to purge.
    pub fn quiesce_sessions(&mut self) {
        for nbr in &mut self.neighbors {
            nbr.up = false;
        }
    }

    /// The prefixes currently learned from `neighbor`, sorted. The
    /// graceful-restart machinery snapshots this as the stale set.
    pub fn prefixes_from(&self, neighbor: NodeId) -> Vec<Prefix> {
        let Some(idx) = self.nbr_pos(neighbor) else {
            return Vec::new();
        };
        let mut buf = Vec::new();
        self.rib.prefixes_from_into(idx as u32, &mut buf);
        let mut prefixes: Vec<Prefix> = buf.into_iter().map(|(p, _)| p).collect();
        prefixes.sort_unstable();
        prefixes
    }

    /// Graceful-restart stale sweep: the restart window closed and these
    /// prefixes were never re-advertised by `neighbor` — purge the leftover
    /// candidates and re-decide. Unlike [`BgpNode::expire_session`] this
    /// runs against a live (re-established) session and touches only the
    /// listed prefixes. Returns the prefixes whose best route changed.
    pub fn purge_stale_from(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        stale: &[Prefix],
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> Vec<Prefix> {
        let Some(idx) = self.nbr_pos(neighbor) else {
            return Vec::new();
        };
        let mut changed = Vec::new();
        for &prefix in stale {
            let Some(pidx) = self.rib.position(&prefix) else {
                continue;
            };
            if !self.rib.remove_at(pidx, idx as u32) {
                continue; // already gone (withdrawn in the meantime)
            }
            if self.removal_keeps_best(pidx, neighbor) && timing.flap_damping.is_none() {
                continue;
            }
            if self.run_decision(now, prefix, pidx, timing, rng, out) {
                changed.push(prefix);
            }
        }
        changed
    }

    /// Hold timer expiry: if the session is still down, purge every route
    /// learned from `neighbor` and rerun the decision process for the
    /// affected prefixes. Returns the prefixes whose best route changed.
    pub fn expire_session(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> Vec<Prefix> {
        let idx = match self.nbr_pos(neighbor) {
            Some(idx) if !self.neighbors[idx].up => idx,
            _ => return Vec::new(), // session recovered or unknown: no-op
        };
        // Collect-then-sort into the reusable scratch buffer: the per-prefix
        // decision below draws timing jitter from `rng`, and iteration
        // order must not depend on storage order (prefix ids intern in
        // arrival order, which differs across techniques and runs).
        let mut affected = std::mem::take(&mut self.scratch);
        affected.clear();
        self.rib.prefixes_from_into(idx as u32, &mut affected);
        affected.sort_unstable();
        let incremental = timing.flap_damping.is_none();
        let mut changed = Vec::new();
        for &(prefix, pidx) in &affected {
            self.rib.remove_at(pidx as usize, idx as u32);
            if incremental && self.removal_keeps_best(pidx as usize, neighbor) {
                continue; // removed a non-best candidate: decision stands
            }
            if self.run_decision(now, prefix, pidx as usize, timing, rng, out) {
                changed.push(prefix);
            }
        }
        affected.clear();
        self.scratch = affected;
        // The peer also lost everything we ever sent it. (No pending sends
        // survive here: they were dropped at failure time and none queue
        // while the session is down.)
        self.neighbors[idx].send.clear();
        changed
    }

    /// Brings the session to `neighbor` back up and re-exports the full
    /// table (BGP session establishment resends everything).
    pub fn restore_session(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let Some(idx) = self.nbr_pos(neighbor) else {
            return;
        };
        {
            let nbr = &mut self.neighbors[idx];
            if nbr.up {
                return;
            }
            nbr.up = true;
            nbr.fwd_up = true;
            nbr.send.clear();
        }
        // Sorted by prefix value for the same reason as in
        // `expire_session`: each export draws MRAI jitter from `rng`.
        let mut prefixes = std::mem::take(&mut self.scratch);
        prefixes.clear();
        self.rib.prefixes_with_best_into(&mut prefixes);
        prefixes.sort_unstable();
        for &(prefix, pidx) in &prefixes {
            let desired = self.desired_export(prefix, pidx as usize, idx);
            self.queue_export(now, prefix, pidx as usize, idx, desired, timing, rng, out);
        }
        prefixes.clear();
        self.scratch = prefixes;
    }

    /// Processes one incoming message. Returns whether the best route for
    /// the message's prefix changed.
    pub fn receive(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: Message,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        let prefix = msg.prefix();
        // A message arriving over a failed link is lost.
        let idx = match self.nbr_pos(from) {
            Some(idx) if self.neighbors[idx].up => idx,
            _ => return false,
        };
        // Flap damping: every received change to this neighbor's route
        // accrues penalty; suppression hides the candidate from the
        // decision until the penalty decays.
        if let Some(dcfg) = &timing.flap_damping {
            let state = self
                .damping
                .entry((from, prefix))
                .or_insert_with(|| DampState::new(now));
            let withdrawal = matches!(msg, Message::Withdraw { .. });
            let was_suppressed = state.is_suppressed(dcfg, now);
            let suppressed = state.flap(dcfg, now, withdrawal);
            if suppressed && !was_suppressed {
                // Schedule the reuse re-decision.
                let wait = state.time_to_reuse(dcfg, now) + SimDuration::from_millis(1);
                out.push((
                    wait,
                    BgpEvent::DampingReuse {
                        node: self.id,
                        neighbor: from,
                        prefix,
                    },
                ));
            }
        }
        let pidx = self.rib.intern(prefix);
        // With damping off, a single-candidate change has a closed-form
        // effect on the decision (see `incremental_update`), so the full
        // candidate scan runs only when the incumbent itself is touched.
        let incremental = timing.flap_damping.is_none();
        match msg {
            Message::Update { route, .. } => {
                if route.path.contains(self.asn) {
                    // Loop detection: discard, and drop any previous route
                    // from this neighbor (an update implicitly replaces it).
                    self.rib.remove_at(pidx, idx as u32);
                    if incremental && self.removal_keeps_best(pidx, from) {
                        return false;
                    }
                } else {
                    let rel = self.neighbors[idx].rel;
                    let attrs = RouteAttrs {
                        path: route.path,
                        local_pref: import_local_pref(rel),
                        med: route.med,
                        origin: route.origin,
                        no_export: route.no_export,
                    };
                    self.rib.insert_at(pidx, idx as u32, attrs);
                    if incremental {
                        if let Some(changed) =
                            self.incremental_update(now, prefix, pidx, idx, attrs, timing, rng, out)
                        {
                            return changed;
                        }
                    }
                }
            }
            Message::Withdraw { .. } => {
                self.rib.remove_at(pidx, idx as u32);
                if incremental && self.removal_keeps_best(pidx, from) {
                    return false;
                }
            }
        }
        self.run_decision(now, prefix, pidx, timing, rng, out)
    }

    /// A damping reuse timer fired: if the candidate's penalty has decayed
    /// below the reuse threshold, re-run the decision so it competes again;
    /// if it was re-penalized in the meantime, re-arm the timer. Returns
    /// whether the best route changed.
    pub fn damping_reuse(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        prefix: Prefix,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        let Some(dcfg) = &timing.flap_damping else {
            return false;
        };
        let Some(state) = self.damping.get(&(neighbor, prefix)) else {
            return false;
        };
        if state.is_suppressed(dcfg, now) {
            let wait = state.time_to_reuse(dcfg, now) + SimDuration::from_millis(1);
            out.push((
                wait,
                BgpEvent::DampingReuse {
                    node: self.id,
                    neighbor,
                    prefix,
                },
            ));
            return false;
        }
        let pidx = self.rib.intern(prefix);
        self.run_decision(now, prefix, pidx, timing, rng, out)
    }

    /// A pending send timer fired; emit the coalesced message if it is
    /// still current.
    pub fn fire(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        prefix: Prefix,
        gen: u64,
        timing: &BgpTimingConfig,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let Some(idx) = self.nbr_pos(neighbor) else {
            return;
        };
        let Some(pidx) = self.rib.position(&prefix) else {
            return; // nothing was ever queued for an unknown prefix
        };
        let nbr = &mut self.neighbors[idx];
        if !nbr.up {
            return; // link died while the timer was pending
        }
        let Some(slot) = nbr.send.get_mut(pidx) else {
            return;
        };
        match slot.pending {
            Some(p) if p.gen == gen => {}
            _ => return, // superseded or cancelled
        }
        let p = slot.pending.take().expect("checked above");
        let msg = match p.msg {
            Some(w) => {
                slot.last_announce = Some(now);
                slot.last_sent = Some(w);
                Message::Update { prefix, route: w }
            }
            None => {
                // Under per-peer update pacing (WRATE on) a withdrawal also
                // restarts the pacing clock for the session, like any update.
                if timing.withdrawal_rate_limiting {
                    slot.last_announce = Some(now);
                }
                slot.last_sent = None;
                Message::Withdraw { prefix }
            }
        };
        out.push((
            nbr.delay,
            BgpEvent::Deliver {
                to: nbr.peer,
                from: self.id,
                msg,
            },
        ));
    }

    /// Re-runs the decision process for `prefix`; on change, updates the
    /// Loc-RIB and FIB and queues per-neighbor exports. Returns whether the
    /// best route changed.
    #[allow(clippy::too_many_arguments)]
    fn run_decision(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        pidx: usize,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        let new_best = self.compute_best(now, prefix, pidx, timing);
        if new_best.as_ref() == self.rib.best_at(pidx) {
            return false;
        }
        self.commit_best(now, prefix, pidx, new_best, timing, rng, out);
        true
    }

    /// Installs an already-decided best route: FIB, Loc-RIB, exports.
    #[allow(clippy::too_many_arguments)]
    fn commit_best(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        pidx: usize,
        new_best: Option<Selected>,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        match &new_best {
            Some(sel) => {
                self.fib.insert(prefix, sel.next_hop());
            }
            None => {
                self.fib.remove(&prefix);
            }
        }
        self.rib.set_best_at(pidx, new_best);
        self.refresh_exports(now, prefix, pidx, timing, rng, out);
    }

    /// After removing the candidate from `from` at `pidx`: is the current
    /// best provably still the decision outcome? True when the incumbent
    /// was not supplied by `from` (removing a non-minimum element cannot
    /// change the minimum of a strict total order). Only valid with flap
    /// damping off — suppression states can flip with the mere passage of
    /// time, invalidating the stored decision.
    fn removal_keeps_best(&self, pidx: usize, from: NodeId) -> bool {
        match self.rib.best_at(pidx) {
            Some(best) => best.from != Some(from),
            None => true,
        }
    }

    /// Incremental decision after inserting `attrs` from neighbor `idx`:
    /// when the incumbent came from a *different* supplier, the new outcome
    /// is simply `min(incumbent, candidate)` under `cmp_selected`'s strict
    /// total order, so the full candidate scan can be skipped. Returns
    /// `None` when only a full recomputation is correct (no incumbent, or
    /// the incumbent's own supplier changed). Only valid with flap damping
    /// off (see [`Self::removal_keeps_best`]).
    #[allow(clippy::too_many_arguments)]
    fn incremental_update(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        pidx: usize,
        idx: usize,
        attrs: RouteAttrs,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> Option<bool> {
        let peer = self.neighbors[idx].peer;
        let key: TieKey = (1, self.neighbors[idx].peer_asn, peer);
        let best = *self.rib.best_at(pidx)?;
        if best.from == Some(peer) {
            return None;
        }
        let cur_key: TieKey = match best.from {
            None => SELF_TIE_KEY,
            Some(s) => (1, self.neighbors[self.nbr_pos(s)?].peer_asn, s),
        };
        let cand = Selected {
            from: Some(peer),
            attrs,
        };
        if cmp_selected(&cand, key, &best, cur_key) == Ordering::Less {
            self.commit_best(now, prefix, pidx, Some(cand), timing, rng, out);
            Some(true)
        } else {
            Some(false)
        }
    }

    /// Recomputes the desired export of `prefix` toward every neighbor and
    /// queues any change through the send machinery.
    ///
    /// The common case — the best route was learned from a neighbor — has a
    /// receiver-independent export form (the prepended path is the same for
    /// everyone; only split horizon and Gao–Rexford gating vary), so the
    /// path composition and supplier-relation lookup are hoisted out of the
    /// per-neighbor loop rather than re-run by [`Self::desired_export`] for
    /// each receiver.
    fn refresh_exports(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        pidx: usize,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        // (supplier, supplier relation, wire form) for a learned best route
        // that is exportable at all; `None` falls back to the per-neighbor
        // path (origination, NO_EXPORT, or no best route).
        let learned: Option<(NodeId, Option<Rel>, WireRoute)> = match self.rib.best_at(pidx) {
            Some(best) => match best.from {
                Some(supplier) if !best.attrs.no_export => {
                    let supplier_rel = self.nbr_pos(supplier).map(|i| self.neighbors[i].rel);
                    Some((
                        supplier,
                        supplier_rel,
                        WireRoute {
                            path: best.attrs.path.prepended(self.asn, 1),
                            med: 0,
                            origin: best.attrs.origin,
                            no_export: false,
                        },
                    ))
                }
                _ => None,
            },
            None => None,
        };
        for idx in 0..self.neighbors.len() {
            let desired = match &learned {
                Some((supplier, supplier_rel, wire)) => {
                    let n = &self.neighbors[idx];
                    if !n.up
                        || n.peer == *supplier
                        || supplier_rel.is_none()
                        || !may_export(*supplier_rel, n.rel)
                    {
                        None
                    } else {
                        Some(*wire)
                    }
                }
                None => self.desired_export(prefix, pidx, idx),
            };
            self.queue_export(now, prefix, pidx, idx, desired, timing, rng, out);
        }
    }

    /// What should currently be advertised to neighbor `idx` for `prefix`?
    fn desired_export(&self, prefix: Prefix, pidx: usize, idx: usize) -> Option<WireRoute> {
        if !self.neighbors[idx].up {
            return None;
        }
        let best = self.rib.best_at(pidx)?;
        let to_rel = self.neighbors[idx].rel;
        match best.from {
            None => {
                let cfg = self
                    .originated
                    .get(&prefix)
                    .expect("self-originated best implies origin config");
                if !cfg.allows(self.neighbors[idx].peer) {
                    return None;
                }
                Some(WireRoute {
                    path: AsPath::originate(self.asn, cfg.prepend),
                    med: cfg.med,
                    origin: self.id,
                    no_export: cfg.no_export,
                })
            }
            Some(learned_from) => {
                // NO_EXPORT: use the route, advertise it to nobody.
                if best.attrs.no_export {
                    return None;
                }
                // Split horizon: echoing a route back to its supplier is
                // pointless (the supplier's loop detection discards it).
                if learned_from == self.neighbors[idx].peer {
                    return None;
                }
                let lf_rel = self.neighbors[self.nbr_pos(learned_from)?].rel;
                if !may_export(Some(lf_rel), to_rel) {
                    return None;
                }
                Some(WireRoute {
                    path: best.attrs.path.prepended(self.asn, 1),
                    med: 0,
                    origin: best.attrs.origin,
                    no_export: false,
                })
            }
        }
    }

    /// Coalesces `desired` into the per-neighbor pending slot and schedules
    /// a send timer honoring MRAI (announcements) or the withdrawal
    /// processing delay.
    #[allow(clippy::too_many_arguments)]
    fn queue_export(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        pidx: usize,
        idx: usize,
        desired: Option<WireRoute>,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let node_id = self.id;
        self.gen_counter += 1;
        let gen = self.gen_counter;
        let nbr = &mut self.neighbors[idx];
        if !nbr.up {
            // Nothing can be sent on a failed session; pending state was
            // cleared at failure time.
            return;
        }
        let peer = nbr.peer;
        let session_mrai = nbr.session_mrai;
        let slot = nbr.send_slot(pidx);

        let effective: Option<&WireRoute> = match &slot.pending {
            Some(p) => p.msg.as_ref(),
            None => slot.last_sent.as_ref(),
        };
        if desired.as_ref() == effective {
            return;
        }
        // Flapped back to what is already on the wire: cancel the pending
        // correction instead of sending a redundant message.
        if slot.pending.is_some() && desired.as_ref() == slot.last_sent.as_ref() {
            slot.pending = None;
            return;
        }

        let rate_limited = desired.is_some() || timing.withdrawal_rate_limiting;
        let proc = if desired.is_some() {
            timing.announce_proc_delay(rng)
        } else {
            timing.withdraw_proc_delay(rng)
        };
        let mut fire_delay = proc;
        if rate_limited {
            if let Some(last) = slot.last_announce {
                let mrai = timing.jittered_mrai(session_mrai, rng);
                let ready = last + mrai;
                if ready > now + proc {
                    fire_delay = ready.since(now);
                }
            }
        }
        slot.pending = Some(Pending { msg: desired, gen });
        out.push((
            fire_delay,
            BgpEvent::Fire {
                node: node_id,
                neighbor: peer,
                prefix,
                gen,
            },
        ));
    }

    fn compute_best(
        &self,
        now: SimTime,
        prefix: Prefix,
        pidx: usize,
        timing: &BgpTimingConfig,
    ) -> Option<Selected> {
        let mut best: Option<(Selected, TieKey)> = None;
        if self.originated.contains_key(&prefix) {
            best = Some((
                Selected {
                    from: None,
                    attrs: RouteAttrs {
                        path: AsPath::empty(),
                        local_pref: u32::MAX,
                        med: 0,
                        origin: self.id,
                        no_export: false,
                    },
                },
                SELF_TIE_KEY,
            ));
        }
        // Candidate iteration order (neighbor index) cannot influence the
        // outcome: `cmp_selected` is a strict total order over candidates
        // from distinct neighbors.
        for &(nbr, attrs) in self.rib.routes_at(pidx) {
            let n = &self.neighbors[nbr as usize];
            // Dampened candidates are invisible to the decision.
            if let Some(dcfg) = &timing.flap_damping {
                if let Some(state) = self.damping.get(&(n.peer, prefix)) {
                    if state.is_suppressed(dcfg, now) {
                        continue;
                    }
                }
            }
            let cand = Selected {
                from: Some(n.peer),
                attrs,
            };
            let key: TieKey = (1, n.peer_asn, n.peer);
            best = match best {
                None => Some((cand, key)),
                Some((cur, cur_key)) => {
                    if cmp_selected(&cand, key, &cur, cur_key) == Ordering::Less {
                        Some((cand, key))
                    } else {
                        Some((cur, cur_key))
                    }
                }
            };
        }
        best.map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_event::RngFactory;

    fn wire(path: &[u32], origin: NodeId) -> WireRoute {
        WireRoute {
            path: AsPath::from_hops(path.iter().map(|a| Asn(*a)).collect()),
            med: 0,
            origin,
            no_export: false,
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// A node with three neighbors: n1 customer, n2 peer, n3 provider.
    fn test_node() -> BgpNode {
        let mk = |peer: u32, asn: u32, rel: Rel| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                rel,
                SimDuration::from_millis(5),
                SimDuration::ZERO,
            )
        };
        BgpNode::new(
            NodeId(0),
            Asn(100),
            vec![
                mk(1, 101, Rel::Customer),
                mk(2, 102, Rel::Peer),
                mk(3, 103, Rel::Provider),
            ],
        )
    }

    fn ctx() -> (BgpTimingConfig, SmallRng) {
        (
            BgpTimingConfig::instant(),
            RngFactory::new(1).stream("test", 0),
        )
    }

    #[test]
    fn customer_route_beats_shorter_peer_route() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // Long customer path vs short peer path: customer wins (LOCAL_PREF).
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 55, 56, 57], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().from, Some(NodeId(1)));
    }

    #[test]
    fn shorter_path_wins_at_equal_pref() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // Two peer-ish routes... use provider for both: n3 provider short,
        // then replace with customer comparisons. Simplest: two updates from
        // the same class need two neighbors of same rel; use peer n2 and
        // provider n3 -> peer wins regardless. Instead test length within
        // one neighbor by replacement:
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 8, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().attrs.path.len(), 3);
        // Same neighbor advertises a shorter path: replaces, still best.
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().attrs.path.len(), 2);
    }

    #[test]
    fn prepended_path_loses_to_plain_at_same_pref() {
        // Two providers; one path is prepended. The plain one wins. This is
        // the mechanism proactive-prepending relies on for control.
        let mk = |peer: u32, asn: u32| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                Rel::Provider,
                SimDuration::from_millis(5),
                SimDuration::ZERO,
            )
        };
        let mut n = BgpNode::new(NodeId(0), Asn(100), vec![mk(1, 101), mk(2, 102)]);
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 47065, 47065, 47065, 47065], NodeId(8)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 47065], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        let best = n.best(&pre).unwrap();
        assert_eq!(best.from, Some(NodeId(2)));
        assert_eq!(best.attrs.origin, NodeId(9));
    }

    #[test]
    fn loop_detection_discards_and_replaces() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert!(n.best(&pre).is_some());
        // Same neighbor now advertises a path containing our ASN: the old
        // route must be dropped too (implicit replacement), leaving nothing.
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 100, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert!(n.best(&pre).is_none());
    }

    #[test]
    fn withdrawal_falls_back_to_stale_alternative() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        n.receive(
            SimTime::ZERO,
            NodeId(3),
            Message::Update {
                prefix: pre,
                route: wire(&[103, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().from, Some(NodeId(1)));
        // Withdraw the best: path exploration selects the (possibly stale)
        // provider route rather than dropping the prefix.
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Withdraw { prefix: pre },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().from, Some(NodeId(3)));
        n.receive(
            SimTime::ZERO,
            NodeId(3),
            Message::Withdraw { prefix: pre },
            &t,
            &mut rng,
            &mut out,
        );
        assert!(n.best(&pre).is_none());
        assert!(n.fib_lookup(pre.first_addr()).is_none());
    }

    #[test]
    fn origination_beats_everything_and_exports() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        out.clear();
        assert!(n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out
        ));
        assert_eq!(n.best(&pre).unwrap().from, None);
        assert_eq!(n.fib_lookup(pre.addr_at(1)).unwrap().1, NextHop::Local);
        // Export queued to all three neighbors.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn valley_free_export_blocks_peer_routes_upward() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // Route learned from peer n2: export only to customer n1.
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        // Fire all pending sends and inspect targets.
        let fires: Vec<BgpEvent> = out.drain(..).map(|(_, e)| e).collect();
        let mut deliver_targets = Vec::new();
        for ev in fires {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver { to, msg, .. } = e {
                        assert!(matches!(msg, Message::Update { .. }));
                        deliver_targets.push(to);
                    }
                }
            }
        }
        assert_eq!(deliver_targets, vec![NodeId(1)]);
    }

    #[test]
    fn selective_export_restricts_targets() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        let cfg = OriginConfig::plain().only_to([NodeId(2)]);
        n.originate(SimTime::ZERO, pre, cfg, &t, &mut rng, &mut out);
        let mut deliver_targets = Vec::new();
        for (_, ev) in out.drain(..) {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver { to, .. } = e {
                        deliver_targets.push(to);
                    }
                }
            }
        }
        assert_eq!(deliver_targets, vec![NodeId(2)]);
    }

    #[test]
    fn prepend_config_lengthens_exported_path() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::prepended(3),
            &t,
            &mut rng,
            &mut out,
        );
        let mut paths = Vec::new();
        for (_, ev) in out.drain(..) {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver {
                        msg: Message::Update { route, .. },
                        ..
                    } = e
                    {
                        paths.push(route.path);
                    }
                }
            }
        }
        assert_eq!(paths.len(), 3);
        for path in paths {
            assert_eq!(path.len(), 4); // own ASN once + 3 prepends
            assert_eq!(path.distinct_len(), 1);
            assert_eq!(path.origin(), Some(Asn(100)));
        }
    }

    #[test]
    fn stale_fire_generation_is_noop() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        let first_fires: Vec<BgpEvent> = out.drain(..).map(|(_, e)| e).collect();
        // Withdraw before timers fire: pending entries are replaced.
        n.withdraw_origin(SimTime::ZERO, pre, &t, &mut rng, &mut out);
        // Old generation Fire events must now produce nothing.
        for ev in first_fires {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                assert!(sent.is_empty(), "stale fire produced {sent:?}");
            }
        }
        // And the coalesced pending state is "nothing to send": the node
        // never announced, so withdraw+announce cancel to silence.
        let mut sent = Vec::new();
        for (_, ev) in out.drain(..) {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
            }
        }
        assert!(
            sent.is_empty(),
            "announce+withdraw before any send must coalesce to nothing: {sent:?}"
        );
    }

    #[test]
    fn update_replaces_pending_update_coalesced() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::prepended(2),
            &t,
            &mut rng,
            &mut out,
        );
        // Fire everything; each neighbor must receive exactly ONE update,
        // the latest (prepended) one.
        let mut received: HashMap<NodeId, Vec<Message>> = HashMap::new();
        let events: Vec<BgpEvent> = out.drain(..).map(|(_, e)| e).collect();
        for ev in events {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver { to, msg, .. } = e {
                        received.entry(to).or_default().push(msg);
                    }
                }
            }
        }
        for (to, msgs) in received {
            assert_eq!(msgs.len(), 1, "neighbor {to} got {msgs:?}");
            match &msgs[0] {
                Message::Update { route, .. } => assert_eq!(route.path.len(), 3),
                other => panic!("expected update, got {other:?}"),
            }
        }
    }

    #[test]
    fn mrai_paces_second_announcement() {
        let mk = |peer: u32, asn: u32| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                Rel::Customer,
                SimDuration::from_millis(5),
                SimDuration::from_secs(30),
            )
        };
        let mut n = BgpNode::new(NodeId(0), Asn(100), vec![mk(1, 101)]);
        let mut t = BgpTimingConfig::instant();
        t.mrai_min_s = 30.0;
        t.mrai_max_s = 30.0;
        let mut rng = RngFactory::new(1).stream("test", 0);
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // First announcement: fires after the (tiny) proc delay.
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        let (d1, ev1) = out.remove(0);
        assert!(d1 < SimDuration::from_secs(1));
        if let BgpEvent::Fire {
            neighbor,
            prefix,
            gen,
            ..
        } = ev1
        {
            n.fire(
                SimTime::ZERO + d1,
                neighbor,
                prefix,
                gen,
                &t,
                &mut Vec::new(),
            );
        }
        // Second announcement shortly after: must wait out the MRAI.
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        out.clear();
        n.originate(now, pre, OriginConfig::prepended(1), &t, &mut rng, &mut out);
        let (d2, _) = out[0];
        let fire_at = now + d2;
        // last announce ≈ d1; earliest allowed ≈ d1 + 0.75*30 = ~22.5s.
        assert!(
            fire_at >= SimTime::ZERO + SimDuration::from_secs_f64(22.0),
            "fired too early at {fire_at}"
        );
    }

    #[test]
    fn withdrawal_not_mrai_paced_by_default() {
        let mk = |peer: u32, asn: u32| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                Rel::Customer,
                SimDuration::from_millis(5),
                SimDuration::from_secs(30),
            )
        };
        let mut n = BgpNode::new(NodeId(0), Asn(100), vec![mk(1, 101)]);
        let mut t = BgpTimingConfig::instant();
        t.mrai_min_s = 30.0;
        t.mrai_max_s = 30.0;
        let mut rng = RngFactory::new(1).stream("test", 0);
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        let (d1, ev1) = out.remove(0);
        if let BgpEvent::Fire {
            neighbor,
            prefix,
            gen,
            ..
        } = ev1
        {
            n.fire(
                SimTime::ZERO + d1,
                neighbor,
                prefix,
                gen,
                &t,
                &mut Vec::new(),
            );
        }
        out.clear();
        // Withdraw right after the announcement went out: not rate limited.
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        n.withdraw_origin(now, pre, &t, &mut rng, &mut out);
        let (d2, _) = out[0];
        assert!(d2 < SimDuration::from_secs(1), "withdraw delayed {d2}");
    }
}
