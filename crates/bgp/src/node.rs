//! Per-node BGP state machine: Adj-RIB-In, decision process, FIB, and the
//! per-neighbor send machinery (MRAI + processing-delay pacing).
//!
//! A node is one AS (or one CDN site). It holds every route each neighbor
//! has advertised (the Adj-RIB-In); path exploration then needs no special
//! code: when the best route is withdrawn, the decision process simply
//! falls back to the next-best *stale* entry and re-advertises it, and that
//! ghost dies only when its supplier sends its own withdrawal — the exact
//! dynamics behind the paper's Figure 3 convergence tail.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

use bobw_event::{SimDuration, SimTime};
use bobw_net::{AsPath, Asn, NodeId, Prefix, PrefixTrie};
use bobw_topology::Rel;
use rand::rngs::SmallRng;

use crate::damping::DampState;
use crate::policy::{import_local_pref, may_export, OriginConfig};
use crate::route::{BgpEvent, Message, NextHop, RouteAttrs, Selected, WireRoute};
use crate::timing::BgpTimingConfig;

/// Per-neighbor session state.
#[derive(Debug)]
pub struct NeighborState {
    pub peer: NodeId,
    pub peer_asn: Asn,
    pub rel: Rel,
    pub delay: SimDuration,
    /// This session's configured MRAI (sampled once at setup).
    pub session_mrai: SimDuration,
    /// Is the session (link) currently up? Set false by link-failure
    /// injection; routes from a down neighbor are purged when the hold
    /// timer expires.
    up: bool,
    /// Last time an *announcement* for a prefix was put on the wire.
    last_announce: HashMap<Prefix, SimTime>,
    /// What this neighbor currently believes we advertised (absent =
    /// withdrawn or never announced).
    last_sent: HashMap<Prefix, WireRoute>,
    /// Coalesced outgoing message awaiting its send timer.
    pending: HashMap<Prefix, Pending>,
}

#[derive(Debug)]
struct Pending {
    /// `Some` = update, `None` = withdraw.
    msg: Option<WireRoute>,
    /// Guard against superseded `Fire` events.
    gen: u64,
}

/// One AS-level BGP speaker.
pub struct BgpNode {
    pub id: NodeId,
    pub asn: Asn,
    neighbors: Vec<NeighborState>,
    nbr_index: HashMap<NodeId, usize>,
    adj_in: HashMap<Prefix, BTreeMap<NodeId, RouteAttrs>>,
    /// Flap-damping state per ⟨neighbor, prefix⟩ (only populated when
    /// damping is enabled in the timing config).
    damping: HashMap<(NodeId, Prefix), DampState>,
    best: HashMap<Prefix, Selected>,
    fib: PrefixTrie<NextHop>,
    originated: BTreeMap<Prefix, OriginConfig>,
    gen_counter: u64,
}

impl BgpNode {
    pub fn new(id: NodeId, asn: Asn, neighbors: Vec<NeighborState>) -> BgpNode {
        let nbr_index = neighbors
            .iter()
            .enumerate()
            .map(|(i, n)| (n.peer, i))
            .collect();
        BgpNode {
            id,
            asn,
            neighbors,
            nbr_index,
            adj_in: HashMap::new(),
            damping: HashMap::new(),
            best: HashMap::new(),
            fib: PrefixTrie::new(),
            originated: BTreeMap::new(),
            gen_counter: 0,
        }
    }

    /// Builds the neighbor state for a session, MRAI pre-sampled.
    pub fn neighbor_state(
        peer: NodeId,
        peer_asn: Asn,
        rel: Rel,
        delay: SimDuration,
        session_mrai: SimDuration,
    ) -> NeighborState {
        NeighborState {
            peer,
            peer_asn,
            rel,
            delay,
            session_mrai,
            up: true,
            last_announce: HashMap::new(),
            last_sent: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    pub fn neighbors(&self) -> &[NeighborState] {
        &self.neighbors
    }

    /// The node's current best route for `prefix`.
    pub fn best(&self, prefix: &Prefix) -> Option<&Selected> {
        self.best.get(prefix)
    }

    /// All routes in the Adj-RIB-In for `prefix` (neighbor → attrs).
    pub fn adj_in(&self, prefix: &Prefix) -> Option<&BTreeMap<NodeId, RouteAttrs>> {
        self.adj_in.get(prefix)
    }

    /// Longest-prefix-match forwarding lookup.
    pub fn fib_lookup(&self, addr: u32) -> Option<(Prefix, NextHop)> {
        self.fib.lookup(addr).map(|(p, nh)| (p, *nh))
    }

    /// Does this node currently originate `prefix`?
    pub fn originates(&self, prefix: &Prefix) -> bool {
        self.originated.contains_key(prefix)
    }

    /// All prefixes this node currently originates, in prefix order.
    /// Used by the experiment harness to withdraw everything on site
    /// failure ("the site withdraws its prefix announcements", §4).
    pub fn originated_prefixes(&self) -> Vec<Prefix> {
        self.originated.keys().copied().collect()
    }

    /// Starts originating `prefix` under `cfg`. Returns whether the best
    /// route changed (it does unless the node already originated it
    /// identically).
    pub fn originate(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        cfg: OriginConfig,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        self.originated.insert(prefix, cfg);
        // Re-running the decision also refreshes exports if only the origin
        // config (e.g. prepend count) changed while best stays "self".
        let changed = self.run_decision(now, prefix, timing, rng, out);
        if !changed {
            self.refresh_exports(now, prefix, timing, rng, out);
        }
        changed
    }

    /// Stops originating `prefix` (site failure / withdrawal). The decision
    /// process falls back to whatever the Adj-RIB-In still holds — which may
    /// be a ghost route about to be withdrawn; that is the point.
    pub fn withdraw_origin(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        if self.originated.remove(&prefix).is_none() {
            return false;
        }
        self.run_decision(now, prefix, timing, rng, out)
    }

    /// Is the session to `neighbor` up?
    pub fn session_is_up(&self, neighbor: NodeId) -> bool {
        self.nbr_index
            .get(&neighbor)
            .map(|i| self.neighbors[*i].up)
            .unwrap_or(false)
    }

    /// Marks the session to `neighbor` down (link failure). No routes are
    /// purged yet — that happens when the hold timer expires — but nothing
    /// further is sent on the session and arriving messages are dropped.
    /// Returns `true` only on a real up→down transition, so callers can
    /// avoid scheduling a duplicate hold timer when a link is failed twice
    /// (e.g. a `SilentCrash` following a drill on the same site).
    pub fn fail_session(&mut self, neighbor: NodeId) -> bool {
        if let Some(&idx) = self.nbr_index.get(&neighbor) {
            let nbr = &mut self.neighbors[idx];
            if nbr.up {
                nbr.up = false;
                nbr.pending.clear();
                return true;
            }
        }
        false
    }

    /// Hold timer expiry: if the session is still down, purge every route
    /// learned from `neighbor` and rerun the decision process for the
    /// affected prefixes. Returns the prefixes whose best route changed.
    pub fn expire_session(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> Vec<Prefix> {
        match self.nbr_index.get(&neighbor) {
            Some(&idx) if !self.neighbors[idx].up => {}
            _ => return Vec::new(), // session recovered or unknown: no-op
        }
        // `adj_in` is a HashMap, so collect-then-sort: the per-prefix
        // decision below draws timing jitter from `rng`, and iteration
        // order must not depend on the hasher instance (it differs across
        // threads and processes, breaking run-to-run reproducibility).
        let mut affected: Vec<Prefix> = self
            .adj_in
            .iter()
            .filter(|(_, m)| m.contains_key(&neighbor))
            .map(|(p, _)| *p)
            .collect();
        affected.sort_unstable();
        let mut changed = Vec::new();
        for prefix in affected {
            if let Some(m) = self.adj_in.get_mut(&prefix) {
                m.remove(&neighbor);
                if m.is_empty() {
                    self.adj_in.remove(&prefix);
                }
            }
            if self.run_decision(now, prefix, timing, rng, out) {
                changed.push(prefix);
            }
        }
        // The peer also lost everything we ever sent it.
        let nbr = &mut self.neighbors[self.nbr_index[&neighbor]];
        nbr.last_sent.clear();
        nbr.last_announce.clear();
        changed
    }

    /// Brings the session to `neighbor` back up and re-exports the full
    /// table (BGP session establishment resends everything).
    pub fn restore_session(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let Some(&idx) = self.nbr_index.get(&neighbor) else {
            return;
        };
        {
            let nbr = &mut self.neighbors[idx];
            if nbr.up {
                return;
            }
            nbr.up = true;
            nbr.last_sent.clear();
            nbr.last_announce.clear();
            nbr.pending.clear();
        }
        // Sorted for the same reason as in `expire_session`: `best` is a
        // HashMap and each export draws MRAI jitter from `rng` in turn.
        let mut prefixes: Vec<Prefix> = self.best.keys().copied().collect();
        prefixes.sort_unstable();
        for prefix in prefixes {
            let desired = self.desired_export(prefix, idx);
            self.queue_export(now, prefix, idx, desired, timing, rng, out);
        }
    }

    /// Processes one incoming message. Returns whether the best route for
    /// the message's prefix changed.
    pub fn receive(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: Message,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        let prefix = msg.prefix();
        // A message arriving over a failed link is lost.
        match self.nbr_index.get(&from) {
            Some(&idx) if self.neighbors[idx].up => {}
            _ => return false,
        }
        // Flap damping: every received change to this neighbor's route
        // accrues penalty; suppression hides the candidate from the
        // decision until the penalty decays.
        if let Some(dcfg) = &timing.flap_damping {
            let state = self
                .damping
                .entry((from, prefix))
                .or_insert_with(|| DampState::new(now));
            let withdrawal = matches!(msg, Message::Withdraw { .. });
            let was_suppressed = state.is_suppressed(dcfg, now);
            let suppressed = state.flap(dcfg, now, withdrawal);
            if suppressed && !was_suppressed {
                // Schedule the reuse re-decision.
                let wait = state.time_to_reuse(dcfg, now) + SimDuration::from_millis(1);
                out.push((
                    wait,
                    BgpEvent::DampingReuse {
                        node: self.id,
                        neighbor: from,
                        prefix,
                    },
                ));
            }
        }
        match msg {
            Message::Update { route, .. } => {
                if route.path.contains(self.asn) {
                    // Loop detection: discard, and drop any previous route
                    // from this neighbor (an update implicitly replaces it).
                    if let Some(m) = self.adj_in.get_mut(&prefix) {
                        m.remove(&from);
                    }
                } else {
                    let idx = *self
                        .nbr_index
                        .get(&from)
                        .unwrap_or_else(|| panic!("message from non-neighbor {from}"));
                    let rel = self.neighbors[idx].rel;
                    let attrs = RouteAttrs {
                        path: route.path,
                        local_pref: import_local_pref(rel),
                        med: route.med,
                        origin: route.origin,
                        no_export: route.no_export,
                    };
                    self.adj_in.entry(prefix).or_default().insert(from, attrs);
                }
            }
            Message::Withdraw { .. } => {
                if let Some(m) = self.adj_in.get_mut(&prefix) {
                    m.remove(&from);
                    if m.is_empty() {
                        self.adj_in.remove(&prefix);
                    }
                }
            }
        }
        self.run_decision(now, prefix, timing, rng, out)
    }

    /// A damping reuse timer fired: if the candidate's penalty has decayed
    /// below the reuse threshold, re-run the decision so it competes again;
    /// if it was re-penalized in the meantime, re-arm the timer. Returns
    /// whether the best route changed.
    pub fn damping_reuse(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        prefix: Prefix,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        let Some(dcfg) = &timing.flap_damping else {
            return false;
        };
        let Some(state) = self.damping.get(&(neighbor, prefix)) else {
            return false;
        };
        if state.is_suppressed(dcfg, now) {
            let wait = state.time_to_reuse(dcfg, now) + SimDuration::from_millis(1);
            out.push((
                wait,
                BgpEvent::DampingReuse {
                    node: self.id,
                    neighbor,
                    prefix,
                },
            ));
            return false;
        }
        self.run_decision(now, prefix, timing, rng, out)
    }

    /// A pending send timer fired; emit the coalesced message if it is
    /// still current.
    pub fn fire(
        &mut self,
        now: SimTime,
        neighbor: NodeId,
        prefix: Prefix,
        gen: u64,
        timing: &BgpTimingConfig,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let Some(&idx) = self.nbr_index.get(&neighbor) else {
            return;
        };
        let nbr = &mut self.neighbors[idx];
        if !nbr.up {
            return; // link died while the timer was pending
        }
        match nbr.pending.get(&prefix) {
            Some(p) if p.gen == gen => {}
            _ => return, // superseded or cancelled
        }
        let p = nbr.pending.remove(&prefix).expect("checked above");
        let msg = match p.msg {
            Some(w) => {
                nbr.last_announce.insert(prefix, now);
                nbr.last_sent.insert(prefix, w.clone());
                Message::Update { prefix, route: w }
            }
            None => {
                // Under per-peer update pacing (WRATE on) a withdrawal also
                // restarts the pacing clock for the session, like any update.
                if timing.withdrawal_rate_limiting {
                    nbr.last_announce.insert(prefix, now);
                }
                nbr.last_sent.remove(&prefix);
                Message::Withdraw { prefix }
            }
        };
        out.push((
            nbr.delay,
            BgpEvent::Deliver {
                to: nbr.peer,
                from: self.id,
                msg,
            },
        ));
    }

    /// Re-runs the decision process for `prefix`; on change, updates the
    /// Loc-RIB and FIB and queues per-neighbor exports. Returns whether the
    /// best route changed.
    fn run_decision(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) -> bool {
        let new_best = self.compute_best(now, prefix, timing);
        if new_best == self.best.get(&prefix).cloned() {
            return false;
        }
        match &new_best {
            Some(sel) => {
                self.fib.insert(prefix, sel.next_hop());
                self.best.insert(prefix, sel.clone());
            }
            None => {
                self.fib.remove(&prefix);
                self.best.remove(&prefix);
            }
        }
        self.refresh_exports(now, prefix, timing, rng, out);
        true
    }

    /// Recomputes the desired export of `prefix` toward every neighbor and
    /// queues any change through the send machinery.
    fn refresh_exports(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        for idx in 0..self.neighbors.len() {
            let desired = self.desired_export(prefix, idx);
            self.queue_export(now, prefix, idx, desired, timing, rng, out);
        }
    }

    /// What should currently be advertised to neighbor `idx` for `prefix`?
    fn desired_export(&self, prefix: Prefix, idx: usize) -> Option<WireRoute> {
        if !self.neighbors[idx].up {
            return None;
        }
        let best = self.best.get(&prefix)?;
        let to_rel = self.neighbors[idx].rel;
        match best.from {
            None => {
                let cfg = self
                    .originated
                    .get(&prefix)
                    .expect("self-originated best implies origin config");
                if !cfg.allows(self.neighbors[idx].peer) {
                    return None;
                }
                Some(WireRoute {
                    path: AsPath::originate(self.asn, cfg.prepend),
                    med: cfg.med,
                    origin: self.id,
                    no_export: cfg.no_export,
                })
            }
            Some(learned_from) => {
                // NO_EXPORT: use the route, advertise it to nobody.
                if best.attrs.no_export {
                    return None;
                }
                // Split horizon: echoing a route back to its supplier is
                // pointless (the supplier's loop detection discards it).
                if learned_from == self.neighbors[idx].peer {
                    return None;
                }
                let lf_rel = self.neighbors[self.nbr_index[&learned_from]].rel;
                if !may_export(Some(lf_rel), to_rel) {
                    return None;
                }
                Some(WireRoute {
                    path: best.attrs.path.prepended(self.asn, 1),
                    med: 0,
                    origin: best.attrs.origin,
                    no_export: false,
                })
            }
        }
    }

    /// Coalesces `desired` into the per-neighbor pending slot and schedules
    /// a send timer honoring MRAI (announcements) or the withdrawal
    /// processing delay.
    #[allow(clippy::too_many_arguments)]
    fn queue_export(
        &mut self,
        now: SimTime,
        prefix: Prefix,
        idx: usize,
        desired: Option<WireRoute>,
        timing: &BgpTimingConfig,
        rng: &mut SmallRng,
        out: &mut Vec<(SimDuration, BgpEvent)>,
    ) {
        let node_id = self.id;
        self.gen_counter += 1;
        let gen = self.gen_counter;
        let nbr = &mut self.neighbors[idx];
        if !nbr.up {
            // Nothing can be sent on a failed session; pending state was
            // cleared at failure time.
            return;
        }

        let effective: Option<&WireRoute> = match nbr.pending.get(&prefix) {
            Some(p) => p.msg.as_ref(),
            None => nbr.last_sent.get(&prefix),
        };
        if desired.as_ref() == effective {
            return;
        }
        // Flapped back to what is already on the wire: cancel the pending
        // correction instead of sending a redundant message.
        if nbr.pending.contains_key(&prefix) && desired.as_ref() == nbr.last_sent.get(&prefix) {
            nbr.pending.remove(&prefix);
            return;
        }

        let rate_limited = desired.is_some() || timing.withdrawal_rate_limiting;
        let proc = if desired.is_some() {
            timing.announce_proc_delay(rng)
        } else {
            timing.withdraw_proc_delay(rng)
        };
        let mut fire_delay = proc;
        if rate_limited {
            if let Some(last) = nbr.last_announce.get(&prefix) {
                let mrai = timing.jittered_mrai(nbr.session_mrai, rng);
                let ready = *last + mrai;
                if ready > now + proc {
                    fire_delay = ready.since(now);
                }
            }
        }
        nbr.pending.insert(prefix, Pending { msg: desired, gen });
        out.push((
            fire_delay,
            BgpEvent::Fire {
                node: node_id,
                neighbor: nbr.peer,
                prefix,
                gen,
            },
        ));
    }

    /// RFC 4271-flavoured candidate comparison; `Ordering::Less` = better.
    fn cmp_candidates(&self, a: &Selected, b: &Selected) -> Ordering {
        b.attrs
            .local_pref
            .cmp(&a.attrs.local_pref)
            .then(a.attrs.path.len().cmp(&b.attrs.path.len()))
            .then(a.attrs.med.cmp(&b.attrs.med))
            .then_with(|| {
                let key = |s: &Selected| match s.from {
                    // Self-originated sorts first (it also has max
                    // LOCAL_PREF, so this arm is belt-and-braces).
                    None => (0, Asn(0), NodeId(0)),
                    Some(n) => {
                        let i = self.nbr_index[&n];
                        (1, self.neighbors[i].peer_asn, n)
                    }
                };
                key(a).cmp(&key(b))
            })
    }

    fn compute_best(
        &self,
        now: SimTime,
        prefix: Prefix,
        timing: &BgpTimingConfig,
    ) -> Option<Selected> {
        let mut best: Option<Selected> = None;
        if self.originated.contains_key(&prefix) {
            best = Some(Selected {
                from: None,
                attrs: RouteAttrs {
                    path: AsPath::empty(),
                    local_pref: u32::MAX,
                    med: 0,
                    origin: self.id,
                    no_export: false,
                },
            });
        }
        if let Some(m) = self.adj_in.get(&prefix) {
            for (nbr, attrs) in m {
                // Dampened candidates are invisible to the decision.
                if let Some(dcfg) = &timing.flap_damping {
                    if let Some(state) = self.damping.get(&(*nbr, prefix)) {
                        if state.is_suppressed(dcfg, now) {
                            continue;
                        }
                    }
                }
                let cand = Selected {
                    from: Some(*nbr),
                    attrs: attrs.clone(),
                };
                best = match best {
                    None => Some(cand),
                    Some(cur) => {
                        if self.cmp_candidates(&cand, &cur) == Ordering::Less {
                            Some(cand)
                        } else {
                            Some(cur)
                        }
                    }
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_event::RngFactory;

    fn wire(path: &[u32], origin: NodeId) -> WireRoute {
        WireRoute {
            path: AsPath::from_hops(path.iter().map(|a| Asn(*a)).collect()),
            med: 0,
            origin,
            no_export: false,
        }
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// A node with three neighbors: n1 customer, n2 peer, n3 provider.
    fn test_node() -> BgpNode {
        let mk = |peer: u32, asn: u32, rel: Rel| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                rel,
                SimDuration::from_millis(5),
                SimDuration::ZERO,
            )
        };
        BgpNode::new(
            NodeId(0),
            Asn(100),
            vec![
                mk(1, 101, Rel::Customer),
                mk(2, 102, Rel::Peer),
                mk(3, 103, Rel::Provider),
            ],
        )
    }

    fn ctx() -> (BgpTimingConfig, SmallRng) {
        (
            BgpTimingConfig::instant(),
            RngFactory::new(1).stream("test", 0),
        )
    }

    #[test]
    fn customer_route_beats_shorter_peer_route() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // Long customer path vs short peer path: customer wins (LOCAL_PREF).
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 55, 56, 57], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().from, Some(NodeId(1)));
    }

    #[test]
    fn shorter_path_wins_at_equal_pref() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // Two peer-ish routes... use provider for both: n3 provider short,
        // then replace with customer comparisons. Simplest: two updates from
        // the same class need two neighbors of same rel; use peer n2 and
        // provider n3 -> peer wins regardless. Instead test length within
        // one neighbor by replacement:
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 8, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().attrs.path.len(), 3);
        // Same neighbor advertises a shorter path: replaces, still best.
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().attrs.path.len(), 2);
    }

    #[test]
    fn prepended_path_loses_to_plain_at_same_pref() {
        // Two providers; one path is prepended. The plain one wins. This is
        // the mechanism proactive-prepending relies on for control.
        let mk = |peer: u32, asn: u32| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                Rel::Provider,
                SimDuration::from_millis(5),
                SimDuration::ZERO,
            )
        };
        let mut n = BgpNode::new(NodeId(0), Asn(100), vec![mk(1, 101), mk(2, 102)]);
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 47065, 47065, 47065, 47065], NodeId(8)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 47065], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        let best = n.best(&pre).unwrap();
        assert_eq!(best.from, Some(NodeId(2)));
        assert_eq!(best.attrs.origin, NodeId(9));
    }

    #[test]
    fn loop_detection_discards_and_replaces() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert!(n.best(&pre).is_some());
        // Same neighbor now advertises a path containing our ASN: the old
        // route must be dropped too (implicit replacement), leaving nothing.
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 100, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert!(n.best(&pre).is_none());
    }

    #[test]
    fn withdrawal_falls_back_to_stale_alternative() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        n.receive(
            SimTime::ZERO,
            NodeId(3),
            Message::Update {
                prefix: pre,
                route: wire(&[103, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().from, Some(NodeId(1)));
        // Withdraw the best: path exploration selects the (possibly stale)
        // provider route rather than dropping the prefix.
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Withdraw { prefix: pre },
            &t,
            &mut rng,
            &mut out,
        );
        assert_eq!(n.best(&pre).unwrap().from, Some(NodeId(3)));
        n.receive(
            SimTime::ZERO,
            NodeId(3),
            Message::Withdraw { prefix: pre },
            &t,
            &mut rng,
            &mut out,
        );
        assert!(n.best(&pre).is_none());
        assert!(n.fib_lookup(pre.first_addr()).is_none());
    }

    #[test]
    fn origination_beats_everything_and_exports() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.receive(
            SimTime::ZERO,
            NodeId(1),
            Message::Update {
                prefix: pre,
                route: wire(&[101, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        out.clear();
        assert!(n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out
        ));
        assert_eq!(n.best(&pre).unwrap().from, None);
        assert_eq!(n.fib_lookup(pre.addr_at(1)).unwrap().1, NextHop::Local);
        // Export queued to all three neighbors.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn valley_free_export_blocks_peer_routes_upward() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // Route learned from peer n2: export only to customer n1.
        n.receive(
            SimTime::ZERO,
            NodeId(2),
            Message::Update {
                prefix: pre,
                route: wire(&[102, 9], NodeId(9)),
            },
            &t,
            &mut rng,
            &mut out,
        );
        // Fire all pending sends and inspect targets.
        let fires: Vec<BgpEvent> = out.drain(..).map(|(_, e)| e).collect();
        let mut deliver_targets = Vec::new();
        for ev in fires {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver { to, msg, .. } = e {
                        assert!(matches!(msg, Message::Update { .. }));
                        deliver_targets.push(to);
                    }
                }
            }
        }
        assert_eq!(deliver_targets, vec![NodeId(1)]);
    }

    #[test]
    fn selective_export_restricts_targets() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        let cfg = OriginConfig::plain().only_to([NodeId(2)]);
        n.originate(SimTime::ZERO, pre, cfg, &t, &mut rng, &mut out);
        let mut deliver_targets = Vec::new();
        for (_, ev) in out.drain(..) {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver { to, .. } = e {
                        deliver_targets.push(to);
                    }
                }
            }
        }
        assert_eq!(deliver_targets, vec![NodeId(2)]);
    }

    #[test]
    fn prepend_config_lengthens_exported_path() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::prepended(3),
            &t,
            &mut rng,
            &mut out,
        );
        let mut paths = Vec::new();
        for (_, ev) in out.drain(..) {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver {
                        msg: Message::Update { route, .. },
                        ..
                    } = e
                    {
                        paths.push(route.path);
                    }
                }
            }
        }
        assert_eq!(paths.len(), 3);
        for path in paths {
            assert_eq!(path.len(), 4); // own ASN once + 3 prepends
            assert_eq!(path.distinct_len(), 1);
            assert_eq!(path.origin(), Some(Asn(100)));
        }
    }

    #[test]
    fn stale_fire_generation_is_noop() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        let first_fires: Vec<BgpEvent> = out.drain(..).map(|(_, e)| e).collect();
        // Withdraw before timers fire: pending entries are replaced.
        n.withdraw_origin(SimTime::ZERO, pre, &t, &mut rng, &mut out);
        // Old generation Fire events must now produce nothing.
        for ev in first_fires {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                assert!(sent.is_empty(), "stale fire produced {sent:?}");
            }
        }
        // And the coalesced pending state is "nothing to send": the node
        // never announced, so withdraw+announce cancel to silence.
        let mut sent = Vec::new();
        for (_, ev) in out.drain(..) {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
            }
        }
        assert!(
            sent.is_empty(),
            "announce+withdraw before any send must coalesce to nothing: {sent:?}"
        );
    }

    #[test]
    fn update_replaces_pending_update_coalesced() {
        let mut n = test_node();
        let (t, mut rng) = ctx();
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::prepended(2),
            &t,
            &mut rng,
            &mut out,
        );
        // Fire everything; each neighbor must receive exactly ONE update,
        // the latest (prepended) one.
        let mut received: HashMap<NodeId, Vec<Message>> = HashMap::new();
        let events: Vec<BgpEvent> = out.drain(..).map(|(_, e)| e).collect();
        for ev in events {
            if let BgpEvent::Fire {
                neighbor,
                prefix,
                gen,
                ..
            } = ev
            {
                let mut sent = Vec::new();
                n.fire(SimTime::ZERO, neighbor, prefix, gen, &t, &mut sent);
                for (_, e) in sent {
                    if let BgpEvent::Deliver { to, msg, .. } = e {
                        received.entry(to).or_default().push(msg);
                    }
                }
            }
        }
        for (to, msgs) in received {
            assert_eq!(msgs.len(), 1, "neighbor {to} got {msgs:?}");
            match &msgs[0] {
                Message::Update { route, .. } => assert_eq!(route.path.len(), 3),
                other => panic!("expected update, got {other:?}"),
            }
        }
    }

    #[test]
    fn mrai_paces_second_announcement() {
        let mk = |peer: u32, asn: u32| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                Rel::Customer,
                SimDuration::from_millis(5),
                SimDuration::from_secs(30),
            )
        };
        let mut n = BgpNode::new(NodeId(0), Asn(100), vec![mk(1, 101)]);
        let mut t = BgpTimingConfig::instant();
        t.mrai_min_s = 30.0;
        t.mrai_max_s = 30.0;
        let mut rng = RngFactory::new(1).stream("test", 0);
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        // First announcement: fires after the (tiny) proc delay.
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        let (d1, ev1) = out.remove(0);
        assert!(d1 < SimDuration::from_secs(1));
        if let BgpEvent::Fire {
            neighbor,
            prefix,
            gen,
            ..
        } = ev1
        {
            n.fire(
                SimTime::ZERO + d1,
                neighbor,
                prefix,
                gen,
                &t,
                &mut Vec::new(),
            );
        }
        // Second announcement shortly after: must wait out the MRAI.
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        out.clear();
        n.originate(now, pre, OriginConfig::prepended(1), &t, &mut rng, &mut out);
        let (d2, _) = out[0];
        let fire_at = now + d2;
        // last announce ≈ d1; earliest allowed ≈ d1 + 0.75*30 = ~22.5s.
        assert!(
            fire_at >= SimTime::ZERO + SimDuration::from_secs_f64(22.0),
            "fired too early at {fire_at}"
        );
    }

    #[test]
    fn withdrawal_not_mrai_paced_by_default() {
        let mk = |peer: u32, asn: u32| {
            BgpNode::neighbor_state(
                NodeId(peer),
                Asn(asn),
                Rel::Customer,
                SimDuration::from_millis(5),
                SimDuration::from_secs(30),
            )
        };
        let mut n = BgpNode::new(NodeId(0), Asn(100), vec![mk(1, 101)]);
        let mut t = BgpTimingConfig::instant();
        t.mrai_min_s = 30.0;
        t.mrai_max_s = 30.0;
        let mut rng = RngFactory::new(1).stream("test", 0);
        let mut out = Vec::new();
        let pre = p("10.0.0.0/24");
        n.originate(
            SimTime::ZERO,
            pre,
            OriginConfig::plain(),
            &t,
            &mut rng,
            &mut out,
        );
        let (d1, ev1) = out.remove(0);
        if let BgpEvent::Fire {
            neighbor,
            prefix,
            gen,
            ..
        } = ev1
        {
            n.fire(
                SimTime::ZERO + d1,
                neighbor,
                prefix,
                gen,
                &t,
                &mut Vec::new(),
            );
        }
        out.clear();
        // Withdraw right after the announcement went out: not rate limited.
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        n.withdraw_origin(now, pre, &t, &mut rng, &mut out);
        let (d2, _) = out[0];
        assert!(d2 < SimDuration::from_secs(1), "withdraw delayed {d2}");
    }
}
