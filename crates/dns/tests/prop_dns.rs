//! Property tests on the DNS subsystem: cache semantics and population
//! failover invariants.

use bobw_dns::{
    Authoritative, CacheStatus, ClientPopulation, DnsFailoverConfig, RecursiveResolver,
};
use bobw_event::{RngFactory, SimDuration, SimTime};
use bobw_net::{NodeId, Prefix};
use bobw_topology::SiteId;
use proptest::prelude::*;

fn auth(ttl_s: u64, num_sites: u8) -> Authoritative {
    let prefixes: Vec<Prefix> = (0..num_sites)
        .map(|i| Prefix::new((10u32 << 24) | ((i as u32) << 8), 24))
        .collect();
    Authoritative::new(prefixes, SimDuration::from_secs(ttl_s))
}

proptest! {
    /// A compliant resolver never serves a record past its TTL: every
    /// answer it returns was fetched within TTL of the query time.
    #[test]
    fn compliant_resolver_never_serves_expired(
        ttl in 1u64..600,
        query_times in proptest::collection::vec(0u64..5_000, 1..40),
    ) {
        let mut a = auth(ttl, 2);
        let client = NodeId(1);
        a.assign(client, SiteId(0));
        let mut r = RecursiveResolver::new(client, SimDuration::ZERO);
        let mut sorted = query_times.clone();
        sorted.sort();
        let mut last_fetch: Option<u64> = None;
        for t in sorted {
            let (_, status) = r.query(&a, SimTime::from_secs(t)).expect("answer");
            match status {
                CacheStatus::Miss => last_fetch = Some(t),
                CacheStatus::Hit => {
                    let f = last_fetch.expect("hit implies a prior fetch");
                    prop_assert!(t < f + ttl, "hit at {t} on record fetched at {f} (ttl {ttl})");
                }
                CacheStatus::StaleHit => {
                    prop_assert!(false, "compliant resolver served stale");
                }
            }
        }
    }

    /// A violating resolver serves stale only within its grace window.
    #[test]
    fn violator_bounded_by_grace(
        ttl in 1u64..120,
        grace in 1u64..2_000,
        offset in 0u64..5_000,
    ) {
        let mut a = auth(ttl, 2);
        let client = NodeId(1);
        a.assign(client, SiteId(0));
        let mut r = RecursiveResolver::new(client, SimDuration::from_secs(grace));
        r.query(&a, SimTime::ZERO).unwrap();
        let t = SimTime::from_secs(offset);
        let (_, status) = r.query(&a, t).expect("answer");
        if offset < ttl {
            prop_assert_eq!(status, CacheStatus::Hit);
        } else if offset < ttl + grace {
            prop_assert_eq!(status, CacheStatus::StaleHit);
        } else {
            prop_assert_eq!(status, CacheStatus::Miss);
        }
    }

    /// Population failover times are bounded below by the re-query latency
    /// and, for compliant clients, above by TTL + latency; the sampled
    /// distribution is deterministic in the seed.
    #[test]
    fn population_bounds(ttl in 1u64..1_000, seed in 0u64..1_000) {
        let cfg = DnsFailoverConfig {
            ttl: SimDuration::from_secs(ttl),
            violator_fraction: 0.0,
            ..Default::default()
        };
        let pop = ClientPopulation::sample(&cfg, 300, &RngFactory::new(seed));
        for d in pop.failover_times() {
            prop_assert!(*d >= cfg.requery_latency);
            prop_assert!(*d <= SimDuration::from_secs(ttl) + cfg.requery_latency);
        }
        let again = ClientPopulation::sample(&cfg, 300, &RngFactory::new(seed));
        prop_assert_eq!(pop.failover_times(), again.failover_times());
    }

    /// More violators can only shift the distribution upward (stochastic
    /// dominance on the sampled population mean).
    #[test]
    fn violators_increase_mean_failover(seed in 0u64..200) {
        let mk = |frac: f64| {
            let cfg = DnsFailoverConfig {
                violator_fraction: frac,
                ..Default::default()
            };
            let pop = ClientPopulation::sample(&cfg, 2_000, &RngFactory::new(seed));
            pop.sorted_secs().iter().sum::<f64>() / 2_000.0
        };
        let none = mk(0.0);
        let half = mk(0.5);
        prop_assert!(half > none, "mean with violators {half} !> {none}");
    }

    /// Fallback ordering is respected under arbitrary failure sets: the
    /// answer is always the first non-failed site in the ranking.
    #[test]
    fn fallback_respects_ranking(failed_mask in 0u8..32) {
        let mut a = auth(30, 5);
        let client = NodeId(1);
        a.assign(client, SiteId(0));
        let ranking: Vec<SiteId> = (0..5).map(SiteId).collect();
        a.set_fallback(client, ranking.clone());
        for i in 0..5 {
            if failed_mask & (1 << i) != 0 {
                a.mark_failed(SiteId(i));
            }
        }
        let expect = ranking.iter().find(|s| !a.is_failed(**s)).copied();
        let got = a.resolve(client, SimTime::ZERO).map(|ans| ans.site);
        prop_assert_eq!(got, expect);
    }
}
