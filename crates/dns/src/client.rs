//! The client population model for the unicast failover baseline.
//!
//! The paper argues (without measuring directly — its emulated CDN has no
//! real client population) that unicast failover is bounded by DNS caching
//! and its violations: top domains' median TTL is ~10 minutes [Moura '19],
//! Akamai uses 20 s [Schomp '20], and clients keep using expired records
//! with a median overshoot of 890 s [Allman '20]. This module samples a
//! population under those published parameters and computes each client's
//! failover time: how long after a site failure the client first tries a
//! *live* address.

use bobw_event::rng::lognormal;
use bobw_event::{RngFactory, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the DNS failover baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnsFailoverConfig {
    /// Record TTL.
    pub ttl: SimDuration,
    /// Fraction of clients that keep using records past TTL.
    pub violator_fraction: f64,
    /// Median overshoot past expiry for violators (Allman '20: 890 s).
    pub overshoot_median_s: f64,
    /// Lognormal sigma of the overshoot.
    pub overshoot_sigma: f64,
    /// Latency of the re-resolution itself (recursive → authoritative).
    pub requery_latency: SimDuration,
}

impl Default for DnsFailoverConfig {
    fn default() -> Self {
        DnsFailoverConfig {
            // Median TTL across popular domains is ~10 min (§1).
            ttl: SimDuration::from_secs(600),
            violator_fraction: 0.25,
            overshoot_median_s: 890.0,
            overshoot_sigma: 1.0,
            requery_latency: SimDuration::from_millis(200),
        }
    }
}

impl DnsFailoverConfig {
    /// The Akamai-style low-TTL configuration (20 s records).
    pub fn low_ttl() -> DnsFailoverConfig {
        DnsFailoverConfig {
            ttl: SimDuration::from_secs(20),
            ..Default::default()
        }
    }
}

/// A sampled population of DNS clients.
#[derive(Debug, Clone)]
pub struct ClientPopulation {
    /// Per-client failover time after an unannounced site failure.
    failover: Vec<SimDuration>,
}

impl ClientPopulation {
    /// Samples `n` clients. Each client's cache phase at the failure
    /// instant is uniform in `[0, TTL)` (steady-state arrivals); violators
    /// add a lognormal overshoot.
    pub fn sample(cfg: &DnsFailoverConfig, n: usize, rng: &RngFactory) -> ClientPopulation {
        let mut failover = Vec::with_capacity(n);
        let ttl_s = cfg.ttl.as_secs_f64();
        for i in 0..n {
            let mut r = rng.stream("dns-client", i as u64);
            // Time remaining until the client's cached record expires.
            let remaining = r.gen_range(0.0..ttl_s.max(f64::MIN_POSITIVE));
            let overshoot = if r.gen_bool(cfg.violator_fraction.clamp(0.0, 1.0)) {
                lognormal(&mut r, cfg.overshoot_median_s, cfg.overshoot_sigma)
            } else {
                0.0
            };
            let t = SimDuration::from_secs_f64(remaining + overshoot) + cfg.requery_latency;
            failover.push(t);
        }
        ClientPopulation { failover }
    }

    /// Per-client failover times (unsorted, client order).
    pub fn failover_times(&self) -> &[SimDuration] {
        &self.failover
    }

    pub fn len(&self) -> usize {
        self.failover.len()
    }

    pub fn is_empty(&self) -> bool {
        self.failover.is_empty()
    }

    /// Failover times in seconds, sorted ascending (CDF-ready).
    pub fn sorted_secs(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.failover.iter().map(|d| d.as_secs_f64()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_size_and_determinism() {
        let cfg = DnsFailoverConfig::default();
        let a = ClientPopulation::sample(&cfg, 500, &RngFactory::new(3));
        let b = ClientPopulation::sample(&cfg, 500, &RngFactory::new(3));
        assert_eq!(a.len(), 500);
        assert!(!a.is_empty());
        assert_eq!(a.failover_times(), b.failover_times());
    }

    #[test]
    fn compliant_clients_bounded_by_ttl() {
        let cfg = DnsFailoverConfig {
            violator_fraction: 0.0,
            ..Default::default()
        };
        let p = ClientPopulation::sample(&cfg, 2000, &RngFactory::new(4));
        let max = p.sorted_secs().last().copied().unwrap();
        // TTL 600 s + requery latency.
        assert!(max <= 600.5, "{max}");
        // Median near TTL/2 (uniform phase).
        let v = p.sorted_secs();
        let med = v[v.len() / 2];
        assert!((240.0..360.0).contains(&med), "{med}");
    }

    #[test]
    fn violators_create_a_long_tail() {
        let cfg = DnsFailoverConfig::default(); // 25% violators
        let p = ClientPopulation::sample(&cfg, 4000, &RngFactory::new(5));
        let v = p.sorted_secs();
        let p95 = v[(v.len() * 95) / 100];
        // With a 890 s-median overshoot on a quarter of clients, the tail
        // extends far beyond the 600 s TTL.
        assert!(p95 > 700.0, "{p95}");
    }

    #[test]
    fn low_ttl_shrinks_failover_but_violators_remain() {
        let p = ClientPopulation::sample(&DnsFailoverConfig::low_ttl(), 4000, &RngFactory::new(6));
        let v = p.sorted_secs();
        let med = v[v.len() / 2];
        // Most clients' records expire within 20 s...
        assert!(med < 25.0, "{med}");
        // ...but the violating tail still stretches to hundreds of seconds,
        // which is the paper's §1 point about Akamai-style low TTLs.
        let p90 = v[(v.len() * 90) / 100];
        assert!(p90 > 100.0, "{p90}");
    }

    #[test]
    fn sorted_is_monotone() {
        let p = ClientPopulation::sample(&DnsFailoverConfig::default(), 100, &RngFactory::new(7));
        let v = p.sorted_secs();
        for w in v.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
