//! # bobw-dns
//!
//! The DNS redirection subsystem: how every technique in the paper steers
//! clients during *normal* operation, and the reason pure unicast fails
//! during site failures.
//!
//! Three pieces:
//!
//! * [`authoritative`] — the CDN's authoritative resolver. It owns the
//!   client→site mapping (the "control" every technique wants to keep) and
//!   returns an address inside the mapped site's per-site prefix.
//! * [`resolver`] — recursive resolvers with caches honoring (or not) the
//!   record TTL.
//! * [`client`] — the client population model used for the unicast failover
//!   baseline: cache phase at failure time, plus the TTL-violating fraction
//!   that keeps using records long past expiry (Allman '20 measured a
//!   *median* of 890 s past expiry; the paper leans on that number to argue
//!   unicast's tail failover is far worse than anycast's, §5.4.1).
//!
//! The paper does not measure unicast failover directly (no real client
//! population), but discusses it throughout; this crate makes the baseline
//! reproducible from the published parameters.

pub mod authoritative;
pub mod client;
pub mod resolver;

pub use authoritative::{Authoritative, DnsAnswer};
pub use client::{ClientPopulation, DnsFailoverConfig};
pub use resolver::{CacheStatus, RecursiveResolver};
