//! The CDN's authoritative DNS: client→site mapping and per-site answers.
//!
//! In every technique of the paper, DNS is the steering mechanism during
//! normal operation: the authoritative resolver returns an address inside
//! the prefix of the site the CDN wants the client to use (§2). On a site
//! failure, the CDN re-maps affected clients to surviving sites — the open
//! question each technique answers differently is what happens to clients
//! still holding the *old* record.

use std::collections::HashMap;

use bobw_event::{SimDuration, SimTime};
use bobw_net::{Ipv4Net, NodeId, Prefix};
use bobw_topology::SiteId;
use serde::{Deserialize, Serialize};

/// An authoritative answer: one A record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsAnswer {
    pub addr: Ipv4Net,
    pub site: SiteId,
    pub ttl: SimDuration,
}

/// The CDN's authoritative resolver.
#[derive(Debug, Clone)]
pub struct Authoritative {
    /// Address block of each site (the per-site unicast prefix).
    site_prefixes: Vec<Prefix>,
    /// Current client→site assignment (the CDN's mapping decision).
    assignment: HashMap<NodeId, SiteId>,
    /// Fallback ranking used when a client's assigned site is failed:
    /// per-client ordered site preference (e.g. by measured RTT).
    fallback: HashMap<NodeId, Vec<SiteId>>,
    /// Sites currently marked failed by the CDN's monitoring.
    failed: Vec<SiteId>,
    /// Record TTL handed out with every answer.
    ttl: SimDuration,
    /// Service host offset within the site prefix.
    host_offset: u32,
}

impl Authoritative {
    pub fn new(site_prefixes: Vec<Prefix>, ttl: SimDuration) -> Authoritative {
        Authoritative {
            site_prefixes,
            assignment: HashMap::new(),
            fallback: HashMap::new(),
            failed: Vec::new(),
            ttl,
            host_offset: 1,
        }
    }

    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    pub fn num_sites(&self) -> usize {
        self.site_prefixes.len()
    }

    /// The prefix of one site.
    pub fn site_prefix(&self, site: SiteId) -> Prefix {
        self.site_prefixes[site.index()]
    }

    /// Sets the preferred site for a client (the CDN's mapping decision,
    /// e.g. lowest-RTT site with capacity).
    pub fn assign(&mut self, client: NodeId, site: SiteId) {
        self.assignment.insert(client, site);
    }

    /// Sets the client's ordered fallback ranking (used when its assigned
    /// site fails).
    pub fn set_fallback(&mut self, client: NodeId, ranking: Vec<SiteId>) {
        self.fallback.insert(client, ranking);
    }

    /// Marks a site failed: subsequent answers avoid it.
    pub fn mark_failed(&mut self, site: SiteId) {
        if !self.failed.contains(&site) {
            self.failed.push(site);
        }
    }

    /// Clears a failure (site recovered).
    pub fn mark_recovered(&mut self, site: SiteId) {
        self.failed.retain(|s| *s != site);
    }

    pub fn is_failed(&self, site: SiteId) -> bool {
        self.failed.contains(&site)
    }

    /// The site the CDN currently wants `client` on, taking failures into
    /// account. `None` if the client has no assignment or every ranked site
    /// is down.
    pub fn current_site(&self, client: NodeId) -> Option<SiteId> {
        let preferred = *self.assignment.get(&client)?;
        if !self.is_failed(preferred) {
            return Some(preferred);
        }
        self.fallback
            .get(&client)
            .into_iter()
            .flatten()
            .copied()
            .find(|s| !self.is_failed(*s))
    }

    /// Answers a query from `client`. `None` when the client is unknown or
    /// all of its candidate sites are failed.
    pub fn resolve(&self, client: NodeId, _now: SimTime) -> Option<DnsAnswer> {
        let site = self.current_site(client)?;
        Some(DnsAnswer {
            addr: self.site_prefixes[site.index()].addr_at(self.host_offset),
            site,
            ttl: self.ttl,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auth() -> Authoritative {
        let prefixes: Vec<Prefix> = vec![
            "10.0.0.0/24".parse().unwrap(),
            "10.0.1.0/24".parse().unwrap(),
            "10.0.2.0/24".parse().unwrap(),
        ];
        Authoritative::new(prefixes, SimDuration::from_secs(20))
    }

    #[test]
    fn answers_assigned_site_prefix() {
        let mut a = auth();
        let client = NodeId(7);
        a.assign(client, SiteId(1));
        let ans = a.resolve(client, SimTime::ZERO).unwrap();
        assert_eq!(ans.site, SiteId(1));
        assert!(a.site_prefix(SiteId(1)).contains(ans.addr));
        assert_eq!(ans.ttl, SimDuration::from_secs(20));
    }

    #[test]
    fn unknown_client_gets_no_answer() {
        let a = auth();
        assert!(a.resolve(NodeId(9), SimTime::ZERO).is_none());
    }

    #[test]
    fn failure_falls_back_in_ranked_order() {
        let mut a = auth();
        let client = NodeId(7);
        a.assign(client, SiteId(0));
        a.set_fallback(client, vec![SiteId(0), SiteId(2), SiteId(1)]);
        a.mark_failed(SiteId(0));
        assert!(a.is_failed(SiteId(0)));
        let ans = a.resolve(client, SimTime::ZERO).unwrap();
        assert_eq!(ans.site, SiteId(2));
        // Second failure falls further down the ranking.
        a.mark_failed(SiteId(2));
        assert_eq!(a.resolve(client, SimTime::ZERO).unwrap().site, SiteId(1));
        // Recovery restores the preferred site.
        a.mark_recovered(SiteId(0));
        assert_eq!(a.resolve(client, SimTime::ZERO).unwrap().site, SiteId(0));
    }

    #[test]
    fn all_sites_failed_means_no_answer() {
        let mut a = auth();
        let client = NodeId(7);
        a.assign(client, SiteId(0));
        a.set_fallback(client, vec![SiteId(0), SiteId(1)]);
        a.mark_failed(SiteId(0));
        a.mark_failed(SiteId(1));
        assert!(a.resolve(client, SimTime::ZERO).is_none());
    }

    #[test]
    fn failure_without_fallback_means_no_answer() {
        let mut a = auth();
        let client = NodeId(7);
        a.assign(client, SiteId(0));
        a.mark_failed(SiteId(0));
        assert!(a.resolve(client, SimTime::ZERO).is_none());
    }

    #[test]
    fn double_mark_failed_is_idempotent() {
        let mut a = auth();
        a.mark_failed(SiteId(0));
        a.mark_failed(SiteId(0));
        a.mark_recovered(SiteId(0));
        assert!(!a.is_failed(SiteId(0)));
    }
}
