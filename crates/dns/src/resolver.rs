//! Recursive resolver caching.
//!
//! The recursive resolver sits between clients and the CDN's authoritative
//! server and caches answers for up to one TTL. Caching is why unicast
//! cannot fail over quickly: a client keeps connecting to the failed site's
//! address until its resolver's copy expires — and some resolvers and
//! applications keep using records even past expiry (§2).

use bobw_event::{SimDuration, SimTime};
use bobw_net::NodeId;
use serde::{Deserialize, Serialize};

use crate::authoritative::{Authoritative, DnsAnswer};

/// How a query was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheStatus {
    /// Served from cache within TTL.
    Hit,
    /// Fetched from the authoritative server (cold or expired).
    Miss,
    /// Served from cache *past* TTL (violating resolver/client behaviour).
    StaleHit,
}

#[derive(Debug, Clone, Copy)]
struct CachedRecord {
    answer: DnsAnswer,
    fetched_at: SimTime,
}

/// One recursive resolver serving one client network.
///
/// `stale_grace` models TTL violation: the resolver keeps serving an
/// expired record for that long before actually re-querying. Zero means a
/// standards-compliant resolver.
#[derive(Debug, Clone)]
pub struct RecursiveResolver {
    client: NodeId,
    cache: Option<CachedRecord>,
    stale_grace: SimDuration,
}

impl RecursiveResolver {
    pub fn new(client: NodeId, stale_grace: SimDuration) -> RecursiveResolver {
        RecursiveResolver {
            client,
            cache: None,
            stale_grace,
        }
    }

    pub fn client(&self) -> NodeId {
        self.client
    }

    pub fn stale_grace(&self) -> SimDuration {
        self.stale_grace
    }

    /// Is the cached record fresh (within TTL) at `now`?
    pub fn fresh_until(&self) -> Option<SimTime> {
        self.cache.map(|c| c.fetched_at + c.answer.ttl)
    }

    /// Resolves for the client at `now`. Serves from cache while fresh,
    /// serves stale within the grace window, otherwise re-queries the
    /// authoritative server. `None` if a re-query is needed and the
    /// authoritative has no answer (all candidate sites failed).
    pub fn query(
        &mut self,
        auth: &Authoritative,
        now: SimTime,
    ) -> Option<(DnsAnswer, CacheStatus)> {
        if let Some(c) = self.cache {
            let expiry = c.fetched_at + c.answer.ttl;
            if now < expiry {
                return Some((c.answer, CacheStatus::Hit));
            }
            if now < expiry + self.stale_grace {
                return Some((c.answer, CacheStatus::StaleHit));
            }
        }
        let answer = auth.resolve(self.client, now)?;
        self.cache = Some(CachedRecord {
            answer,
            fetched_at: now,
        });
        Some((answer, CacheStatus::Miss))
    }

    /// Drops the cache (e.g. resolver restart).
    pub fn flush(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_net::Prefix;
    use bobw_topology::SiteId;

    fn auth(ttl_s: u64) -> Authoritative {
        let prefixes: Vec<Prefix> = vec![
            "10.0.0.0/24".parse().unwrap(),
            "10.0.1.0/24".parse().unwrap(),
        ];
        let mut a = Authoritative::new(prefixes, SimDuration::from_secs(ttl_s));
        a.assign(NodeId(1), SiteId(0));
        a.set_fallback(NodeId(1), vec![SiteId(0), SiteId(1)]);
        a
    }

    #[test]
    fn cold_miss_then_hits_until_expiry() {
        let a = auth(20);
        let mut r = RecursiveResolver::new(NodeId(1), SimDuration::ZERO);
        let (ans0, st0) = r.query(&a, SimTime::from_secs(100)).unwrap();
        assert_eq!(st0, CacheStatus::Miss);
        let (ans1, st1) = r.query(&a, SimTime::from_secs(110)).unwrap();
        assert_eq!(st1, CacheStatus::Hit);
        assert_eq!(ans0, ans1);
        assert_eq!(r.fresh_until(), Some(SimTime::from_secs(120)));
        // At expiry: re-query.
        let (_, st2) = r.query(&a, SimTime::from_secs(120)).unwrap();
        assert_eq!(st2, CacheStatus::Miss);
    }

    #[test]
    fn failure_visible_only_after_expiry() {
        let mut a = auth(20);
        let mut r = RecursiveResolver::new(NodeId(1), SimDuration::ZERO);
        let (ans, _) = r.query(&a, SimTime::from_secs(0)).unwrap();
        assert_eq!(ans.site, SiteId(0));
        // Site 0 fails at t=5; the cached record still points there.
        a.mark_failed(SiteId(0));
        let (stale, st) = r.query(&a, SimTime::from_secs(10)).unwrap();
        assert_eq!(st, CacheStatus::Hit);
        assert_eq!(stale.site, SiteId(0));
        // After expiry the re-query returns the surviving site.
        let (fresh, st) = r.query(&a, SimTime::from_secs(25)).unwrap();
        assert_eq!(st, CacheStatus::Miss);
        assert_eq!(fresh.site, SiteId(1));
    }

    #[test]
    fn violating_resolver_serves_stale() {
        let mut a = auth(20);
        let mut r = RecursiveResolver::new(NodeId(1), SimDuration::from_secs(880));
        r.query(&a, SimTime::from_secs(0)).unwrap();
        a.mark_failed(SiteId(0));
        // Long past TTL but within the grace window: stale hit to the dead
        // site — the Allman '20 behaviour.
        let (stale, st) = r.query(&a, SimTime::from_secs(500)).unwrap();
        assert_eq!(st, CacheStatus::StaleHit);
        assert_eq!(stale.site, SiteId(0));
        // Beyond the grace window it finally re-queries.
        let (fresh, st) = r.query(&a, SimTime::from_secs(1000)).unwrap();
        assert_eq!(st, CacheStatus::Miss);
        assert_eq!(fresh.site, SiteId(1));
    }

    #[test]
    fn flush_forces_requery() {
        let a = auth(20);
        let mut r = RecursiveResolver::new(NodeId(1), SimDuration::ZERO);
        r.query(&a, SimTime::ZERO).unwrap();
        r.flush();
        let (_, st) = r.query(&a, SimTime::from_secs(1)).unwrap();
        assert_eq!(st, CacheStatus::Miss);
    }

    #[test]
    fn requery_returns_none_when_everything_failed() {
        let mut a = auth(20);
        let mut r = RecursiveResolver::new(NodeId(1), SimDuration::ZERO);
        r.query(&a, SimTime::ZERO).unwrap();
        a.mark_failed(SiteId(0));
        a.mark_failed(SiteId(1));
        assert!(r.query(&a, SimTime::from_secs(30)).is_none());
    }
}
