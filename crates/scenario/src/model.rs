//! The declarative scenario model: what a JSON scenario file contains.
//!
//! Times are seconds relative to the experiment's scenario epoch — the
//! instant after the pre-failure network has converged and targets have
//! been selected (the legacy hard-coded failure fired 10 s after that
//! epoch). Site names are the paper's (`"ams"`, `"bos"`, …) or the
//! placeholder `"$site"`, which binds to the cell's measured site at
//! compile time so one scenario file serves the whole per-site grid.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, timestamped script of injectable fault events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    pub name: String,
    pub description: String,
    /// The measured site: which site's targets are selected and probed.
    /// `"$site"` defers to the grid cell (the common case).
    pub site: String,
    /// Measurement anchor in seconds: reconnection/failover times count
    /// from here. Defaults to the first impactful event's time (site
    /// failure, drain shutdown, link cut, …), falling back to the first
    /// event, falling back to 10 s.
    pub measure_from_s: Option<f64>,
    pub events: Vec<ScenarioEvent>,
}

/// One scripted event: an action at a time offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Seconds after the scenario epoch.
    pub at_s: f64,
    pub action: ScenarioAction,
}

/// The injectable actions. Each compiles to one or more `FaultOp`s applied
/// through the BGP simulator, the DNS authoritative, or the technique
/// reaction path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAction {
    /// The site withdraws everything it announces (control plane only —
    /// the data plane stays up). The legacy pre-failure "flap down".
    Withdraw { site: String },
    /// The site re-announces its original advertisements (flap up).
    Announce { site: String },
    /// The site dies: data plane down, and either a graceful withdrawal
    /// of all its announcements or a silent crash of all its links
    /// (neighbors discover via hold timers). `graceful: null` defers to
    /// the experiment config's `failure_mode`.
    SiteFail {
        site: String,
        graceful: Option<bool>,
    },
    /// The site comes back: data plane up, links restored, original
    /// announcements replayed.
    SiteRestore { site: String },
    /// One of the site's links drops silently (index into the site
    /// node's adjacency list). Data plane drops packets crossing it at
    /// once; BGP discovers via the hold timer.
    LinkDown { site: String, link: usize },
    /// The link comes back and sessions re-establish.
    LinkUp { site: String, link: usize },
    /// BGP session reset on one link: down and immediately up again, so
    /// the hold-timer purge never fires but both ends re-advertise
    /// (a soft reset / RFC 4271 session bounce).
    SessionReset { site: String, link: usize },
    /// Half-open session on one of the site's links: the remote end
    /// silently loses its session state (one-sided TCP teardown) and
    /// purges at once, while the site keeps advertising into the void
    /// until its hold timer expires. Under the message-level model the
    /// site's FSM then notifies, reconnects, and recovers; the abstract
    /// model approximates the two-phase purge without re-establishment.
    HalfOpen { site: String, link: usize },
    /// The site's router restarts its BGP process with graceful restart
    /// (RFC 4724): every session drops but forwarding — and, under the
    /// message-level model, the neighbors' learned routes, marked stale —
    /// is retained for `restart_s` while the sessions re-handshake.
    GracefulRestart { site: String, restart_s: f64 },
    /// The site sends a NOTIFICATION with error `code` (1–6, RFC 4271
    /// §4.5) on one link: an administrative/error reset. Both ends purge;
    /// the session re-establishes after the connect-retry backoff.
    NotifyReset { site: String, link: usize, code: u8 },
    /// The neighbor on one of the site's links originates the site's
    /// prefixes as its own — a plain origin hijack. Route-level, so its
    /// semantics are identical under both session models; under
    /// message-level the forged UPDATEs still cross the wire codec.
    HijackAnnounce { site: String, link: usize },
    /// A periodic withdraw/re-announce sequence: `count` cycles starting
    /// here, one every `period_s`, each staying down `down_s`, with
    /// per-cycle jitter drawn uniformly from `[0, jitter_s)` out of the
    /// cell RNG (deterministic per seed).
    Flap {
        site: String,
        count: u32,
        period_s: f64,
        down_s: f64,
        jitter_s: f64,
    },
    /// Regional partition: silently fail every topology link with exactly
    /// one endpoint in the named region (a geo cut).
    Partition { region: String },
    /// Restore every link the matching `Partition` cut.
    HealPartition { region: String },
    /// Maintenance drain: the site withdraws its announcements and the
    /// DNS authoritative steers its clients elsewhere (each re-resolves
    /// within `ttl_s`); the data plane stays up until `shutdown_after_s`
    /// later, when the machines actually power off.
    Drain {
        site: String,
        ttl_s: f64,
        shutdown_after_s: f64,
    },
    /// The technique's reactive reconfiguration fires, minus its first
    /// `skip` actions (partial rollout). The legacy path is `skip: 0` at
    /// failure + detection delay; scheduling it later models slow
    /// detection, twice models a retry. With `stagger_s` set, the actions
    /// roll out one every `stagger_s` seconds (a staged rollout) instead
    /// of all at once; `null` (or omitted) keeps the legacy all-at-once
    /// behavior.
    React { skip: usize, stagger_s: Option<f64> },
    /// Demand surge (flash crowd / volumetric DDoS): demand ramps from 1×
    /// to `factor`× over `ramp_s`, holds until `duration_s` past the
    /// event time, then ramps back down. `region: null` surges globally.
    /// Only observed when the experiment enables the traffic layer.
    Surge {
        region: Option<String>,
        factor: f64,
        ramp_s: f64,
        duration_s: f64,
    },
    /// Permanent multiplicative shift of a region's demand (population
    /// moves, sustained regional event). Traffic layer only.
    DemandShift { region: String, factor: f64 },
    /// The site's serving capacity scales by `factor` (partial hardware
    /// failure at factor < 1, emergency provisioning at factor > 1).
    /// Traffic layer only.
    CapacityChange { site: String, factor: f64 },
    /// DDoS scrubbing comes online for `duration_s`: each tick, up to
    /// `capacity_factor × total site capacity` of overload is diverted to
    /// the scrubbing centers (reported as `scrubbed`) instead of shed at
    /// the door. A mitigation, not a fault — it is never a measurement
    /// anchor. Traffic layer only.
    Scrub {
        capacity_factor: f64,
        duration_s: f64,
    },
}

impl ScenarioAction {
    /// Whether this event is a measurement anchor candidate: something
    /// that takes capacity away — or, for the traffic layer, throws
    /// demand at it (not churn, not recovery).
    pub fn is_impactful(&self) -> bool {
        matches!(
            self,
            ScenarioAction::SiteFail { .. }
                | ScenarioAction::LinkDown { .. }
                | ScenarioAction::Partition { .. }
                | ScenarioAction::Drain { .. }
                | ScenarioAction::Surge { .. }
                | ScenarioAction::CapacityChange { .. }
                | ScenarioAction::HalfOpen { .. }
                | ScenarioAction::HijackAnnounce { .. }
        )
    }

    /// Whether this action only gains its full semantics under the
    /// message-level session model (`SessionModel::MessageLevel`). The
    /// abstract model runs a documented approximation instead.
    pub fn is_session_action(&self) -> bool {
        matches!(
            self,
            ScenarioAction::HalfOpen { .. }
                | ScenarioAction::GracefulRestart { .. }
                | ScenarioAction::NotifyReset { .. }
                | ScenarioAction::HijackAnnounce { .. }
        )
    }
}

/// A scenario that fails validation or compilation; points at the
/// offending event by index.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// Index into `events`, if the problem is tied to one event.
    pub event: Option<usize>,
    pub msg: String,
}

impl ScenarioError {
    pub fn new(msg: impl Into<String>) -> ScenarioError {
        ScenarioError {
            event: None,
            msg: msg.into(),
        }
    }

    pub fn at(event: usize, msg: impl Into<String>) -> ScenarioError {
        ScenarioError {
            event: Some(event),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.event {
            Some(i) => write!(f, "events[{i}]: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn finite_nonneg(event: usize, what: &str, v: f64) -> Result<(), ScenarioError> {
    if v.is_finite() && v >= 0.0 {
        Ok(())
    } else {
        Err(ScenarioError::at(
            event,
            format!("{what} must be finite and >= 0, got {v}"),
        ))
    }
}

impl Scenario {
    /// Structural validation that needs no testbed: names, times, counts.
    /// Site/region names and link indices are checked at [`compile`] time
    /// against a concrete topology.
    ///
    /// [`compile`]: crate::compile
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::new("scenario name must not be empty"));
        }
        if self.site.is_empty() {
            return Err(ScenarioError::new("scenario site must not be empty"));
        }
        if let Some(m) = self.measure_from_s {
            if !m.is_finite() || m < 0.0 {
                return Err(ScenarioError::new(format!(
                    "measure_from_s must be finite and >= 0, got {m}"
                )));
            }
        }
        if self.events.is_empty() {
            return Err(ScenarioError::new(
                "scenario must contain at least one event",
            ));
        }
        for (i, ev) in self.events.iter().enumerate() {
            finite_nonneg(i, "at_s", ev.at_s)?;
            match &ev.action {
                ScenarioAction::Flap {
                    count,
                    period_s,
                    down_s,
                    jitter_s,
                    ..
                } => {
                    if *count == 0 {
                        return Err(ScenarioError::at(i, "flap count must be >= 1"));
                    }
                    finite_nonneg(i, "period_s", *period_s)?;
                    finite_nonneg(i, "down_s", *down_s)?;
                    finite_nonneg(i, "jitter_s", *jitter_s)?;
                    if *down_s + *jitter_s > *period_s {
                        return Err(ScenarioError::at(
                            i,
                            format!(
                                "flap cycles overlap: down_s + jitter_s = {} > period_s = {period_s}",
                                down_s + jitter_s
                            ),
                        ));
                    }
                }
                ScenarioAction::Drain {
                    ttl_s,
                    shutdown_after_s,
                    ..
                } => {
                    finite_nonneg(i, "ttl_s", *ttl_s)?;
                    finite_nonneg(i, "shutdown_after_s", *shutdown_after_s)?;
                }
                ScenarioAction::React {
                    stagger_s: Some(st),
                    ..
                } => {
                    finite_nonneg(i, "stagger_s", *st)?;
                }
                ScenarioAction::React {
                    stagger_s: None, ..
                } => {}
                ScenarioAction::Surge {
                    factor,
                    ramp_s,
                    duration_s,
                    ..
                } => {
                    finite_nonneg(i, "factor", *factor)?;
                    finite_nonneg(i, "ramp_s", *ramp_s)?;
                    finite_nonneg(i, "duration_s", *duration_s)?;
                }
                ScenarioAction::DemandShift { factor, .. }
                | ScenarioAction::CapacityChange { factor, .. } => {
                    finite_nonneg(i, "factor", *factor)?;
                }
                ScenarioAction::Scrub {
                    capacity_factor,
                    duration_s,
                } => {
                    finite_nonneg(i, "capacity_factor", *capacity_factor)?;
                    finite_nonneg(i, "duration_s", *duration_s)?;
                }
                ScenarioAction::GracefulRestart { restart_s, .. } => {
                    finite_nonneg(i, "restart_s", *restart_s)?;
                }
                ScenarioAction::NotifyReset { code, .. } if !(1..=6).contains(code) => {
                    return Err(ScenarioError::at(
                        i,
                        format!(
                            "NOTIFICATION error code must be 1..=6 (RFC 4271 §4.5), got {code}"
                        ),
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Whether any event is a session-level action ([`ScenarioAction::is_session_action`]).
    /// The bench matrix runs such scenarios under both session models —
    /// the abstract approximation and the message-level FSMs — so the
    /// resilience matrix shows what the approximation misses.
    pub fn uses_session_actions(&self) -> bool {
        self.events.iter().any(|e| e.action.is_session_action())
    }

    /// Convention: scenarios named `damping-*` are run with route-flap
    /// damping enabled (the catalog's damping-interaction studies).
    pub fn wants_damping(&self) -> bool {
        self.name.starts_with("damping-")
    }

    /// The measurement anchor in seconds (see `measure_from_s`).
    pub fn t_fail_s(&self) -> f64 {
        if let Some(m) = self.measure_from_s {
            return m;
        }
        self.events
            .iter()
            .find(|e| e.action.is_impactful())
            .or(self.events.first())
            .map(|e| e.at_s)
            .unwrap_or(10.0)
    }

    /// The built-in baseline: the paper's hard-coded site failure,
    /// expressed as a scenario. `flaps` withdraw/re-announce cycles on a
    /// fixed 30 s cadence (down 10 s), then the site fails at
    /// 10 s + 30 s × flaps, then the technique reacts `detection_delay_s`
    /// later. Compiling this replicates the legacy experiment loop's
    /// event schedule exactly — same events, same order, same timestamps.
    pub fn site_failure(detection_delay_s: f64, flaps: u32) -> Scenario {
        let mut events = Vec::new();
        for k in 0..flaps {
            let down = 10.0 + 30.0 * k as f64;
            events.push(ScenarioEvent {
                at_s: down,
                action: ScenarioAction::Withdraw {
                    site: "$site".into(),
                },
            });
            events.push(ScenarioEvent {
                at_s: down + 10.0,
                action: ScenarioAction::Announce {
                    site: "$site".into(),
                },
            });
        }
        let t_fail = 10.0 + 30.0 * flaps as f64;
        events.push(ScenarioEvent {
            at_s: t_fail,
            action: ScenarioAction::SiteFail {
                site: "$site".into(),
                graceful: None,
            },
        });
        events.push(ScenarioEvent {
            at_s: t_fail + detection_delay_s,
            action: ScenarioAction::React {
                skip: 0,
                stagger_s: None,
            },
        });
        Scenario {
            name: "site-failure".into(),
            description: "The paper's baseline: the measured site dies and the technique reacts \
                          after the detection delay."
                .into(),
            site: "$site".into(),
            measure_from_s: Some(t_fail),
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_failure_builder_matches_legacy_schedule() {
        let s = Scenario::site_failure(2.0, 2);
        s.validate().unwrap();
        assert_eq!(s.t_fail_s(), 70.0);
        let times: Vec<f64> = s.events.iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![10.0, 20.0, 40.0, 50.0, 70.0, 72.0]);
        assert!(matches!(
            s.events[4].action,
            ScenarioAction::SiteFail { graceful: None, .. }
        ));
        assert!(matches!(
            s.events[5].action,
            ScenarioAction::React { skip: 0, .. }
        ));
    }

    #[test]
    fn json_round_trip_preserves_the_scenario() {
        let s = Scenario::site_failure(2.0, 1);
        let text = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str_typed(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn typed_parse_reports_field_paths() {
        let bad = r#"{
            "name": "x", "description": "", "site": "$site",
            "measure_from_s": null,
            "events": [ { "at_s": "ten", "action": { "React": { "skip": 0 } } } ]
        }"#;
        let err = serde_json::from_str_typed::<Scenario>(bad)
            .unwrap_err()
            .to_string();
        assert!(err.contains("events[0].at_s"), "{err}");
    }

    #[test]
    fn validation_catches_bad_flaps() {
        let mut s = Scenario::site_failure(2.0, 0);
        s.events.insert(
            0,
            ScenarioEvent {
                at_s: 5.0,
                action: ScenarioAction::Flap {
                    site: "$site".into(),
                    count: 3,
                    period_s: 10.0,
                    down_s: 9.0,
                    jitter_s: 2.0,
                },
            },
        );
        let err = s.validate().unwrap_err().to_string();
        assert!(
            err.contains("events[0]") && err.contains("overlap"),
            "{err}"
        );
    }

    #[test]
    fn scrub_is_a_mitigation_not_an_anchor() {
        let mut s = Scenario::site_failure(2.0, 0);
        s.measure_from_s = None;
        s.events.insert(
            0,
            ScenarioEvent {
                at_s: 5.0,
                action: ScenarioAction::Scrub {
                    capacity_factor: 1.5,
                    duration_s: 120.0,
                },
            },
        );
        s.validate().unwrap();
        // The anchor skips the scrub and lands on the SiteFail at 10.
        assert_eq!(s.t_fail_s(), 10.0);
        assert!(!s.events[0].action.is_impactful());

        s.events[0] = ScenarioEvent {
            at_s: 5.0,
            action: ScenarioAction::Scrub {
                capacity_factor: -1.0,
                duration_s: 120.0,
            },
        };
        let err = s.validate().unwrap_err().to_string();
        assert!(
            err.contains("events[0]") && err.contains("capacity_factor"),
            "{err}"
        );
    }

    #[test]
    fn session_actions_validate_and_classify() {
        let mut s = Scenario::site_failure(2.0, 0);
        assert!(!s.uses_session_actions());
        assert!(!s.wants_damping());
        s.events.insert(
            0,
            ScenarioEvent {
                at_s: 5.0,
                action: ScenarioAction::NotifyReset {
                    site: "$site".into(),
                    link: 0,
                    code: 6,
                },
            },
        );
        s.validate().unwrap();
        assert!(s.uses_session_actions());
        // Code 0 and 7 are outside RFC 4271 §4.5.
        for bad in [0u8, 7] {
            s.events[0] = ScenarioEvent {
                at_s: 5.0,
                action: ScenarioAction::NotifyReset {
                    site: "$site".into(),
                    link: 0,
                    code: bad,
                },
            };
            let err = s.validate().unwrap_err().to_string();
            assert!(err.contains("error code"), "{err}");
        }
        s.events[0] = ScenarioEvent {
            at_s: 5.0,
            action: ScenarioAction::GracefulRestart {
                site: "$site".into(),
                restart_s: f64::NAN,
            },
        };
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("restart_s"), "{err}");

        s.name = "damping-storm".into();
        assert!(s.wants_damping());

        // Impact classification: half-open and hijack take service away;
        // graceful restart and a noticed reset do not.
        let site = || "$site".to_string();
        assert!(ScenarioAction::HalfOpen {
            site: site(),
            link: 0
        }
        .is_impactful());
        assert!(ScenarioAction::HijackAnnounce {
            site: site(),
            link: 0
        }
        .is_impactful());
        assert!(!ScenarioAction::GracefulRestart {
            site: site(),
            restart_s: 120.0
        }
        .is_impactful());
        assert!(!ScenarioAction::NotifyReset {
            site: site(),
            link: 0,
            code: 6
        }
        .is_impactful());
    }

    #[test]
    fn measurement_anchor_prefers_impactful_events() {
        let mut s = Scenario::site_failure(2.0, 1);
        s.measure_from_s = None;
        // Flaps at 10/20 come first, but the anchor is the SiteFail at 40.
        assert_eq!(s.t_fail_s(), 40.0);
    }
}
