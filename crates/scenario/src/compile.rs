//! Scenario compilation: declarative script → flat, concrete fault ops.
//!
//! Compilation resolves site names against the CDN deployment, link
//! indices against the topology's adjacency lists, and regions against the
//! generator's region table; expands flap sequences (drawing jitter from
//! the testbed RNG's named streams); and lowers every action to a
//! [`FaultOp`] the experiment loop can apply directly. The output order is
//! the script order (expansions in cycle order), which the experiment
//! preserves when scheduling — the event engine breaks timestamp ties
//! FIFO, so authors control same-instant ordering by event order.
//!
//! Purity: the only inputs are the scenario, the testbed (topology + CDN,
//! themselves pure functions of the seed), the measured site, and the
//! config's default failure mode. No clocks, no global state — the same
//! cell compiles to the same byte sequence on every process of a
//! distributed run.

use bobw_event::{RngFactory, SimDuration};
use bobw_net::NodeId;
use bobw_topology::{CdnDeployment, SiteId, Topology, REGIONS};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::model::{Scenario, ScenarioAction, ScenarioError};

/// One concrete injectable operation, resolved against a testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultOp {
    /// Withdraw every prefix the node currently originates.
    Withdraw { node: NodeId },
    /// Re-announce the node's original (phase-1) advertisements.
    Announce { node: NodeId },
    /// Data plane down; graceful → withdraw all, else silent link crash.
    SiteFail { node: NodeId, graceful: bool },
    /// Data plane up, links restored, original advertisements replayed.
    SiteRestore { node: NodeId },
    /// Silently fail each (a, b) link.
    CutLinks { pairs: Vec<(NodeId, NodeId)> },
    /// Restore each (a, b) link.
    RestoreLinks { pairs: Vec<(NodeId, NodeId)> },
    /// Bounce the BGP session on one link (down + up, same instant).
    SessionReset { node: NodeId, peer: NodeId },
    /// Half-open session: `peer`'s side silently dies and purges; `node`
    /// keeps advertising until its hold timer expires.
    HalfOpen { node: NodeId, peer: NodeId },
    /// Graceful restart (RFC 4724): `node`'s sessions all drop but
    /// forwarding is retained; message-level neighbors keep the learned
    /// routes as stale for up to `restart`.
    GracefulRestart { node: NodeId, restart: SimDuration },
    /// NOTIFICATION-triggered reset of the (node, peer) session with RFC
    /// 4271 error `code`; both ends purge, then reconnect.
    NotifyReset {
        node: NodeId,
        peer: NodeId,
        code: u8,
    },
    /// `node` originates `victim`'s prefixes as its own (origin hijack).
    Hijack { node: NodeId, victim: NodeId },
    /// Withdraw the node's prefixes and DNS-de-steer the site's clients,
    /// each re-resolving within `ttl`.
    Drain {
        node: NodeId,
        site: SiteId,
        ttl: SimDuration,
    },
    /// Data plane down with no control-plane action (the tail end of a
    /// drain: routes are already withdrawn when the machines power off).
    SiteDark { node: NodeId },
    /// Fire the technique's reaction, minus its first `skip` actions.
    /// With `stagger` set, one action fires now and the rest roll out one
    /// every `stagger` (a staged rollout); `None` fires all at once.
    React {
        skip: usize,
        stagger: Option<SimDuration>,
    },
    /// Demand surge starting at the event time (region is an index into
    /// [`REGIONS`], `None` = global). Traffic layer only; a no-op when the
    /// experiment runs without traffic.
    Surge {
        region: Option<usize>,
        factor: f64,
        ramp: SimDuration,
        duration: SimDuration,
    },
    /// Permanent multiplicative demand shift for one region (index into
    /// [`REGIONS`]). Traffic layer only.
    DemandShift { region: usize, factor: f64 },
    /// Scale a site's serving capacity by `factor`. Traffic layer only.
    CapacityChange { site: SiteId, factor: f64 },
    /// DDoS scrubbing online for `duration`: per-tick overload diverts to
    /// a pool of `capacity_factor × total capacity` before shedding.
    /// Traffic layer only.
    Scrub {
        capacity_factor: f64,
        duration: SimDuration,
    },
}

/// A fault op at an offset from the scenario epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledEvent {
    pub at: SimDuration,
    pub op: FaultOp,
}

/// A scenario resolved against one testbed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledScenario {
    pub name: String,
    /// The measured site after `$site` substitution.
    pub measure_site: SiteId,
    /// Measurement anchor relative to the scenario epoch.
    pub t_fail_offset: SimDuration,
    pub events: Vec<CompiledEvent>,
}

impl CompiledScenario {
    /// Whether any op needs the DNS drain machinery (the experiment only
    /// builds the authoritative + per-target resolve state when so).
    pub fn has_drain(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.op, FaultOp::Drain { .. }))
    }
}

/// Resolves a scenario site name: `"$site"` → the cell's measured site.
fn resolve_site(
    event: usize,
    name: &str,
    measured: SiteId,
    cdn: &CdnDeployment,
) -> Result<SiteId, ScenarioError> {
    if name == "$site" {
        return Ok(measured);
    }
    cdn.by_name(name)
        .ok_or_else(|| ScenarioError::at(event, format!("unknown site {name:?}")))
}

/// Resolves a region name into its [`REGIONS`] index.
fn resolve_region(event: usize, name: &str) -> Result<usize, ScenarioError> {
    REGIONS
        .iter()
        .position(|r| r.name == name)
        .ok_or_else(|| ScenarioError::at(event, format!("unknown region {name:?}")))
}

/// Resolves a link index into the site node's adjacency list.
fn resolve_link(
    event: usize,
    topo: &Topology,
    node: NodeId,
    link: usize,
) -> Result<NodeId, ScenarioError> {
    let neighbors = topo.neighbors(node);
    neighbors.get(link).map(|a| a.peer).ok_or_else(|| {
        ScenarioError::at(
            event,
            format!(
                "link index {link} out of range: node {node} has {} links",
                neighbors.len()
            ),
        )
    })
}

/// Every topology link with exactly one endpoint in the named region,
/// as (low, high) node pairs in sorted order — the deterministic cut set
/// of a regional partition.
fn region_cut(
    event: usize,
    topo: &Topology,
    region: &str,
) -> Result<Vec<(NodeId, NodeId)>, ScenarioError> {
    let idx = REGIONS
        .iter()
        .position(|r| r.name == region)
        .ok_or_else(|| ScenarioError::at(event, format!("unknown region {region:?}")))?;
    let mut pairs = BTreeSet::new();
    for node in topo.nodes() {
        let a_in = node.region == idx;
        for adj in topo.neighbors(node.id) {
            let b_in = topo.node(adj.peer).region == idx;
            if a_in != b_in {
                let (lo, hi) = if node.id <= adj.peer {
                    (node.id, adj.peer)
                } else {
                    (adj.peer, node.id)
                };
                pairs.insert((lo, hi));
            }
        }
    }
    if pairs.is_empty() {
        return Err(ScenarioError::at(
            event,
            format!("region {region:?} has no crossing links in this topology"),
        ));
    }
    Ok(pairs.into_iter().collect())
}

/// Compiles a scenario against one testbed cell.
///
/// `measured` is the cell's failed/measured site (binds `"$site"`);
/// `default_graceful` is the experiment config's failure mode, used by
/// `SiteFail` events that leave `graceful` unset.
pub fn compile(
    scenario: &Scenario,
    topo: &Topology,
    cdn: &CdnDeployment,
    rng: &RngFactory,
    measured: SiteId,
    default_graceful: bool,
) -> Result<CompiledScenario, ScenarioError> {
    scenario.validate()?;
    let mut events = Vec::with_capacity(scenario.events.len());
    let mut push = |at_s: f64, op: FaultOp| {
        events.push(CompiledEvent {
            at: SimDuration::from_secs_f64(at_s),
            op,
        });
    };
    for (i, ev) in scenario.events.iter().enumerate() {
        match &ev.action {
            ScenarioAction::Withdraw { site } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                push(ev.at_s, FaultOp::Withdraw { node });
            }
            ScenarioAction::Announce { site } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                push(ev.at_s, FaultOp::Announce { node });
            }
            ScenarioAction::SiteFail { site, graceful } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                push(
                    ev.at_s,
                    FaultOp::SiteFail {
                        node,
                        graceful: graceful.unwrap_or(default_graceful),
                    },
                );
            }
            ScenarioAction::SiteRestore { site } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                push(ev.at_s, FaultOp::SiteRestore { node });
            }
            ScenarioAction::LinkDown { site, link } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                let peer = resolve_link(i, topo, node, *link)?;
                push(
                    ev.at_s,
                    FaultOp::CutLinks {
                        pairs: vec![(node, peer)],
                    },
                );
            }
            ScenarioAction::LinkUp { site, link } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                let peer = resolve_link(i, topo, node, *link)?;
                push(
                    ev.at_s,
                    FaultOp::RestoreLinks {
                        pairs: vec![(node, peer)],
                    },
                );
            }
            ScenarioAction::SessionReset { site, link } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                let peer = resolve_link(i, topo, node, *link)?;
                push(ev.at_s, FaultOp::SessionReset { node, peer });
            }
            ScenarioAction::HalfOpen { site, link } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                let peer = resolve_link(i, topo, node, *link)?;
                push(ev.at_s, FaultOp::HalfOpen { node, peer });
            }
            ScenarioAction::GracefulRestart { site, restart_s } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                push(
                    ev.at_s,
                    FaultOp::GracefulRestart {
                        node,
                        restart: SimDuration::from_secs_f64(*restart_s),
                    },
                );
            }
            ScenarioAction::NotifyReset { site, link, code } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                let peer = resolve_link(i, topo, node, *link)?;
                push(
                    ev.at_s,
                    FaultOp::NotifyReset {
                        node,
                        peer,
                        code: *code,
                    },
                );
            }
            ScenarioAction::HijackAnnounce { site, link } => {
                // The neighbor across the link is the hijacker; the site is
                // the victim whose prefixes it forges.
                let victim = cdn.node(resolve_site(i, site, measured, cdn)?);
                let hijacker = resolve_link(i, topo, victim, *link)?;
                push(
                    ev.at_s,
                    FaultOp::Hijack {
                        node: hijacker,
                        victim,
                    },
                );
            }
            ScenarioAction::Flap {
                site,
                count,
                period_s,
                down_s,
                jitter_s,
            } => {
                let node = cdn.node(resolve_site(i, site, measured, cdn)?);
                // One jitter stream per scenario event, advanced per cycle:
                // deterministic in ⟨seed, event index, cycle⟩, identical on
                // every process of a distributed run.
                let mut r = rng.stream("scenario-flap", i as u64);
                for cycle in 0..*count {
                    let jitter = if *jitter_s > 0.0 {
                        r.gen_range(0.0..*jitter_s)
                    } else {
                        0.0
                    };
                    let down = ev.at_s + *period_s * cycle as f64 + jitter;
                    push(down, FaultOp::Withdraw { node });
                    push(down + *down_s, FaultOp::Announce { node });
                }
            }
            ScenarioAction::Partition { region } => {
                let pairs = region_cut(i, topo, region)?;
                push(ev.at_s, FaultOp::CutLinks { pairs });
            }
            ScenarioAction::HealPartition { region } => {
                let pairs = region_cut(i, topo, region)?;
                push(ev.at_s, FaultOp::RestoreLinks { pairs });
            }
            ScenarioAction::Drain {
                site,
                ttl_s,
                shutdown_after_s,
            } => {
                let site_id = resolve_site(i, site, measured, cdn)?;
                let node = cdn.node(site_id);
                push(
                    ev.at_s,
                    FaultOp::Drain {
                        node,
                        site: site_id,
                        ttl: SimDuration::from_secs_f64(*ttl_s),
                    },
                );
                push(ev.at_s + *shutdown_after_s, FaultOp::SiteDark { node });
            }
            ScenarioAction::React { skip, stagger_s } => {
                push(
                    ev.at_s,
                    FaultOp::React {
                        skip: *skip,
                        stagger: stagger_s.map(SimDuration::from_secs_f64),
                    },
                );
            }
            ScenarioAction::Surge {
                region,
                factor,
                ramp_s,
                duration_s,
            } => {
                let region = match region {
                    None => None,
                    Some(name) => Some(resolve_region(i, name)?),
                };
                push(
                    ev.at_s,
                    FaultOp::Surge {
                        region,
                        factor: *factor,
                        ramp: SimDuration::from_secs_f64(*ramp_s),
                        duration: SimDuration::from_secs_f64(*duration_s),
                    },
                );
            }
            ScenarioAction::DemandShift { region, factor } => {
                let region = resolve_region(i, region)?;
                push(
                    ev.at_s,
                    FaultOp::DemandShift {
                        region,
                        factor: *factor,
                    },
                );
            }
            ScenarioAction::CapacityChange { site, factor } => {
                let site = resolve_site(i, site, measured, cdn)?;
                push(
                    ev.at_s,
                    FaultOp::CapacityChange {
                        site,
                        factor: *factor,
                    },
                );
            }
            ScenarioAction::Scrub {
                capacity_factor,
                duration_s,
            } => {
                push(
                    ev.at_s,
                    FaultOp::Scrub {
                        capacity_factor: *capacity_factor,
                        duration: SimDuration::from_secs_f64(*duration_s),
                    },
                );
            }
        }
    }
    Ok(CompiledScenario {
        name: scenario.name.clone(),
        measure_site: measured,
        t_fail_offset: SimDuration::from_secs_f64(scenario.t_fail_s()),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ScenarioEvent;
    use bobw_topology::{generate, GenConfig};

    fn testbed() -> (Topology, CdnDeployment, RngFactory) {
        let rng = RngFactory::new(7);
        let (topo, cdn) = generate(&GenConfig::small(), &rng);
        (topo, cdn, rng)
    }

    #[test]
    fn baseline_compiles_to_the_legacy_schedule() {
        let (topo, cdn, rng) = testbed();
        let site = cdn.by_name("bos").unwrap();
        let c = compile(
            &Scenario::site_failure(2.0, 1),
            &topo,
            &cdn,
            &rng,
            site,
            true,
        )
        .unwrap();
        assert_eq!(c.measure_site, site);
        assert_eq!(c.t_fail_offset, SimDuration::from_secs(40));
        let node = cdn.node(site);
        assert_eq!(c.events.len(), 4);
        assert_eq!(c.events[0].at, SimDuration::from_secs(10));
        assert_eq!(c.events[0].op, FaultOp::Withdraw { node });
        assert_eq!(c.events[1].at, SimDuration::from_secs(20));
        assert_eq!(c.events[1].op, FaultOp::Announce { node });
        assert_eq!(c.events[2].at, SimDuration::from_secs(40));
        assert_eq!(
            c.events[2].op,
            FaultOp::SiteFail {
                node,
                graceful: true
            }
        );
        assert_eq!(c.events[3].at, SimDuration::from_secs(42));
        assert_eq!(
            c.events[3].op,
            FaultOp::React {
                skip: 0,
                stagger: None
            }
        );
    }

    #[test]
    fn compilation_is_deterministic_across_independent_testbeds() {
        // Two separately-built same-seed testbeds (as a coordinator and a
        // remote worker would hold) compile any scenario, including one
        // with RNG-jittered flaps, to byte-identical event lists.
        let mut scenario = Scenario::site_failure(2.0, 0);
        scenario.events.insert(
            0,
            ScenarioEvent {
                at_s: 2.0,
                action: ScenarioAction::Flap {
                    site: "$site".into(),
                    count: 3,
                    period_s: 20.0,
                    down_s: 5.0,
                    jitter_s: 4.0,
                },
            },
        );
        let dump = |c: &CompiledScenario| serde_json::to_string(c).unwrap();
        let (topo_a, cdn_a, rng_a) = testbed();
        let (topo_b, cdn_b, rng_b) = testbed();
        let site = cdn_a.by_name("sea1").unwrap();
        let a = compile(&scenario, &topo_a, &cdn_a, &rng_a, site, true).unwrap();
        let b = compile(&scenario, &topo_b, &cdn_b, &rng_b, site, true).unwrap();
        assert_eq!(dump(&a), dump(&b));
        // And the jitter actually jittered: cycles are not exactly 20 s apart.
        let downs: Vec<f64> = a
            .events
            .iter()
            .filter(|e| matches!(e.op, FaultOp::Withdraw { .. }))
            .map(|e| e.at.as_secs_f64())
            .collect();
        assert_eq!(downs.len(), 3);
        assert!(
            (downs[1] - downs[0] - 20.0).abs() > 1e-9 || (downs[2] - downs[1] - 20.0).abs() > 1e-9,
            "jitter drew zero twice: {downs:?}"
        );
    }

    #[test]
    fn partition_cuts_exactly_the_region_crossing_links() {
        let (topo, cdn, rng) = testbed();
        let scenario = Scenario {
            name: "p".into(),
            description: String::new(),
            site: "sea1".into(),
            measure_from_s: Some(10.0),
            events: vec![ScenarioEvent {
                at_s: 10.0,
                action: ScenarioAction::Partition {
                    region: "seattle".into(),
                },
            }],
        };
        let site = cdn.by_name("sea1").unwrap();
        let c = compile(&scenario, &topo, &cdn, &rng, site, true).unwrap();
        let FaultOp::CutLinks { pairs } = &c.events[0].op else {
            panic!("expected CutLinks, got {:?}", c.events[0].op);
        };
        let idx = REGIONS.iter().position(|r| r.name == "seattle").unwrap();
        assert!(!pairs.is_empty());
        let mut sorted = pairs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(&sorted, pairs, "pairs must be sorted and unique");
        for &(a, b) in pairs {
            let cross = (topo.node(a).region == idx) != (topo.node(b).region == idx);
            assert!(cross, "({a}, {b}) does not cross the seattle boundary");
        }
    }

    #[test]
    fn compile_errors_name_the_event() {
        let (topo, cdn, rng) = testbed();
        let site = cdn.by_name("bos").unwrap();
        let mut s = Scenario::site_failure(2.0, 0);
        s.events[0] = ScenarioEvent {
            at_s: 10.0,
            action: ScenarioAction::SiteFail {
                site: "atlantis".into(),
                graceful: None,
            },
        };
        let err = compile(&s, &topo, &cdn, &rng, site, true)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("events[0]") && err.contains("atlantis"),
            "{err}"
        );

        s.events[0] = ScenarioEvent {
            at_s: 10.0,
            action: ScenarioAction::LinkDown {
                site: "bos".into(),
                link: 10_000,
            },
        };
        let err = compile(&s, &topo, &cdn, &rng, site, true)
            .unwrap_err()
            .to_string();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn traffic_actions_compile_to_resolved_ops() {
        let (topo, cdn, rng) = testbed();
        let site = cdn.by_name("bos").unwrap();
        let s = Scenario {
            name: "traffic".into(),
            description: String::new(),
            site: "$site".into(),
            measure_from_s: Some(10.0),
            events: vec![
                ScenarioEvent {
                    at_s: 10.0,
                    action: ScenarioAction::Surge {
                        region: Some("seattle".into()),
                        factor: 3.0,
                        ramp_s: 20.0,
                        duration_s: 120.0,
                    },
                },
                ScenarioEvent {
                    at_s: 20.0,
                    action: ScenarioAction::DemandShift {
                        region: "boston".into(),
                        factor: 1.5,
                    },
                },
                ScenarioEvent {
                    at_s: 30.0,
                    action: ScenarioAction::CapacityChange {
                        site: "$site".into(),
                        factor: 0.5,
                    },
                },
                ScenarioEvent {
                    at_s: 40.0,
                    action: ScenarioAction::React {
                        skip: 1,
                        stagger_s: Some(5.0),
                    },
                },
                ScenarioEvent {
                    at_s: 50.0,
                    action: ScenarioAction::Scrub {
                        capacity_factor: 2.0,
                        duration_s: 90.0,
                    },
                },
            ],
        };
        let c = compile(&s, &topo, &cdn, &rng, site, true).unwrap();
        let sea = REGIONS.iter().position(|r| r.name == "seattle").unwrap();
        let bos = REGIONS.iter().position(|r| r.name == "boston").unwrap();
        assert_eq!(
            c.events[0].op,
            FaultOp::Surge {
                region: Some(sea),
                factor: 3.0,
                ramp: SimDuration::from_secs(20),
                duration: SimDuration::from_secs(120),
            }
        );
        assert_eq!(
            c.events[1].op,
            FaultOp::DemandShift {
                region: bos,
                factor: 1.5
            }
        );
        assert_eq!(
            c.events[2].op,
            FaultOp::CapacityChange { site, factor: 0.5 }
        );
        assert_eq!(
            c.events[3].op,
            FaultOp::React {
                skip: 1,
                stagger: Some(SimDuration::from_secs(5)),
            }
        );
        assert_eq!(
            c.events[4].op,
            FaultOp::Scrub {
                capacity_factor: 2.0,
                duration: SimDuration::from_secs(90),
            }
        );

        // Unknown regions are named in the error.
        let mut bad = s.clone();
        bad.events[1] = ScenarioEvent {
            at_s: 20.0,
            action: ScenarioAction::DemandShift {
                region: "oz".into(),
                factor: 1.5,
            },
        };
        let err = compile(&bad, &topo, &cdn, &rng, site, true)
            .unwrap_err()
            .to_string();
        assert!(err.contains("events[1]") && err.contains("oz"), "{err}");
    }

    #[test]
    fn session_actions_compile_to_resolved_ops() {
        let (topo, cdn, rng) = testbed();
        let site = cdn.by_name("bos").unwrap();
        let s = Scenario {
            name: "session-faults".into(),
            description: String::new(),
            site: "$site".into(),
            measure_from_s: Some(10.0),
            events: vec![
                ScenarioEvent {
                    at_s: 10.0,
                    action: ScenarioAction::HalfOpen {
                        site: "$site".into(),
                        link: 0,
                    },
                },
                ScenarioEvent {
                    at_s: 20.0,
                    action: ScenarioAction::GracefulRestart {
                        site: "$site".into(),
                        restart_s: 120.0,
                    },
                },
                ScenarioEvent {
                    at_s: 30.0,
                    action: ScenarioAction::NotifyReset {
                        site: "$site".into(),
                        link: 1,
                        code: 4,
                    },
                },
                ScenarioEvent {
                    at_s: 40.0,
                    action: ScenarioAction::HijackAnnounce {
                        site: "$site".into(),
                        link: 0,
                    },
                },
            ],
        };
        let c = compile(&s, &topo, &cdn, &rng, site, true).unwrap();
        let node = cdn.node(site);
        let peer0 = topo.neighbors(node)[0].peer;
        let peer1 = topo.neighbors(node)[1].peer;
        assert_eq!(c.events[0].op, FaultOp::HalfOpen { node, peer: peer0 });
        assert_eq!(
            c.events[1].op,
            FaultOp::GracefulRestart {
                node,
                restart: SimDuration::from_secs(120),
            }
        );
        assert_eq!(
            c.events[2].op,
            FaultOp::NotifyReset {
                node,
                peer: peer1,
                code: 4,
            }
        );
        // The hijacker is the neighbor; the measured site is the victim.
        assert_eq!(
            c.events[3].op,
            FaultOp::Hijack {
                node: peer0,
                victim: node,
            }
        );

        // Bad link indices are compile-time errors, as for LinkDown.
        let mut bad = s.clone();
        bad.events[0] = ScenarioEvent {
            at_s: 10.0,
            action: ScenarioAction::HalfOpen {
                site: "$site".into(),
                link: 10_000,
            },
        };
        let err = compile(&bad, &topo, &cdn, &rng, site, true)
            .unwrap_err()
            .to_string();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn drain_expands_to_desteer_plus_shutdown() {
        let (topo, cdn, rng) = testbed();
        let site = cdn.by_name("ams").unwrap();
        let s = Scenario {
            name: "drain".into(),
            description: String::new(),
            site: "ams".into(),
            measure_from_s: None,
            events: vec![ScenarioEvent {
                at_s: 10.0,
                action: ScenarioAction::Drain {
                    site: "$site".into(),
                    ttl_s: 30.0,
                    shutdown_after_s: 60.0,
                },
            }],
        };
        let c = compile(&s, &topo, &cdn, &rng, site, true).unwrap();
        assert!(c.has_drain());
        assert_eq!(c.t_fail_offset, SimDuration::from_secs(10));
        assert_eq!(c.events.len(), 2);
        let node = cdn.node(site);
        assert_eq!(
            c.events[0].op,
            FaultOp::Drain {
                node,
                site,
                ttl: SimDuration::from_secs(30)
            }
        );
        assert_eq!(c.events[1].at, SimDuration::from_secs(70));
        assert_eq!(c.events[1].op, FaultOp::SiteDark { node });
    }
}
