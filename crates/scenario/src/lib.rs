//! Declarative fault scenarios: timed multi-failure scripts for the
//! failover experiment.
//!
//! The paper evaluates exactly one fault shape — a whole PEERING site dies
//! at t=0. A [`Scenario`] generalizes that into a named, timestamped
//! script of injectable events (link down/up, node crash/restore, BGP
//! session reset, flap sequences, regional partition, maintenance drain,
//! overlapping second failure, delayed/partial technique reaction),
//! authored as JSON and [compiled](compile) against a concrete testbed
//! into a flat list of [`FaultOp`]s that `bobw-core`'s experiment loop
//! schedules on its event engine. Every technique runs unmodified under
//! any scenario; the experiment's measured site, target selection, and
//! probing protocol are unchanged.
//!
//! Determinism: compilation is a pure function of
//! ⟨scenario, topology, CDN deployment, seed⟩ — flap jitter comes from the
//! testbed's named RNG streams, never from wall clocks — so a scenario
//! compiled on a `--jobs 1` run, a `--jobs N` run, or a remote
//! `--dispatch` worker yields a byte-identical event list, and therefore
//! byte-identical `results/*.json`.

mod compile;
mod model;

pub use compile::{compile, CompiledEvent, CompiledScenario, FaultOp};
pub use model::{Scenario, ScenarioAction, ScenarioError, ScenarioEvent};

use std::path::{Path, PathBuf};

/// Default on-disk catalog location, relative to the repository root.
pub const CATALOG_DIR: &str = "scenarios";

/// Loads and type-checks one scenario file. The error string carries the
/// JSON path of the offending node (`events[3].action: unknown variant …`)
/// via the vendored serde's `DeError`.
pub fn load_file(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let scenario: Scenario =
        serde_json::from_str_typed(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    scenario
        .validate()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(scenario)
}

/// Lists `*.json` files in a catalog directory, sorted by file name so
/// every run visits scenarios in the same order.
pub fn catalog_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    Ok(files)
}

/// Loads every scenario in a catalog directory.
pub fn load_catalog(dir: &Path) -> Result<Vec<Scenario>, String> {
    catalog_files(dir)?.iter().map(|p| load_file(p)).collect()
}
