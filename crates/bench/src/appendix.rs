//! The Appendix A/B studies (Figures 3 and 4): withdrawal convergence and
//! anycast announcement propagation, measured through route collectors with
//! the paper's estimators.
//!
//! The paper compares hypergiant prefixes (from RIS archives) against its
//! own PEERING announcements and finds both distributions similar. Here the
//! two populations are origins attached with the corresponding
//! [`OriginProfile`]s, each instance on an independently generated
//! Internet; the estimation pipeline (burst detection, per-peer
//! convergence/propagation) is identical to the paper's.

use std::sync::atomic::{AtomicUsize, Ordering};

use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
use bobw_core::{CellPerf, ExperimentConfig};
use bobw_event::RngFactory;
use bobw_measure::{
    estimate_event_time, per_peer_convergence, per_peer_propagation, pick_collector_peers,
    Collector,
};
use bobw_net::Prefix;
use bobw_topology::{attach_origin, generate, OriginProfile};
use serde::Serialize;

/// Stride used when picking collector peers (all tier-1s + every N-th
/// transit).
const COLLECTOR_STRIDE: usize = 3;

/// One population's convergence/propagation samples.
#[derive(Debug, Clone, Serialize)]
pub struct StudyOutput {
    pub population: String,
    /// Per ⟨collector peer, event⟩ seconds.
    pub samples: Vec<f64>,
    /// |estimated − true| event-time error per instance (validates the
    /// paper's burst estimator; they report ≤10 s at median).
    pub estimator_error_secs: Vec<f64>,
    pub instances: usize,
}

fn study_prefix() -> Prefix {
    "184.164.248.0/24".parse().expect("static")
}

/// Appendix A (Figure 3): unicast withdrawal convergence for one origin
/// profile across `instances` independently generated Internets.
pub fn withdrawal_convergence(
    cfg: &ExperimentConfig,
    timing: &BgpTimingConfig,
    profile: OriginProfile,
    instances: usize,
) -> StudyOutput {
    withdrawal_convergence_instrumented(cfg, timing, profile, instances, 1).0
}

/// [`withdrawal_convergence`] with the instance loop fanned over `jobs`
/// runner threads, plus per-instance perf counters. Instances are folded
/// in index order, so the output is identical for any `jobs` value.
pub fn withdrawal_convergence_instrumented(
    cfg: &ExperimentConfig,
    timing: &BgpTimingConfig,
    profile: OriginProfile,
    instances: usize,
    jobs: usize,
) -> (StudyOutput, Vec<CellPerf>) {
    let prefix = study_prefix();
    let idx: Vec<usize> = (0..instances).collect();
    // Monotone high-water-mark feedback across instances, same as the
    // experiment loop's queue hint: later cells preallocate what earlier
    // cells needed (relaxed atomics — the hint is approximate by design).
    let queue_hint = AtomicUsize::new(0);
    let per_instance = crate::runner::run_cells(&idx, jobs, |_, &i| {
        let wall_start = std::time::Instant::now();
        let rng = RngFactory::new(cfg.seed).derive("fig3", i as u64);
        let (mut topo, _cdn) = generate(&cfg.gen, &rng);
        let origin = attach_origin(&mut topo, profile, &rng, i as u64);
        let peers = pick_collector_peers(&topo, COLLECTOR_STRIDE);
        let collector = Collector::new(peers, &rng);

        let mut sim = Standalone::with_queue_capacity(
            &topo,
            timing.clone(),
            &rng,
            queue_hint.load(Ordering::Relaxed),
        );
        sim.announce(origin, prefix, OriginConfig::plain());
        sim.run_to_idle(cfg.max_events);
        sim.sim_mut().set_record_history(true);
        let t_withdraw = sim.now();
        sim.withdraw(origin, prefix);
        sim.run_to_idle(cfg.max_events);

        let feed = collector.feed(sim.sim().history(), prefix);
        // The paper estimates the withdrawal instant from the update burst
        // because it lacks ground truth for hypergiants; the simulator has
        // ground truth (as the paper does for its own PEERING events), so
        // convergence is measured from the true instant and the estimator
        // is validated on the side. In our denser-multihomed topologies the
        // burst estimator runs late (withdrawals only surface once path
        // exploration exhausts) — see EXPERIMENTS.md.
        let error = estimate_event_time(&feed, true)
            .map(|est| (est.as_nanos() as f64 - t_withdraw.as_nanos() as f64).abs() / 1e9);
        let samples: Vec<f64> = per_peer_convergence(&feed, t_withdraw)
            .into_iter()
            .map(|(_, d)| d.as_secs_f64())
            .collect();
        queue_hint.fetch_max(sim.peak_queue_depth(), Ordering::Relaxed);
        let perf = CellPerf {
            events_processed: sim.events_processed(),
            peak_queue_depth: sim.peak_queue_depth(),
            queue_capacity: sim.queue_capacity(),
            wall_micros: wall_start.elapsed().as_micros() as u64,
        };
        (samples, error, perf)
    });

    let mut samples = Vec::new();
    let mut errors = Vec::new();
    let mut perfs = Vec::with_capacity(instances);
    for (s, e, p) in per_instance {
        samples.extend(s);
        errors.extend(e);
        perfs.push(p);
    }
    (
        StudyOutput {
            population: format!("{profile:?}"),
            samples,
            estimator_error_secs: errors,
            instances,
        },
        perfs,
    )
}

/// Appendix B (Figure 4): anycast announcement propagation.
///
/// `origins_per_instance > 1` models the Manycast2-like population (the
/// same prefix announced from several independent origins at once);
/// `origins_per_instance == 1` with [`OriginProfile::PeeringTestbed`]
/// models the paper's own PEERING announcements.
pub fn announcement_propagation(
    cfg: &ExperimentConfig,
    timing: &BgpTimingConfig,
    profile: OriginProfile,
    origins_per_instance: usize,
    instances: usize,
) -> StudyOutput {
    announcement_propagation_instrumented(cfg, timing, profile, origins_per_instance, instances, 1)
        .0
}

/// [`announcement_propagation`] with the instance loop fanned over `jobs`
/// runner threads, plus per-instance perf counters. Instances are folded
/// in index order, so the output is identical for any `jobs` value.
pub fn announcement_propagation_instrumented(
    cfg: &ExperimentConfig,
    timing: &BgpTimingConfig,
    profile: OriginProfile,
    origins_per_instance: usize,
    instances: usize,
    jobs: usize,
) -> (StudyOutput, Vec<CellPerf>) {
    let prefix = study_prefix();
    let idx: Vec<usize> = (0..instances).collect();
    // See fig3: cross-instance queue high-water-mark feedback.
    let queue_hint = AtomicUsize::new(0);
    let per_instance = crate::runner::run_cells(&idx, jobs, |_, &i| {
        let wall_start = std::time::Instant::now();
        let rng = RngFactory::new(cfg.seed).derive("fig4", i as u64);
        let (mut topo, _cdn) = generate(&cfg.gen, &rng);
        let origins: Vec<_> = (0..origins_per_instance)
            .map(|k| attach_origin(&mut topo, profile, &rng, (i * 64 + k) as u64))
            .collect();
        let peers = pick_collector_peers(&topo, COLLECTOR_STRIDE);
        let collector = Collector::new(peers, &rng);

        let mut sim = Standalone::with_queue_capacity(
            &topo,
            timing.clone(),
            &rng,
            queue_hint.load(Ordering::Relaxed),
        );
        sim.sim_mut().set_record_history(true);
        let t_announce = sim.now();
        for o in &origins {
            sim.announce(*o, prefix, OriginConfig::plain());
        }
        sim.run_to_idle(cfg.max_events);

        let feed = collector.feed(sim.sim().history(), prefix);
        // Propagation measured from the true announcement instant; the
        // burst estimator (which the paper must rely on) is validated
        // separately — for fresh announcements it is accurate, because the
        // first updates cluster tightly.
        let error = estimate_event_time(&feed, false)
            .map(|est| (est.as_nanos() as f64 - t_announce.as_nanos() as f64).abs() / 1e9);
        let samples: Vec<f64> = per_peer_propagation(&feed, t_announce)
            .into_iter()
            .map(|(_, d)| d.as_secs_f64())
            .collect();
        queue_hint.fetch_max(sim.peak_queue_depth(), Ordering::Relaxed);
        let perf = CellPerf {
            events_processed: sim.events_processed(),
            peak_queue_depth: sim.peak_queue_depth(),
            queue_capacity: sim.queue_capacity(),
            wall_micros: wall_start.elapsed().as_micros() as u64,
        };
        (samples, error, perf)
    });

    let mut samples = Vec::new();
    let mut errors = Vec::new();
    let mut perfs = Vec::with_capacity(instances);
    for (s, e, p) in per_instance {
        samples.extend(s);
        errors.extend(e);
        perfs.push(p);
    }
    (
        StudyOutput {
            population: format!("{profile:?}x{origins_per_instance}"),
            samples,
            estimator_error_secs: errors,
            instances,
        },
        perfs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_measure::Cdf;

    fn quick_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(5);
        cfg.gen = bobw_topology::GenConfig::tiny();
        cfg
    }

    #[test]
    fn withdrawal_study_produces_samples() {
        let cfg = quick_cfg();
        let out = withdrawal_convergence(&cfg, &cfg.timing, OriginProfile::Hypergiant, 2);
        assert!(!out.samples.is_empty());
        assert!(out.samples.iter().all(|s| *s >= 0.0));
        // Samples measured from the true instant are positive and bounded
        // by the convergence window.
        for s in &out.samples {
            assert!(*s <= 1000.0);
        }
    }

    #[test]
    fn propagation_study_is_fast_scale() {
        let cfg = quick_cfg();
        let out = announcement_propagation(&cfg, &cfg.timing, OriginProfile::PeeringTestbed, 1, 2);
        assert!(!out.samples.is_empty());
        let cdf = Cdf::new(out.samples.clone());
        // Propagation is on the seconds scale, far below convergence.
        assert!(cdf.median().unwrap() < 60.0);
    }

    #[test]
    fn withdrawal_slower_than_propagation() {
        // The core Appendix A-vs-B relation, at tiny scale.
        let cfg = quick_cfg();
        let wd = withdrawal_convergence(&cfg, &cfg.timing, OriginProfile::PeeringTestbed, 2);
        let pr = announcement_propagation(&cfg, &cfg.timing, OriginProfile::PeeringTestbed, 1, 2);
        let wd_med = Cdf::new(wd.samples).median().unwrap();
        let pr_med = Cdf::new(pr.samples).median().unwrap();
        assert!(
            wd_med > 2.0 * pr_med,
            "withdrawal ({wd_med}s) should converge much slower than announcements \
             propagate ({pr_med}s)"
        );
    }
}
