//! # bobw-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2` | Figure 2 — reconnection & failover CDFs per technique |
//! | `table1` | Table 1 — traffic control under prepending |
//! | `table2` | Table 2 — control/availability/risk matrix |
//! | `fig3` | Appendix A / Figure 3 — withdrawal convergence |
//! | `fig4` | Appendix B / Figure 4 — announcement propagation |
//! | `fig5` | Appendix C.2 / Figure 5 — prepend 3 vs 5 |
//! | `appc1` | Appendix C.1 — divergence classification |
//! | `superprefix_survey` | §3 — covering-prefix survey pipeline |
//! | `unicast_dns` | §1/§2 — DNS-bound unicast failover baseline |
//! | `repro_all` | everything above, plus a markdown summary |
//! | `calibrate` | raw timing-model calibration check |
//!
//! Every binary accepts `--scale quick|eval|large` (default `eval`),
//! `--seed N`, `--jobs N` (worker threads, default: available
//! parallelism) and `--dispatch local|tcp://…|unix://…` (serve the cell
//! grid to remote `bobw-worker` processes — see EXPERIMENTS.md), and
//! writes machine-readable JSON next to its stdout report (under
//! `results/`). Results are byte-identical for any `--jobs` value and any
//! dispatch mode — see the [`runner`] module for how that is guaranteed.

use std::collections::BTreeMap;
use std::path::PathBuf;

use bobw_core::{analyze_divergence, ExperimentConfig, FailoverResult, Technique, Testbed};
use bobw_dist::{CellOutput, CellSpec};
use bobw_measure::{Cdf, WeightedCdf};
use serde::Serialize;

pub mod appendix;
pub mod runner;

pub use runner::{
    default_jobs, run_cells, run_failover_grid, run_failover_grid_dispatch, run_or_exit,
    CellRecord, Dispatch, PerfLog,
};

/// Experiment scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small topology, shortened probing — minutes of wall time.
    Quick,
    /// The paper-reproduction scale (default).
    Eval,
    /// Double-size robustness check.
    Large,
}

impl Scale {
    /// The scale's command-line name (also the `scale` field of
    /// `BENCH_*.json` perf logs).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Eval => "eval",
            Scale::Large => "large",
        }
    }

    pub fn config(self, seed: u64) -> ExperimentConfig {
        match self {
            Scale::Quick => ExperimentConfig::quick(seed),
            Scale::Eval => ExperimentConfig::eval(seed),
            Scale::Large => {
                let mut cfg = ExperimentConfig::eval(seed);
                cfg.gen = bobw_topology::GenConfig::large();
                cfg
            }
        }
    }
}

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    pub scale: Scale,
    pub seed: u64,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Worker threads for the experiment runner (default: available
    /// parallelism). Any value produces byte-identical result JSON.
    pub jobs: usize,
    /// Endpoint to serve cells on (`--dispatch tcp://…|unix://…` or
    /// `--listen …`). `None` (or `--dispatch local`) runs cells on `jobs`
    /// local threads. Either way the result JSON is byte-identical.
    pub listen: Option<String>,
    /// Fault-scenario catalog directory (`scenarios` bin only).
    pub catalog: PathBuf,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Eval,
            seed: 42,
            out_dir: PathBuf::from("results"),
            jobs: default_jobs(),
            listen: None,
            catalog: PathBuf::from(bobw_scenario::CATALOG_DIR),
        }
    }
}

impl Cli {
    /// Builds the dispatch mode selected on the command line. With
    /// `--dispatch <url>` this binds the coordinator and blocks batches on
    /// worker availability, so a hint telling the operator how to attach
    /// workers is printed. Exits on a malformed URL or a failed bind.
    pub fn dispatch(&self) -> Dispatch {
        match &self.listen {
            None => Dispatch::local(self.jobs),
            Some(arg) => {
                let d = Dispatch::from_arg(arg, self.jobs).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
                if let Some(ep) = d.endpoint() {
                    eprintln!(
                        "serving cells on {ep} — attach workers with: \
                         bobw-worker --connect {ep}  (or: bobw worker --connect {ep})"
                    );
                } else if matches!(d, Dispatch::Daemon { .. }) {
                    // Batches go to a persistent service with its own
                    // fleet; nothing to attach here.
                    eprintln!("submitting batches to the daemon at {arg}");
                }
                d
            }
        }
    }

    /// Applies the `BOBW_JOBS` / `BOBW_DISPATCH` environment overrides —
    /// the runner knobs for harnesses that own `argv` (the criterion
    /// benches, examples run under `cargo run --example`). Explicit
    /// `--jobs`/`--dispatch` flags win because [`parse_cli`] applies the
    /// environment before parsing. Malformed values warn and are ignored
    /// rather than aborting: a stray variable must not kill a bench run.
    pub fn apply_env(&mut self) {
        if let Ok(v) = std::env::var("BOBW_JOBS") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => self.jobs = n,
                _ => eprintln!("warning: ignoring BOBW_JOBS={v:?} (need an integer >= 1)"),
            }
        }
        if let Ok(v) = std::env::var("BOBW_DISPATCH") {
            self.listen = if v == "local" || v.is_empty() {
                None
            } else {
                Some(v)
            };
        }
    }
}

/// [`Dispatch`] for criterion benches, honoring `BOBW_JOBS` and
/// `BOBW_DISPATCH` (criterion owns `argv`, so the usual flags cannot reach
/// those harnesses). Defaults to one local worker thread — not available
/// parallelism — so microbenchmark timings stay comparable run to run
/// unless the operator explicitly opts into parallel or remote cells.
pub fn env_dispatch() -> Dispatch {
    let mut cli = Cli {
        jobs: 1,
        ..Cli::default()
    };
    cli.apply_env();
    cli.dispatch()
}

/// The jobs count criterion benches should pass to helpers that take a
/// plain thread count (`BOBW_JOBS`, default 1 — see [`env_dispatch`]).
pub fn env_jobs() -> usize {
    let mut cli = Cli {
        jobs: 1,
        ..Cli::default()
    };
    cli.apply_env();
    cli.jobs
}

/// Parses `--scale`, `--seed`, `--out`, `--jobs` from the process
/// arguments; exits with a usage message on unknown flags. `BOBW_JOBS`
/// and `BOBW_DISPATCH` seed the defaults (flags override).
pub fn parse_cli() -> Cli {
    let mut cli = Cli::default();
    cli.apply_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                cli.scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "eval" => Scale::Eval,
                    "large" => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?} (quick|eval|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                cli.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                cli.out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            "--jobs" => {
                cli.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs an integer >= 1");
                        std::process::exit(2);
                    });
            }
            "--dispatch" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!(
                        "--dispatch needs `local`, an endpoint URL (tcp://…|unix://…), \
                         or `daemon:<url>`"
                    );
                    std::process::exit(2);
                });
                cli.listen = if v == "local" { None } else { Some(v) };
            }
            "--listen" => {
                cli.listen = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--listen needs an endpoint URL (tcp://…|unix://…)");
                    std::process::exit(2);
                }));
            }
            "--catalog" => {
                cli.catalog = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--catalog needs a directory");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown flag {other:?}; supported: --scale --seed --out --jobs \
                     --dispatch --listen --catalog"
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

/// The checked-in perf baseline consulted for queue-preallocation hints.
pub const BASELINE_FILE: &str = "BENCH_baseline.json";

/// Reads per-technique queue-depth peaks from a `BENCH_*.json` perf log,
/// ignoring it entirely when it was measured at a different scale (a
/// quick-scale peak would under-allocate an eval run; an eval peak would
/// waste memory on a quick one). Missing or malformed files yield an
/// empty map — hints are an optimization, never a requirement.
pub fn load_queue_hints(path: &str, scale: Scale) -> BTreeMap<String, usize> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(root) = serde_json::from_str(&text) else {
        return BTreeMap::new();
    };
    if root.get("scale").and_then(serde::Value::as_str) != Some(scale.name()) {
        return BTreeMap::new();
    }
    let Some(cells) = root.get("cells").and_then(serde::Value::as_array) else {
        return BTreeMap::new();
    };
    let mut hints = BTreeMap::new();
    for cell in cells {
        let (Some(technique), Some(depth)) = (
            cell.get("technique").and_then(serde::Value::as_str),
            cell.get("peak_queue_depth").and_then(serde::Value::as_u64),
        ) else {
            continue;
        };
        let e = hints.entry(technique.to_string()).or_insert(0usize);
        *e = (*e).max(depth as usize);
    }
    hints
}

/// Builds the testbed for a CLI invocation, primed with the checked-in
/// baseline's per-technique queue peaks so the first cell of the run
/// preallocates its event queue too.
pub fn primed_testbed(cli: &Cli) -> Testbed {
    let mut tb = Testbed::new(cli.scale.config(cli.seed));
    tb.prime_queue_hints(load_queue_hints(BASELINE_FILE, cli.scale));
    tb
}

/// Writes a JSON result file under the CLI's output directory.
pub fn write_json<T: Serialize>(cli: &Cli, name: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all(&cli.out_dir) {
        eprintln!("warning: cannot create {}: {e}", cli.out_dir.display());
        return;
    }
    let path = cli.out_dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Runs one technique across every site of the testbed on `jobs` worker
/// threads, returning per-site results in site order (identical for any
/// `jobs` value).
pub fn run_technique_all_sites(
    testbed: &Testbed,
    technique: &Technique,
    jobs: usize,
) -> Vec<FailoverResult> {
    let (mut grouped, _) = run_failover_grid(testbed, std::slice::from_ref(technique), jobs);
    grouped.pop().expect("one technique in, one group out")
}

/// [`run_technique_all_sites`] over an explicit [`Dispatch`], also
/// returning the perf log.
pub fn run_technique_all_sites_dispatch(
    testbed: &Testbed,
    technique: &Technique,
    dispatch: &mut Dispatch,
) -> Result<(Vec<FailoverResult>, PerfLog), String> {
    let (mut grouped, log) =
        run_failover_grid_dispatch(testbed, std::slice::from_ref(technique), dispatch)?;
    Ok((grouped.pop().expect("one technique in, one group out"), log))
}

/// Aggregated series for one technique: reconnection and failover samples
/// across ⟨failed site, target⟩, as in Figure 2.
#[derive(Debug, Clone, Serialize)]
pub struct TechniqueSeries {
    pub technique: String,
    pub reconnection: Vec<f64>,
    pub failover: Vec<f64>,
    pub num_targets: usize,
    pub never_reconnected: usize,
    pub control_fraction_mean: f64,
}

impl TechniqueSeries {
    pub fn from_results(technique: &Technique, results: &[FailoverResult]) -> TechniqueSeries {
        let mut reconnection = Vec::new();
        let mut failover = Vec::new();
        let mut num_targets = 0;
        let mut never = 0;
        let mut ctrl = 0.0;
        for r in results {
            reconnection.extend(r.reconnection_secs());
            failover.extend(r.failover_secs());
            num_targets += r.num_controllable;
            never += r
                .outcomes
                .iter()
                .filter(|o| o.reconnection.is_none())
                .count();
            ctrl += r.control_fraction();
        }
        TechniqueSeries {
            technique: technique.name(),
            reconnection,
            failover,
            num_targets,
            never_reconnected: never,
            control_fraction_mean: if results.is_empty() {
                0.0
            } else {
                ctrl / results.len() as f64
            },
        }
    }

    pub fn reconnection_cdf(&self) -> Cdf {
        Cdf::new(self.reconnection.clone())
    }

    pub fn failover_cdf(&self) -> Cdf {
        Cdf::new(self.failover.clone())
    }
}

/// Demand-weighted series for one technique under the traffic layer:
/// reconnection samples carry each target's base demand weight (from
/// [`bobw_core::TrafficSummary::target_weights`]), so the CDFs answer
/// "how fast did the *traffic* come back" rather than "how fast did the
/// median probe target". Also carries the load-side observations — peak
/// post-event utilization and shed volume — that distinguish an absorbed
/// failure from an overload cascade.
///
/// This is a separate struct from [`TechniqueSeries`] on purpose: the
/// unweighted series feeds the checked-in paper figures and must stay
/// byte-stable.
#[derive(Debug, Clone, Serialize)]
pub struct WeightedTechniqueSeries {
    pub technique: String,
    /// `(reconnection_s, demand_weight)` per reconnected target, across
    /// every result (⟨failed site, target⟩ cells in site order).
    pub reconnection: Vec<(f64, f64)>,
    pub num_targets: usize,
    /// Total demand weight across measured targets.
    pub total_weight: f64,
    /// Demand weight that never reconnected within the probing window.
    pub never_reconnected_weight: f64,
    /// Worst post-event site utilization across results (load/capacity;
    /// > 1 means overload). `None` when no result carried a summary.
    pub peak_utilization: Option<f64>,
    /// Shed demand as a fraction of offered demand, pooled across results.
    pub shed_fraction: Option<f64>,
    /// DNS re-steers issued by the load-aware controller, pooled.
    pub resteers: Option<u64>,
}

impl WeightedTechniqueSeries {
    /// Aggregates traffic-enabled results. Results without a summary
    /// (traffic layer off) contribute unit weights, so the weighted CDF
    /// degrades to the unweighted one instead of silently dropping data.
    pub fn from_results(technique: &Technique, results: &[FailoverResult]) -> Self {
        let mut reconnection = Vec::new();
        let mut num_targets = 0;
        let mut total_weight = 0.0;
        let mut never_weight = 0.0;
        let mut peak: Option<f64> = None;
        let mut offered = 0.0;
        let mut shed = 0.0;
        let mut any_summary = false;
        let mut resteers = 0u64;
        for r in results {
            num_targets += r.num_controllable;
            let weights: Vec<f64> = match &r.traffic {
                Some(s) => {
                    any_summary = true;
                    offered += s.offered;
                    shed += s.shed;
                    resteers += s.resteers;
                    let p = s.peak_after();
                    peak = Some(peak.map_or(p, |q| q.max(p)));
                    s.target_weights.clone()
                }
                None => vec![1.0; r.outcomes.len()],
            };
            for (i, o) in r.outcomes.iter().enumerate() {
                let w = weights.get(i).copied().unwrap_or(1.0);
                total_weight += w;
                match o.reconnection {
                    Some(d) => reconnection.push((d.as_secs_f64(), w)),
                    None => never_weight += w,
                }
            }
        }
        WeightedTechniqueSeries {
            technique: technique.name(),
            reconnection,
            num_targets,
            total_weight,
            never_reconnected_weight: never_weight,
            peak_utilization: peak,
            shed_fraction: if any_summary && offered > 0.0 {
                Some(shed / offered)
            } else {
                None
            },
            resteers: any_summary.then_some(resteers),
        }
    }

    pub fn reconnection_cdf(&self) -> WeightedCdf {
        WeightedCdf::new(self.reconnection.clone())
    }

    /// Demand-weighted reconnected fraction: the share of traffic that
    /// found a serving site again within the window.
    pub fn reconnected_weight_fraction(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            1.0 - self.never_reconnected_weight / self.total_weight
        }
    }
}

/// Table 1 across all sites: per site, the not-anycast-routed fraction and
/// per-prepend steered fractions, in the paper's column order.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    pub site_order: Vec<String>,
    /// Site name → (not_anycast_fraction, [(prepends, steered_fraction)]).
    pub rows: BTreeMap<String, (f64, Vec<(u8, f64)>)>,
}

/// Computes Table 1 across sites on `jobs` worker threads.
pub fn compute_table1(testbed: &Testbed, prepend_counts: &[u8], jobs: usize) -> Table1 {
    compute_table1_dispatch(testbed, prepend_counts, &mut Dispatch::local(jobs))
        .expect("local dispatch cannot fail on well-formed cells")
        .0
}

/// [`compute_table1`] over an explicit [`Dispatch`], also returning the
/// perf log — control cells are counted in `PerfLog` under the pseudo
/// technique name `control`, mirroring the failover grid's records.
pub fn compute_table1_dispatch(
    testbed: &Testbed,
    prepend_counts: &[u8],
    dispatch: &mut Dispatch,
) -> Result<(Table1, PerfLog), String> {
    let site_order: Vec<String> = testbed
        .cdn
        .sites()
        .map(|s| testbed.cdn.name(s).to_string())
        .collect();
    let cells: Vec<CellSpec> = site_order
        .iter()
        .map(|name| CellSpec::Control {
            site: name.clone(),
            prepends: prepend_counts.to_vec(),
        })
        .collect();
    let started = std::time::Instant::now();
    let outputs = dispatch.run(testbed, &cells)?;
    let mut log = PerfLog::new(dispatch.workers());
    log.elapsed_micros = started.elapsed().as_micros() as u64;
    let mut rows = BTreeMap::new();
    for (i, out) in outputs.into_iter().enumerate() {
        let (r, perf) = match out {
            CellOutput::Control(r, perf) => (r, perf),
            CellOutput::Failover(..) => {
                return Err(format!("cell {i}: failover output for a control cell"));
            }
        };
        log.cells.push(CellRecord {
            technique: "control".to_string(),
            site: r.site_name.clone(),
            seed: testbed.cfg.seed,
            events_processed: perf.events_processed,
            peak_queue_depth: perf.peak_queue_depth,
            queue_capacity: perf.queue_capacity,
            wall_micros: perf.wall_micros,
        });
        rows.insert(r.site_name, (r.frac_not_anycast_routed, r.steered));
    }
    Ok((Table1 { site_order, rows }, log))
}

/// Convenience: the Appendix C.1 report for a named site.
pub fn compute_appc1(
    testbed: &Testbed,
    site_name: &str,
    prepends: u8,
) -> bobw_core::DivergenceReport {
    analyze_divergence(testbed, testbed.site(site_name), prepends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_core::run_failover;

    #[test]
    fn scale_configs_differ() {
        let q = Scale::Quick.config(1);
        let e = Scale::Eval.config(1);
        let l = Scale::Large.config(1);
        assert!(q.gen.num_ases() < e.gen.num_ases());
        assert!(e.gen.num_ases() < l.gen.num_ases());
        assert_eq!(q.seed, 1);
    }

    #[test]
    fn technique_series_aggregates() {
        let mut cfg = ExperimentConfig::quick(3);
        cfg.targets_per_site = 25;
        cfg.probe.duration = bobw_event::SimDuration::from_secs(60);
        let tb = Testbed::new(cfg);
        let t = Technique::Anycast;
        let r1 = run_failover(&tb, &t, tb.site("ams"));
        let r2 = run_failover(&tb, &t, tb.site("bos"));
        let n1 = r1.num_controllable;
        let s = TechniqueSeries::from_results(&t, &[r1, r2]);
        assert_eq!(s.technique, "anycast");
        assert!(s.num_targets >= n1);
        assert_eq!(s.reconnection.len() + s.never_reconnected, s.num_targets);
        assert!(!s.reconnection_cdf().is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut cfg = ExperimentConfig::quick(3);
        cfg.targets_per_site = 15;
        cfg.probe.duration = bobw_event::SimDuration::from_secs(45);
        let tb = Testbed::new(cfg);
        let t = Technique::ReactiveAnycast;
        let par = run_technique_all_sites(&tb, &t, 4);
        let site0 = tb.cdn.sites().next().unwrap();
        let seq = run_failover(&tb, &t, site0);
        assert_eq!(par[0].num_controllable, seq.num_controllable);
        assert_eq!(par[0].outcomes, seq.outcomes);
        assert_eq!(par.len(), tb.cdn.num_sites());
    }

    fn traffic_cfg(seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(seed);
        cfg.targets_per_site = 10;
        cfg.probe.duration = bobw_event::SimDuration::from_secs(45);
        cfg.traffic = Some(bobw_core::TrafficConfig::default());
        cfg
    }

    /// Traffic-enabled cells — summaries included — must be byte-identical
    /// for any `--jobs` value and over the socket dispatch path (one
    /// in-process worker attached to a loopback coordinator), same as the
    /// paper grid. Demand sampling and controller re-steer lags all live
    /// on named RNG streams, so scheduling must not perturb them.
    #[test]
    fn traffic_grid_is_byte_identical_across_jobs_and_dispatch() {
        let tb = Testbed::new(traffic_cfg(5));
        let t = Technique::ReactiveAnycast;
        let serial = run_technique_all_sites(&tb, &t, 1);
        let par = run_technique_all_sites(&tb, &t, 4);
        let serial_json = serde_json::to_string(&serial).unwrap();
        assert!(
            serial.iter().all(|r| r.traffic.is_some()),
            "traffic-enabled cells must carry summaries"
        );
        assert_eq!(
            serial_json,
            serde_json::to_string(&par).unwrap(),
            "jobs=1 and jobs=4 must serialize identically"
        );

        let mut dispatch = Dispatch::serve("tcp://127.0.0.1:0").unwrap();
        let ep = dispatch.endpoint().expect("serving").clone();
        let worker = std::thread::spawn(move || {
            let mut wc = bobw_dist::WorkerConfig::new(ep);
            wc.name = "loopback".to_string();
            bobw_dist::run_worker(&wc).expect("worker")
        });
        let (dist, _log) = run_technique_all_sites_dispatch(&tb, &t, &mut dispatch).unwrap();
        dispatch.finish();
        let done = worker.join().unwrap();
        assert!(done >= 1, "the worker must have executed cells");
        assert_eq!(
            serial_json,
            serde_json::to_string(&dist).unwrap(),
            "dispatched cells must serialize identically to local ones"
        );
    }

    /// The `daemon:` dispatch path — batches submitted as jobs to a
    /// persistent `bobw serve` daemon and streamed back — must also be
    /// byte-identical to a sequential local run.
    #[test]
    fn daemon_dispatch_matches_local() {
        let tb = Testbed::new(traffic_cfg(5));
        let t = Technique::ReactiveAnycast;
        let serial = run_technique_all_sites(&tb, &t, 1);
        let serial_json = serde_json::to_string(&serial).unwrap();

        let handle = bobw_serve::daemon::start(bobw_serve::ServeConfig::new(
            bobw_dist::Endpoint::parse("tcp://127.0.0.1:0").unwrap(),
        ))
        .expect("daemon");
        let ep = handle.endpoint().clone();
        std::thread::spawn(move || {
            let wc = bobw_dist::WorkerConfig::new(ep);
            let _ = bobw_dist::run_worker(&wc);
        });

        let mut dispatch = Dispatch::daemon(&handle.endpoint().to_string()).unwrap();
        let (dist, log) = run_technique_all_sites_dispatch(&tb, &t, &mut dispatch).unwrap();
        dispatch.finish();
        assert_eq!(
            serial_json,
            serde_json::to_string(&dist).unwrap(),
            "daemon-submitted cells must serialize identically to local ones"
        );
        assert_eq!(log.cells.len(), tb.cdn.num_sites());
        // The daemon and its worker are left running and detach with the
        // test process: quitting the daemon raises the process-wide
        // interrupt flag, which would poison concurrently running tests.
    }

    /// The traffic layer is observational: with it off the unweighted
    /// series (what feeds the checked-in `results/*.json`) must serialize
    /// byte-identically to a run with it on, and omitting `traffic`
    /// entirely is the checked-in baseline.
    #[test]
    fn traffic_none_keeps_unweighted_series_byte_identical() {
        let t = Technique::ReactiveAnycast;
        let mut base_cfg = traffic_cfg(5);
        base_cfg.traffic = None;
        let base = run_technique_all_sites(&Testbed::new(base_cfg), &t, 1);
        let with = run_technique_all_sites(&Testbed::new(traffic_cfg(5)), &t, 1);
        let s_base = TechniqueSeries::from_results(&t, &base);
        let s_with = TechniqueSeries::from_results(&t, &with);
        assert_eq!(
            serde_json::to_string(&s_base).unwrap(),
            serde_json::to_string(&s_with).unwrap(),
            "enabling the traffic layer must not move a single figure sample"
        );
        assert!(base.iter().all(|r| r.traffic.is_none()));
    }

    /// The weighted series carries the load columns and degrades sanely.
    #[test]
    fn weighted_series_aggregates_demand() {
        let tb = Testbed::new(traffic_cfg(5));
        let t = Technique::ReactiveAnycast;
        let results = run_technique_all_sites(&tb, &t, 2);
        let s = WeightedTechniqueSeries::from_results(&t, &results);
        assert_eq!(s.technique, "reactive-anycast");
        assert!(s.total_weight > 0.0);
        let f = s.reconnected_weight_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        assert!(s.peak_utilization.is_some());
        assert!(s.shed_fraction.is_some());
        assert!(s.resteers.is_some());
        // Weighted CDF mass matches the reconnected weight.
        let cdf = s.reconnection_cdf();
        assert!((cdf.total_weight() - (s.total_weight - s.never_reconnected_weight)).abs() < 1e-9);

        // Without summaries the weighted series falls back to unit
        // weights and reports no load columns.
        let mut cfg = traffic_cfg(5);
        cfg.traffic = None;
        let plain = run_technique_all_sites(&Testbed::new(cfg), &t, 1);
        let s0 = WeightedTechniqueSeries::from_results(&t, &plain);
        assert_eq!(s0.peak_utilization, None);
        assert_eq!(s0.shed_fraction, None);
        assert!((s0.total_weight - s0.num_targets as f64).abs() < 1e-9);
    }
}
