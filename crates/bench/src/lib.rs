//! # bobw-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2` | Figure 2 — reconnection & failover CDFs per technique |
//! | `table1` | Table 1 — traffic control under prepending |
//! | `table2` | Table 2 — control/availability/risk matrix |
//! | `fig3` | Appendix A / Figure 3 — withdrawal convergence |
//! | `fig4` | Appendix B / Figure 4 — announcement propagation |
//! | `fig5` | Appendix C.2 / Figure 5 — prepend 3 vs 5 |
//! | `appc1` | Appendix C.1 — divergence classification |
//! | `superprefix_survey` | §3 — covering-prefix survey pipeline |
//! | `unicast_dns` | §1/§2 — DNS-bound unicast failover baseline |
//! | `repro_all` | everything above, plus a markdown summary |
//! | `calibrate` | raw timing-model calibration check |
//!
//! Every binary accepts `--scale quick|eval|large` (default `eval`),
//! `--seed N`, `--jobs N` (worker threads, default: available
//! parallelism) and `--dispatch local|tcp://…|unix://…` (serve the cell
//! grid to remote `bobw-worker` processes — see EXPERIMENTS.md), and
//! writes machine-readable JSON next to its stdout report (under
//! `results/`). Results are byte-identical for any `--jobs` value and any
//! dispatch mode — see the [`runner`] module for how that is guaranteed.

use std::collections::BTreeMap;
use std::path::PathBuf;

use bobw_core::{analyze_divergence, ExperimentConfig, FailoverResult, Technique, Testbed};
use bobw_dist::{CellOutput, CellSpec};
use bobw_measure::Cdf;
use serde::Serialize;

pub mod appendix;
pub mod runner;

pub use runner::{
    default_jobs, run_cells, run_failover_grid, run_failover_grid_dispatch, run_or_exit,
    CellRecord, Dispatch, PerfLog,
};

/// Experiment scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small topology, shortened probing — minutes of wall time.
    Quick,
    /// The paper-reproduction scale (default).
    Eval,
    /// Double-size robustness check.
    Large,
}

impl Scale {
    /// The scale's command-line name (also the `scale` field of
    /// `BENCH_*.json` perf logs).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Eval => "eval",
            Scale::Large => "large",
        }
    }

    pub fn config(self, seed: u64) -> ExperimentConfig {
        match self {
            Scale::Quick => ExperimentConfig::quick(seed),
            Scale::Eval => ExperimentConfig::eval(seed),
            Scale::Large => {
                let mut cfg = ExperimentConfig::eval(seed);
                cfg.gen = bobw_topology::GenConfig::large();
                cfg
            }
        }
    }
}

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    pub scale: Scale,
    pub seed: u64,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Worker threads for the experiment runner (default: available
    /// parallelism). Any value produces byte-identical result JSON.
    pub jobs: usize,
    /// Endpoint to serve cells on (`--dispatch tcp://…|unix://…` or
    /// `--listen …`). `None` (or `--dispatch local`) runs cells on `jobs`
    /// local threads. Either way the result JSON is byte-identical.
    pub listen: Option<String>,
    /// Fault-scenario catalog directory (`scenarios` bin only).
    pub catalog: PathBuf,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Eval,
            seed: 42,
            out_dir: PathBuf::from("results"),
            jobs: default_jobs(),
            listen: None,
            catalog: PathBuf::from(bobw_scenario::CATALOG_DIR),
        }
    }
}

impl Cli {
    /// Builds the dispatch mode selected on the command line. With
    /// `--dispatch <url>` this binds the coordinator and blocks batches on
    /// worker availability, so a hint telling the operator how to attach
    /// workers is printed. Exits on a malformed URL or a failed bind.
    pub fn dispatch(&self) -> Dispatch {
        match &self.listen {
            None => Dispatch::local(self.jobs),
            Some(url) => {
                let d = Dispatch::serve(url).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
                let ep = d.endpoint().expect("serve mode has an endpoint");
                eprintln!(
                    "serving cells on {ep} — attach workers with: \
                     bobw-worker --connect {ep}  (or: bobw worker --connect {ep})"
                );
                d
            }
        }
    }
}

/// Parses `--scale`, `--seed`, `--out`, `--jobs` from the process
/// arguments; exits with a usage message on unknown flags.
pub fn parse_cli() -> Cli {
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                cli.scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "eval" => Scale::Eval,
                    "large" => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?} (quick|eval|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                cli.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                cli.out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            "--jobs" => {
                cli.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs an integer >= 1");
                        std::process::exit(2);
                    });
            }
            "--dispatch" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--dispatch needs `local` or an endpoint URL (tcp://…|unix://…)");
                    std::process::exit(2);
                });
                cli.listen = if v == "local" { None } else { Some(v) };
            }
            "--listen" => {
                cli.listen = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--listen needs an endpoint URL (tcp://…|unix://…)");
                    std::process::exit(2);
                }));
            }
            "--catalog" => {
                cli.catalog = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--catalog needs a directory");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown flag {other:?}; supported: --scale --seed --out --jobs \
                     --dispatch --listen --catalog"
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

/// The checked-in perf baseline consulted for queue-preallocation hints.
pub const BASELINE_FILE: &str = "BENCH_baseline.json";

/// Reads per-technique queue-depth peaks from a `BENCH_*.json` perf log,
/// ignoring it entirely when it was measured at a different scale (a
/// quick-scale peak would under-allocate an eval run; an eval peak would
/// waste memory on a quick one). Missing or malformed files yield an
/// empty map — hints are an optimization, never a requirement.
pub fn load_queue_hints(path: &str, scale: Scale) -> BTreeMap<String, usize> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(root) = serde_json::from_str(&text) else {
        return BTreeMap::new();
    };
    if root.get("scale").and_then(serde::Value::as_str) != Some(scale.name()) {
        return BTreeMap::new();
    }
    let Some(cells) = root.get("cells").and_then(serde::Value::as_array) else {
        return BTreeMap::new();
    };
    let mut hints = BTreeMap::new();
    for cell in cells {
        let (Some(technique), Some(depth)) = (
            cell.get("technique").and_then(serde::Value::as_str),
            cell.get("peak_queue_depth").and_then(serde::Value::as_u64),
        ) else {
            continue;
        };
        let e = hints.entry(technique.to_string()).or_insert(0usize);
        *e = (*e).max(depth as usize);
    }
    hints
}

/// Builds the testbed for a CLI invocation, primed with the checked-in
/// baseline's per-technique queue peaks so the first cell of the run
/// preallocates its event queue too.
pub fn primed_testbed(cli: &Cli) -> Testbed {
    let mut tb = Testbed::new(cli.scale.config(cli.seed));
    tb.prime_queue_hints(load_queue_hints(BASELINE_FILE, cli.scale));
    tb
}

/// Writes a JSON result file under the CLI's output directory.
pub fn write_json<T: Serialize>(cli: &Cli, name: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all(&cli.out_dir) {
        eprintln!("warning: cannot create {}: {e}", cli.out_dir.display());
        return;
    }
    let path = cli.out_dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Runs one technique across every site of the testbed on `jobs` worker
/// threads, returning per-site results in site order (identical for any
/// `jobs` value).
pub fn run_technique_all_sites(
    testbed: &Testbed,
    technique: &Technique,
    jobs: usize,
) -> Vec<FailoverResult> {
    let (mut grouped, _) = run_failover_grid(testbed, std::slice::from_ref(technique), jobs);
    grouped.pop().expect("one technique in, one group out")
}

/// [`run_technique_all_sites`] over an explicit [`Dispatch`], also
/// returning the perf log.
pub fn run_technique_all_sites_dispatch(
    testbed: &Testbed,
    technique: &Technique,
    dispatch: &mut Dispatch,
) -> Result<(Vec<FailoverResult>, PerfLog), String> {
    let (mut grouped, log) =
        run_failover_grid_dispatch(testbed, std::slice::from_ref(technique), dispatch)?;
    Ok((grouped.pop().expect("one technique in, one group out"), log))
}

/// Aggregated series for one technique: reconnection and failover samples
/// across ⟨failed site, target⟩, as in Figure 2.
#[derive(Debug, Clone, Serialize)]
pub struct TechniqueSeries {
    pub technique: String,
    pub reconnection: Vec<f64>,
    pub failover: Vec<f64>,
    pub num_targets: usize,
    pub never_reconnected: usize,
    pub control_fraction_mean: f64,
}

impl TechniqueSeries {
    pub fn from_results(technique: &Technique, results: &[FailoverResult]) -> TechniqueSeries {
        let mut reconnection = Vec::new();
        let mut failover = Vec::new();
        let mut num_targets = 0;
        let mut never = 0;
        let mut ctrl = 0.0;
        for r in results {
            reconnection.extend(r.reconnection_secs());
            failover.extend(r.failover_secs());
            num_targets += r.num_controllable;
            never += r
                .outcomes
                .iter()
                .filter(|o| o.reconnection.is_none())
                .count();
            ctrl += r.control_fraction();
        }
        TechniqueSeries {
            technique: technique.name(),
            reconnection,
            failover,
            num_targets,
            never_reconnected: never,
            control_fraction_mean: if results.is_empty() {
                0.0
            } else {
                ctrl / results.len() as f64
            },
        }
    }

    pub fn reconnection_cdf(&self) -> Cdf {
        Cdf::new(self.reconnection.clone())
    }

    pub fn failover_cdf(&self) -> Cdf {
        Cdf::new(self.failover.clone())
    }
}

/// Table 1 across all sites: per site, the not-anycast-routed fraction and
/// per-prepend steered fractions, in the paper's column order.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    pub site_order: Vec<String>,
    /// Site name → (not_anycast_fraction, [(prepends, steered_fraction)]).
    pub rows: BTreeMap<String, (f64, Vec<(u8, f64)>)>,
}

/// Computes Table 1 across sites on `jobs` worker threads.
pub fn compute_table1(testbed: &Testbed, prepend_counts: &[u8], jobs: usize) -> Table1 {
    compute_table1_dispatch(testbed, prepend_counts, &mut Dispatch::local(jobs))
        .expect("local dispatch cannot fail on well-formed cells")
        .0
}

/// [`compute_table1`] over an explicit [`Dispatch`], also returning the
/// perf log — control cells are counted in `PerfLog` under the pseudo
/// technique name `control`, mirroring the failover grid's records.
pub fn compute_table1_dispatch(
    testbed: &Testbed,
    prepend_counts: &[u8],
    dispatch: &mut Dispatch,
) -> Result<(Table1, PerfLog), String> {
    let site_order: Vec<String> = testbed
        .cdn
        .sites()
        .map(|s| testbed.cdn.name(s).to_string())
        .collect();
    let cells: Vec<CellSpec> = site_order
        .iter()
        .map(|name| CellSpec::Control {
            site: name.clone(),
            prepends: prepend_counts.to_vec(),
        })
        .collect();
    let started = std::time::Instant::now();
    let outputs = dispatch.run(testbed, &cells)?;
    let mut log = PerfLog::new(dispatch.workers());
    log.elapsed_micros = started.elapsed().as_micros() as u64;
    let mut rows = BTreeMap::new();
    for (i, out) in outputs.into_iter().enumerate() {
        let (r, perf) = match out {
            CellOutput::Control(r, perf) => (r, perf),
            CellOutput::Failover(..) => {
                return Err(format!("cell {i}: failover output for a control cell"));
            }
        };
        log.cells.push(CellRecord {
            technique: "control".to_string(),
            site: r.site_name.clone(),
            seed: testbed.cfg.seed,
            events_processed: perf.events_processed,
            peak_queue_depth: perf.peak_queue_depth,
            wall_micros: perf.wall_micros,
        });
        rows.insert(r.site_name, (r.frac_not_anycast_routed, r.steered));
    }
    Ok((Table1 { site_order, rows }, log))
}

/// Convenience: the Appendix C.1 report for a named site.
pub fn compute_appc1(
    testbed: &Testbed,
    site_name: &str,
    prepends: u8,
) -> bobw_core::DivergenceReport {
    analyze_divergence(testbed, testbed.site(site_name), prepends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_core::run_failover;

    #[test]
    fn scale_configs_differ() {
        let q = Scale::Quick.config(1);
        let e = Scale::Eval.config(1);
        let l = Scale::Large.config(1);
        assert!(q.gen.num_ases() < e.gen.num_ases());
        assert!(e.gen.num_ases() < l.gen.num_ases());
        assert_eq!(q.seed, 1);
    }

    #[test]
    fn technique_series_aggregates() {
        let mut cfg = ExperimentConfig::quick(3);
        cfg.targets_per_site = 25;
        cfg.probe.duration = bobw_event::SimDuration::from_secs(60);
        let tb = Testbed::new(cfg);
        let t = Technique::Anycast;
        let r1 = run_failover(&tb, &t, tb.site("ams"));
        let r2 = run_failover(&tb, &t, tb.site("bos"));
        let n1 = r1.num_controllable;
        let s = TechniqueSeries::from_results(&t, &[r1, r2]);
        assert_eq!(s.technique, "anycast");
        assert!(s.num_targets >= n1);
        assert_eq!(s.reconnection.len() + s.never_reconnected, s.num_targets);
        assert!(!s.reconnection_cdf().is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut cfg = ExperimentConfig::quick(3);
        cfg.targets_per_site = 15;
        cfg.probe.duration = bobw_event::SimDuration::from_secs(45);
        let tb = Testbed::new(cfg);
        let t = Technique::ReactiveAnycast;
        let par = run_technique_all_sites(&tb, &t, 4);
        let site0 = tb.cdn.sites().next().unwrap();
        let seq = run_failover(&tb, &t, site0);
        assert_eq!(par[0].num_controllable, seq.num_controllable);
        assert_eq!(par[0].outcomes, seq.outcomes);
        assert_eq!(par.len(), tb.cdn.num_sites());
    }
}
