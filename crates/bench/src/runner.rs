//! Deterministic parallel experiment runner.
//!
//! Every benchmark binary ultimately runs a grid of independent cells
//! ⟨technique, failed site, seed⟩. This module turns that grid into a work
//! queue fanned over `--jobs` OS threads while keeping the *output* exactly
//! what a sequential run would produce:
//!
//! - Cells are enumerated up front in a fixed order; workers pull cell
//!   *indices* from an atomic counter, so scheduling only decides *when* a
//!   cell runs, never *what* it computes.
//! - Each cell builds its own simulator from the shared immutable
//!   [`Testbed`] and derives its RNG streams from the cell's seed — no
//!   mutable state is shared between cells.
//! - Results are written back into a slot keyed by cell index, so
//!   aggregation order is independent of completion order.
//!
//! Together these guarantee that `--jobs N` produces byte-identical
//! `results/*.json` to `--jobs 1`. Host-dependent measurements (wall time)
//! are kept out of the result JSON entirely and flow through [`PerfLog`]
//! into `results/SUMMARY.md` and `BENCH_*.json` artifacts instead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use bobw_core::{FailoverResult, Technique, Testbed};
use bobw_dist::{
    execute_cell, install_sigint_handler, AuthSecret, CellOutput, CellSpec, Coordinator,
    CoordinatorConfig, Endpoint,
};
use bobw_serve::{JobState, ServeClient};
use serde::Serialize;

/// Number of worker threads to use when `--jobs` is not given.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every item of `items`, fanned across up to `jobs` worker
/// threads, returning results in item order regardless of scheduling.
///
/// `jobs <= 1` runs serially on the caller's thread (no thread setup, same
/// results). Workers claim items through a shared atomic cursor, so an
/// expensive item does not hold up the queue behind it. If `f` panics the
/// panic is propagated to the caller once the remaining workers finish
/// their current items.
pub fn run_cells<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // The receiver outlives the workers; send only fails if the
                // main thread is already unwinding, in which case stop.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        // A missing slot means a worker panicked mid-cell; scope exit will
        // re-raise that panic, so this expect is only a backstop.
        slots
            .into_iter()
            .map(|r| r.expect("worker finished without producing its cell"))
            .collect()
    })
}

/// Where experiment cells execute: on local worker threads or on remote
/// `bobw-worker` processes served by a socket [`Coordinator`].
///
/// Both variants run the *same* per-cell code ([`bobw_dist::execute_cell`])
/// over the *same* enumerated [`CellSpec`] list and merge results by cell
/// index, so `--dispatch local` and `--dispatch tcp://…` produce
/// byte-identical `results/*.json`.
pub enum Dispatch {
    /// Run cells on `jobs` threads in this process (the default).
    Local { jobs: usize },
    /// Serve cells to connected workers over TCP / Unix sockets. Boxed:
    /// the coordinator is much larger than the other variants.
    Serve { coordinator: Box<Coordinator> },
    /// Submit each batch as a job to a persistent `bobw serve` daemon
    /// (`--dispatch daemon:tcp://…`) and stream the results back. The
    /// daemon's worker fleet stays warm between bench invocations.
    Daemon { client: ServeClient, label: String },
}

impl Dispatch {
    /// Local execution on `jobs` worker threads.
    pub fn local(jobs: usize) -> Dispatch {
        Dispatch::Local { jobs: jobs.max(1) }
    }

    /// Binds a coordinator on `url` (`tcp://host:port` or `unix://path`)
    /// and serves cells to any `bobw-worker` that connects. Also installs
    /// the SIGINT handler so Ctrl-C drains workers instead of killing them
    /// mid-cell.
    pub fn serve(url: &str) -> Result<Dispatch, String> {
        let ep = Endpoint::parse(url)?;
        let coordinator = Coordinator::bind(&ep, CoordinatorConfig::default())
            .map_err(|e| format!("cannot bind {ep}: {e}"))?;
        install_sigint_handler();
        Ok(Dispatch::Serve {
            coordinator: Box::new(coordinator),
        })
    }

    /// Connects to a persistent `bobw serve` daemon at `url` and submits
    /// each batch as a job. Authenticates with `BOBW_SECRET` when set.
    pub fn daemon(url: &str) -> Result<Dispatch, String> {
        let ep = Endpoint::parse(url)?;
        let secret = AuthSecret::from_env();
        let label = format!("bench-{}", std::process::id());
        let client = ServeClient::connect(&ep, &label, secret.as_ref())?;
        Ok(Dispatch::Daemon { client, label })
    }

    /// Parses a `--dispatch` / `BOBW_DISPATCH` value: `local`, a
    /// coordinator bind URL (`tcp://…`/`unix://…`), or `daemon:<url>` for
    /// a persistent service.
    pub fn from_arg(arg: &str, jobs: usize) -> Result<Dispatch, String> {
        if arg == "local" || arg.is_empty() {
            Ok(Dispatch::local(jobs))
        } else if let Some(url) = arg.strip_prefix("daemon:") {
            Dispatch::daemon(url)
        } else {
            Dispatch::serve(arg)
        }
    }

    /// The endpoint workers should connect to, if serving.
    pub fn endpoint(&self) -> Option<&Endpoint> {
        match self {
            Dispatch::Local { .. } | Dispatch::Daemon { .. } => None,
            Dispatch::Serve { coordinator } => coordinator.endpoint(),
        }
    }

    /// Worker count for [`PerfLog::jobs`]: local threads, or currently
    /// connected remote workers (at least 1 — workers may still be
    /// connecting when a batch starts).
    pub fn workers(&self) -> usize {
        match self {
            Dispatch::Local { jobs } => *jobs,
            Dispatch::Serve { coordinator } => coordinator.num_workers().max(1),
            // The daemon's fleet is its own business; perf logs record the
            // submission as one logical worker.
            Dispatch::Daemon { .. } => 1,
        }
    }

    /// Executes one batch of cells, returning outputs in cell order.
    pub fn run(
        &mut self,
        testbed: &Testbed,
        cells: &[CellSpec],
    ) -> Result<Vec<CellOutput>, String> {
        match self {
            Dispatch::Local { jobs } => {
                let jobs = *jobs;
                run_cells(cells, jobs, |_, cell| execute_cell(testbed, cell))
                    .into_iter()
                    .collect()
            }
            Dispatch::Serve { coordinator } => coordinator.run_batch(&testbed.cfg, cells),
            Dispatch::Daemon { client, label } => {
                let job_id = client.submit_raw(label, &testbed.cfg, cells)?;
                let mut slots: Vec<Option<CellOutput>> = vec![None; cells.len()];
                let (state, error) = client.watch(job_id, |index, output| {
                    if let Some(slot) = slots.get_mut(index as usize) {
                        *slot = Some(output);
                    }
                })?;
                if state != JobState::Done {
                    return Err(
                        error.unwrap_or_else(|| format!("job {job_id} ended {}", state.as_str()))
                    );
                }
                slots
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| s.ok_or_else(|| format!("job {job_id}: cell {i} never streamed")))
                    .collect()
            }
        }
    }

    /// Releases the dispatcher; a serving coordinator tells its workers to
    /// shut down. Call once at the end of a binary so remote workers exit
    /// instead of waiting for more batches. A daemon connection just
    /// closes — the service and its fleet stay up for the next run.
    pub fn finish(self) {
        if let Dispatch::Serve { coordinator } = self {
            coordinator.shutdown();
        }
    }
}

/// Unwraps a dispatch result or exits with a diagnostic — batch errors
/// (interrupt drain, every worker gone, a cell failing repeatedly) are
/// operational conditions, not bugs, so bench binaries report them without
/// a panic backtrace.
pub fn run_or_exit<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// Perf counters for one executed cell, keyed by what the cell was.
#[derive(Debug, Clone, Serialize)]
pub struct CellRecord {
    pub technique: String,
    pub site: String,
    pub seed: u64,
    pub events_processed: u64,
    pub peak_queue_depth: usize,
    /// Final capacity of the event queue's hot lane — compared against
    /// `peak_queue_depth` it shows whether the high-water-mark
    /// preallocation avoided regrowth for this cell.
    pub queue_capacity: usize,
    pub wall_micros: u64,
}

/// Perf trajectory of one or more runner batches: every cell's counters
/// plus the batch-level wall time and worker count. Serialized to
/// `BENCH_*.json` and summarized in `results/SUMMARY.md` — never into
/// `results/*.json`, which must stay byte-identical across `--jobs`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PerfLog {
    /// Worker threads the batches ran with.
    pub jobs: usize,
    /// Experiment scale the cells ran at (`quick`/`eval`/`large`); lets a
    /// baseline consumer refuse hints measured at a different scale.
    pub scale: String,
    /// Wall time of the batches end to end (elapsed, not summed per cell).
    pub elapsed_micros: u64,
    pub cells: Vec<CellRecord>,
}

impl PerfLog {
    pub fn new(jobs: usize) -> PerfLog {
        PerfLog {
            jobs,
            ..PerfLog::default()
        }
    }

    /// Folds another batch into this log (cells append, elapsed adds,
    /// worker count takes the max — distributed workers may still be
    /// attaching when the first batch starts).
    pub fn merge(&mut self, other: PerfLog) {
        self.jobs = self.jobs.max(other.jobs);
        self.elapsed_micros += other.elapsed_micros;
        self.cells.extend(other.cells);
    }

    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events_processed).sum()
    }

    pub fn max_queue_depth(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Per-technique queue-depth peaks — what `Testbed::prime_queue_hints`
    /// consumes on the next run so its first cell preallocates.
    pub fn queue_hints(&self) -> std::collections::BTreeMap<String, usize> {
        let mut hints = std::collections::BTreeMap::new();
        for c in &self.cells {
            let e = hints.entry(c.technique.clone()).or_insert(0usize);
            *e = (*e).max(c.peak_queue_depth);
        }
        hints
    }

    /// Sum of per-cell wall times. The ratio against `elapsed_micros` is
    /// the mean number of busy workers (occupancy) — on an unloaded
    /// multicore host that approximates the achieved speedup, but under
    /// oversubscription per-cell wall times inflate with timeslicing, so
    /// it must not be reported as wall-clock speedup.
    pub fn total_cell_micros(&self) -> u64 {
        self.cells.iter().map(|c| c.wall_micros).sum()
    }

    /// Markdown section for `results/SUMMARY.md`: aggregate line plus a
    /// per-technique table (per-cell rows would swamp the summary).
    pub fn markdown_section(&self) -> String {
        use std::collections::BTreeMap;
        use std::fmt::Write as _;

        let mut md = String::new();
        let _ = writeln!(md, "## Runner performance\n");
        let elapsed_s = self.elapsed_micros as f64 / 1e6;
        let cell_s = self.total_cell_micros() as f64 / 1e6;
        let _ = writeln!(
            md,
            "{} cells over {} worker(s): {:.1}s elapsed, {:.1}s of cell work \
             ({:.2}x worker occupancy), {} events processed, peak queue depth {}.\n",
            self.cells.len(),
            self.jobs,
            elapsed_s,
            cell_s,
            if elapsed_s > 0.0 {
                cell_s / elapsed_s
            } else {
                1.0
            },
            self.total_events(),
            self.max_queue_depth(),
        );
        let _ = writeln!(
            md,
            "| technique | cells | events | peak queue | cell wall (s) |"
        );
        let _ = writeln!(md, "|---|---|---|---|---|");
        let mut by_tech: BTreeMap<&str, (usize, u64, usize, u64)> = BTreeMap::new();
        for c in &self.cells {
            let e = by_tech.entry(&c.technique).or_default();
            e.0 += 1;
            e.1 += c.events_processed;
            e.2 = e.2.max(c.peak_queue_depth);
            e.3 += c.wall_micros;
        }
        for (tech, (cells, events, peak, micros)) in by_tech {
            let _ = writeln!(
                md,
                "| {tech} | {cells} | {events} | {peak} | {:.2} |",
                micros as f64 / 1e6
            );
        }
        md
    }
}

/// Runs every ⟨technique, failed site⟩ cell of the cross product through
/// one shared work queue, returning per-technique result vectors in site
/// order (exactly what a nested sequential loop would build) plus the
/// perf log of the whole grid.
///
/// Pooling all techniques into a single queue keeps the workers busy
/// across technique boundaries: a slow technique's last sites overlap with
/// the next technique's first sites instead of serializing on a barrier.
pub fn run_failover_grid(
    testbed: &Testbed,
    techniques: &[Technique],
    jobs: usize,
) -> (Vec<Vec<FailoverResult>>, PerfLog) {
    run_failover_grid_dispatch(testbed, techniques, &mut Dispatch::local(jobs))
        .expect("local dispatch cannot fail on well-formed cells")
}

/// [`run_failover_grid`] over an explicit [`Dispatch`] — the same cell
/// enumeration and index-ordered merge whether cells run on local threads
/// or on remote workers.
pub fn run_failover_grid_dispatch(
    testbed: &Testbed,
    techniques: &[Technique],
    dispatch: &mut Dispatch,
) -> Result<(Vec<Vec<FailoverResult>>, PerfLog), String> {
    let sites: Vec<_> = testbed.cdn.sites().collect();
    let cells: Vec<CellSpec> = techniques
        .iter()
        .flat_map(|t| {
            sites.iter().map(move |s| CellSpec::Failover {
                technique: t.name(),
                site: testbed.cdn.name(*s).to_string(),
            })
        })
        .collect();
    let started = std::time::Instant::now();
    let outputs = dispatch.run(testbed, &cells)?;
    let mut log = PerfLog::new(dispatch.workers());
    log.elapsed_micros = started.elapsed().as_micros() as u64;
    let mut grouped: Vec<Vec<FailoverResult>> = techniques.iter().map(|_| Vec::new()).collect();
    for (i, out) in outputs.into_iter().enumerate() {
        let ti = i / sites.len().max(1);
        let (result, perf) = match out {
            CellOutput::Failover(result, perf) => (result, perf),
            CellOutput::Control(..) => {
                return Err(format!("cell {i}: control output for a failover cell"));
            }
        };
        log.cells.push(CellRecord {
            technique: techniques[ti].name(),
            site: result.site_name.clone(),
            seed: testbed.cfg.seed,
            events_processed: perf.events_processed,
            peak_queue_depth: perf.peak_queue_depth,
            queue_capacity: perf.queue_capacity,
            wall_micros: perf.wall_micros,
        });
        grouped[ti].push(result);
    }
    Ok((grouped, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_core::ExperimentConfig;

    #[test]
    fn run_cells_preserves_item_order() {
        let items: Vec<u64> = (0..37).collect();
        // Make early items slow so completion order differs from item order.
        let f = |_i: usize, &x: &u64| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * x));
            }
            x * x
        };
        let serial = run_cells(&items, 1, f);
        let parallel = run_cells(&items, 8, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[6], 36);
    }

    #[test]
    fn run_cells_handles_more_jobs_than_items() {
        let items = [1u32, 2];
        assert_eq!(run_cells(&items, 64, |_, &x| x + 1), vec![2, 3]);
        let empty: [u32; 0] = [];
        assert!(run_cells(&empty, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn grid_matches_sequential_loop() {
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 12;
        cfg.probe.duration = bobw_event::SimDuration::from_secs(45);
        let tb = Testbed::new(cfg);
        let techniques = [Technique::Anycast, Technique::ReactiveAnycast];
        let (par, log) = run_failover_grid(&tb, &techniques, 4);
        let (seq, _) = run_failover_grid(&tb, &techniques, 1);
        assert_eq!(par.len(), 2);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.len(), tb.cdn.num_sites());
            for (a, b) in p.iter().zip(s) {
                assert_eq!(a.site_name, b.site_name);
                assert_eq!(a.outcomes, b.outcomes);
                assert_eq!(a.num_controllable, b.num_controllable);
            }
        }
        assert_eq!(log.cells.len(), 2 * tb.cdn.num_sites());
        assert!(log.total_events() > 0);
        assert!(log.max_queue_depth() > 0);
        assert!(!log.markdown_section().is_empty());
    }
}
