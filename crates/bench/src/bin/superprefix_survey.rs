//! §3's covering-prefix survey pipeline: "of the most specific prefixes
//! that hosted [hypergiant web] servers, 39% were also covered by less
//! specific prefixes announced by the hypergiants at the same time, with
//! the value ranging from 12% to 95% for individual hypergiants."
//!
//! The real survey needs proprietary RIB archives; this binary exercises
//! the identical pipeline on synthetic RIB dumps whose per-hypergiant
//! covering policy is drawn from the paper's reported 12%–95% range, and
//! verifies the estimator recovers the configured aggregate.
//!
//! Run: `cargo run --release -p bobw-bench --bin superprefix_survey`

use bobw_bench::{parse_cli, write_json};
use bobw_event::RngFactory;
use bobw_measure::{covered_fraction, percent, RibEntry};
use bobw_net::{NodeId, Prefix};
use rand::Rng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SurveyRow {
    hypergiant: String,
    policy: f64,
    covered: usize,
    total: usize,
    measured: f64,
}

fn main() {
    let cli = parse_cli();
    let rng = RngFactory::new(cli.seed);

    // 12 synthetic hypergiants; each announces 40-200 server /24s and
    // covers a per-hypergiant fraction of them with /23s, the fraction
    // drawn from the paper's observed 12%-95% range.
    let mut rows = Vec::new();
    let mut all_entries: Vec<RibEntry> = Vec::new();
    for hg in 0..12u32 {
        let mut r = rng.stream("survey", hg as u64);
        let policy: f64 = r.gen_range(0.12..0.95);
        let n_prefixes: usize = r.gen_range(40..200);
        let origin = NodeId(hg);
        let mut entries = Vec::new();
        for i in 0..n_prefixes {
            // Disjoint /24s per hypergiant: 10.hg.i.0/24 style packing.
            let base: u32 = (10u32 << 24) | (hg << 16) | ((i as u32) << 8);
            let specific = Prefix::new(base, 24);
            entries.push(RibEntry {
                prefix: specific,
                origin,
            });
            if r.gen_bool(policy) {
                entries.push(RibEntry {
                    prefix: specific.parent().expect("/24 has a parent"),
                    origin,
                });
            }
        }
        let (covered, total, measured) = covered_fraction(&entries);
        rows.push(SurveyRow {
            hypergiant: format!("HG{hg:02}"),
            policy,
            covered,
            total,
            measured,
        });
        all_entries.extend(entries);
    }

    println!("§3 survey — covering-prefix prevalence per synthetic hypergiant");
    println!(
        "{:<6} {:>10} {:>10} {:>8}",
        "HG", "configured", "measured", "n"
    );
    for row in &rows {
        println!(
            "{:<6} {:>10} {:>10} {:>8}",
            row.hypergiant,
            percent(row.policy),
            percent(row.measured),
            row.total
        );
    }
    let (c, t, agg) = covered_fraction(&all_entries);
    println!(
        "aggregate: {} of {} most-specific prefixes covered = {} (paper: 39%, range 12%-95%)",
        c,
        t,
        percent(agg)
    );
    // The pipeline must recover each configured policy closely.
    for row in &rows {
        assert!(
            (row.measured - row.policy).abs() < 0.15,
            "estimator drifted: {row:?}"
        );
    }

    write_json(&cli, "superprefix_survey", &rows);
}
