//! Appendix C.1: why do clients route to prepended backup sites? For each
//! site (the paper focuses on sea1), compare each target's path to a
//! unicast prefix `u` at the site vs an anycast prefix `a5` with five
//! prepends at the backups, find the diverging AS, and classify the
//! divergence (business preference / R&E next hop).
//!
//! Run: `cargo run --release -p bobw-bench --bin appc1 [--scale quick]`

use bobw_bench::{compute_appc1, parse_cli, run_cells, write_json};
use bobw_core::Testbed;
use bobw_measure::percent;

fn main() {
    let cli = parse_cli();
    let testbed = Testbed::new(cli.scale.config(cli.seed));

    println!("Appendix C.1 — diverging-AS classification (prepend 5)");
    println!(
        "{:<6} {:>6} {:>12} {:>14} {:>8}",
        "site", "pairs", "to-intended", "business-pref", "via-R&E"
    );
    // Sites fan over --jobs runner threads; results come back in site
    // order, so the report (and JSON) is identical for any --jobs value.
    let sites = ["sea1", "sea2", "ams", "msn"];
    let reports = run_cells(&sites, cli.jobs, |_, site| compute_appc1(&testbed, site, 5));
    for r in &reports {
        println!(
            "{:<6} {:>6} {:>12} {:>14} {:>8}",
            r.site_name,
            r.measured_pairs,
            percent(r.frac_to_intended()),
            percent(r.frac_business_pref()),
            percent(r.frac_via_rne()),
        );
    }
    println!(
        "(paper, sea1: 36.2% of measured targets selected sea1 for a5; of the rest, 82% \
         explained by business preference and 54% routed via an R&E network)"
    );

    write_json(&cli, "appc1", &reports);
}
